"""Lightweight instrumentation for the hot paths (ISSUE 4).

The pipeline's performance claims are measured, not asserted: every hot
layer (LP assembly, incremental re-solve, simulator serve path) reports
into a process-wide :class:`Profiler` singleton, ``PERF``.

Two kinds of instruments:

* **Counters** — plain integer increments (``PERF.count("lp.patch.rhs")``).
  Always on: they are cheap (one dict update) and CI's perf-smoke job
  asserts on them (e.g. "zero full rebuilds after the initial assembly"),
  so they must not depend on a flag.
* **Timers** — ``with PERF.timer("lp.solve"):`` accumulates wall-clock
  seconds and call counts per phase.  Also always on; a
  ``perf_counter()`` pair per phase is noise next to the phases being
  timed (LP solves, trace replay).

``--profile`` on the CLI does not *enable* anything — it only controls
whether the snapshot is written out (per-stage timing JSON into the run
directory, or stderr without one).

Counter names in use across the tree::

    lp.assembly.rebuild   to_arrays ran the full vectorized assembly
    lp.assembly.reuse     to_arrays served the cached arrays
    lp.patch.fix_var      fix_var() patched cached bounds in place
    lp.patch.bound        set_bound() patched cached bounds in place
    lp.patch.rhs          set_rhs() patched a cached RHS entry in place
    lp.solve              LinearProgram.solve() calls
    lp.simplex.iterations        revised-simplex pivots (all phases)
    lp.simplex.refactorizations  basis LU rebuilds (incl. the initial one)
    lp.simplex.warm_starts       solves that ran from a caller-provided basis
    lp.simplex.basis_crash       bases reconstructed from a basis-less optimum
    lp.simplex.warm_degraded     warm attempts that fell back to a cold solve
    form.build.vectorized / form.build.legacy   formulation assembly mode
    form.retarget         set_qos_fraction() RHS-only re-target
    round.iterative.fix   LP-guided rounding fixings (== re-solves)
    sim.serve.fast        _served_latency answered from the replica cache
    sim.serve.scan        _served_latency fell back to the full scan
    sim.cache.repair      nearest-replica cache column recomputed
    service.requests      HTTP requests the placement service accepted
    service.epoch         daemon epochs stepped (also a timer)
    service.cache.hit / service.cache.miss   bound-query result cache
    service.coalesced     queries folded into an identical in-flight solve
    service.shed          admission-queue rejections (HTTP 429)
    service.deadline      per-request deadlines that expired (HTTP 504)
    service.stale         degraded last-known-good answers (stale=true)
    service.breaker.trip  circuit breaker transitions to open
    service.drop          connections dropped by chaos injection
    service.recover       daemon restarts that resumed from a checkpoint
    service.supervisor.restart   in-process supervisor restarts

Multiprocessing caveat: each worker process has its own ``PERF``; the
profile a runner emits covers the parent process only.  Run with
``--jobs 1`` when you want the counters to cover the whole pipeline.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator


class Profiler:
    """Accumulates named counters and phase timers.

    All state is plain dicts; ``snapshot()`` returns a JSON-safe copy and
    ``reset()`` clears everything (CLI entry points reset so one command
    equals one profile).
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timer_seconds: Dict[str, float] = {}
        self.timer_calls: Dict[str, int] = {}

    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counters[name] = self.counters.get(name, 0) + n

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate wall-clock seconds (and a call count) under ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - t0
            self.timer_seconds[name] = self.timer_seconds.get(name, 0.0) + elapsed
            self.timer_calls[name] = self.timer_calls.get(name, 0) + 1

    def get(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        return self.counters.get(name, 0)

    def seconds(self, name: str) -> float:
        """Accumulated seconds under a timer (0.0 if never entered)."""
        return self.timer_seconds.get(name, 0.0)

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe copy of all instruments, sorted for stable output."""
        return {
            "timers": {
                name: {
                    "seconds": self.timer_seconds[name],
                    "calls": self.timer_calls.get(name, 0),
                }
                for name in sorted(self.timer_seconds)
            },
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
        }

    def reset(self) -> None:
        """Clear every counter and timer."""
        self.counters.clear()
        self.timer_seconds.clear()
        self.timer_calls.clear()


#: Process-wide profiler; every hot path reports here.
PERF = Profiler()
