"""Pluggable solver backends for MC-PERF bounds.

``repro.solvers.registry`` holds the backend names, the LP-level dispatch
registry and the structure-aware selector; ``repro.solvers.tree_dp`` and
``repro.solvers.decompose`` implement the two structural backends.  The
registry is re-exported eagerly (it is a leaf module); the structural
backends load lazily because they pull in ``core``/``runner`` machinery.
"""

from __future__ import annotations

from repro.solvers.registry import (
    BACKEND_AUTO,
    BACKEND_DECOMPOSED,
    BACKEND_SCIPY,
    BACKEND_SIMPLEX,
    BACKEND_STRUCTURE,
    BACKEND_TREE_DP,
    BOUND_BACKENDS,
    DEGRADE_TARGET,
    LP_BACKENDS,
    SolverBackend,
    degrade_backend,
    estimated_lp_variables,
    get_backend,
    register_backend,
    registered_backends,
    select_backend,
    solve_lp,
)

_LAZY = {
    "tree_dp_applicable": "repro.solvers.tree_dp",
    "solve_tree_dp": "repro.solvers.tree_dp",
    "decomposition_applicable": "repro.solvers.decompose",
    "solve_decomposed": "repro.solvers.decompose",
}

__all__ = [
    "BACKEND_AUTO",
    "BACKEND_SCIPY",
    "BACKEND_SIMPLEX",
    "BACKEND_STRUCTURE",
    "BACKEND_TREE_DP",
    "BACKEND_DECOMPOSED",
    "LP_BACKENDS",
    "BOUND_BACKENDS",
    "DEGRADE_TARGET",
    "SolverBackend",
    "register_backend",
    "registered_backends",
    "get_backend",
    "solve_lp",
    "degrade_backend",
    "estimated_lp_variables",
    "select_backend",
    *_LAZY,
]


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
