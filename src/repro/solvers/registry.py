"""Solver-backend registry — the single source of truth for backend names.

Historically the backend choice was an ad-hoc string comparison repeated in
``lp/model.py`` (the scipy→simplex ``"auto"`` fallback), ``core/bounds.py``
(the default backend) and ``runner/resilience.py`` (the ``degrade`` retry
target).  This module centralizes both the *names* and the *dispatch*:

* :data:`BACKEND_AUTO` / :data:`BACKEND_SCIPY` / :data:`BACKEND_SIMPLEX` —
  the LP-level backends :meth:`~repro.lp.model.LinearProgram.solve` accepts;
* :data:`BACKEND_STRUCTURE` / :data:`BACKEND_TREE_DP` /
  :data:`BACKEND_DECOMPOSED` — the bound-level backends
  :func:`~repro.core.bounds.compute_lower_bound` accepts on top of those.
  ``structure`` introspects the problem (:func:`select_backend`) and picks
  the exact tree DP when the topology is a tree metric, the per-object
  decomposition when the monolithic LP would be large, and the monolithic
  ``auto`` path otherwise.

This module is deliberately a leaf: it imports no other ``repro`` module at
import time (solver modules load lazily inside the dispatch functions), so
``lp``, ``core`` and ``runner`` may all import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

#: LP-level backend names (accepted by ``LinearProgram.solve``).
BACKEND_AUTO = "auto"
BACKEND_SCIPY = "scipy"
BACKEND_SIMPLEX = "simplex"

#: Bound-level backend names (accepted by ``compute_lower_bound`` on top of
#: the LP-level names).
BACKEND_STRUCTURE = "structure"
BACKEND_TREE_DP = "tree-dp"
BACKEND_DECOMPOSED = "decomposed"

LP_BACKENDS: Tuple[str, ...] = (BACKEND_AUTO, BACKEND_SCIPY, BACKEND_SIMPLEX)
BOUND_BACKENDS: Tuple[str, ...] = LP_BACKENDS + (
    BACKEND_STRUCTURE,
    BACKEND_TREE_DP,
    BACKEND_DECOMPOSED,
)

#: The backend the runner's ``on_error="degrade"`` retry falls back to.
DEGRADE_TARGET = BACKEND_SIMPLEX

#: ``structure`` prefers the per-object decomposition only when the
#: monolithic LP would be at least this large — below it one scipy solve is
#: faster than coordinating per-object subproblems.
DECOMPOSITION_MIN_VARIABLES = 50_000


def _solve_auto(model, **kwargs):
    """scipy/HiGHS when available, else the pure-Python simplex (with a warning)."""
    try:
        from repro.lp.scipy_backend import solve_with_scipy

        return solve_with_scipy(model, **kwargs)
    except Exception as exc:  # ImportError or a solver crash
        import warnings

        from repro.lp.simplex import solve_with_simplex

        warnings.warn(
            f"scipy LP backend unavailable ({exc!r}); falling back to "
            "the pure-Python simplex (slow for large models)",
            RuntimeWarning,
            stacklevel=3,
        )
        return solve_with_simplex(model)


def _solve_scipy(model, **kwargs):
    from repro.lp.scipy_backend import solve_with_scipy

    return solve_with_scipy(model, **kwargs)


def _solve_simplex(model, **kwargs):
    from repro.lp.simplex import solve_with_simplex

    return solve_with_simplex(model, **kwargs)


def _scipy_available() -> bool:
    try:
        import scipy.optimize  # noqa: F401
    except Exception:
        return False
    return True


@dataclass(frozen=True)
class SolverBackend:
    """One registered LP backend: a name, a solve callable, an availability probe."""

    name: str
    solve: Callable
    available: Callable[[], bool] = field(default=lambda: True)
    description: str = ""


_REGISTRY: Dict[str, SolverBackend] = {}


def register_backend(backend: SolverBackend) -> SolverBackend:
    """Register (or replace) an LP backend under its name."""
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> SolverBackend:
    """Look a backend up by name; unknown names raise ``ValueError``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown LP backend: {name!r}") from None


def registered_backends() -> Tuple[str, ...]:
    """Names of every registered LP backend, registration order."""
    return tuple(_REGISTRY)


register_backend(
    SolverBackend(
        name=BACKEND_AUTO,
        solve=_solve_auto,
        description="scipy/HiGHS when available, warned simplex fallback otherwise",
    )
)
register_backend(
    SolverBackend(
        name=BACKEND_SCIPY,
        solve=_solve_scipy,
        available=_scipy_available,
        description="scipy.optimize.linprog (HiGHS)",
    )
)
register_backend(
    SolverBackend(
        name=BACKEND_SIMPLEX,
        solve=_solve_simplex,
        description="revised simplex over sparse columns (warm-startable)",
    )
)


#: Optional dispatch guard: ``guard(backend_name, solve_thunk) -> result``.
#: The placement service installs its circuit breaker here so *every* LP
#: dispatch in the process — bound queries, daemon re-solves — feeds the
#: breaker's failure accounting and is refused fast while it is open.
_GUARD: Optional[Callable[[str, Callable[[], object]], object]] = None


def install_solve_guard(
    guard: Optional[Callable[[str, Callable[[], object]], object]],
) -> None:
    """Install (or clear, with None) the process-wide LP dispatch guard."""
    global _GUARD
    _GUARD = guard


def warm_starts_enabled() -> bool:
    """Warm-started re-solves are on unless ``REPRO_LP_WARM=0``.

    The kill switch exists for benchmarking cold baselines and as an
    operational escape hatch; with it off every solve is a cold solve.
    """
    import os

    return os.environ.get("REPRO_LP_WARM", "1") not in ("0", "off", "no")


def _try_warm_solve(model, warm_start, **kwargs):
    """Attempt a warm revised-simplex solve; None means "cold solve instead".

    Accepts a :class:`~repro.lp.basis.Basis` or an
    :class:`~repro.lp.solution.LPSolution` (using its basis when present,
    else crashing one from its optimal point).  *Any* failure — stale
    shape, singular basis, iteration cap, non-optimal outcome — degrades
    to the cold path and counts ``lp.simplex.warm_degraded``; a warm start
    is a performance hint, never a correctness dependency.
    """
    from repro.lp.basis import Basis
    from repro.lp.solution import LPSolution, SolveStatus

    basis = None
    crashed_from = None
    if isinstance(warm_start, Basis):
        basis = warm_start
    elif isinstance(warm_start, LPSolution):
        basis = warm_start.basis if isinstance(warm_start.basis, Basis) else None
        if basis is None and warm_start.status is SolveStatus.OPTIMAL and len(
            warm_start.values
        ) == model.num_variables:
            from repro.lp.revised import crash_basis_from_values

            crashed_from = warm_start
            basis = crash_basis_from_values(
                model, warm_start.values, duals=warm_start.duals
            )
    if basis is None or not basis.matches(model.num_variables, model.num_constraints):
        return None
    try:
        from repro.lp.revised import SimplexError, _SingularBasis, solve_revised

        max_iterations = kwargs.get("max_iterations", _WARM_ITERATION_LIMIT)
        try:
            solution = solve_revised(
                model, warm_basis=basis, max_iterations=max_iterations
            )
        except _SingularBasis:
            # A complementarity crash can be singular under degeneracy;
            # retry once with the triangular (nonsingular-by-construction)
            # crash before giving up on the warm path.
            if crashed_from is None:
                raise
            from repro.lp.revised import crash_basis_from_values

            basis = crash_basis_from_values(model, crashed_from.values, strict=True)
            if basis is None:
                raise
            solution = solve_revised(
                model, warm_basis=basis, max_iterations=max_iterations
            )
    except (SimplexError, _SingularBasis):
        solution = None
    except Exception:  # pragma: no cover - defensive: never block the cold path
        solution = None
    if solution is not None and solution.status is SolveStatus.OPTIMAL:
        return solution
    # Non-optimal warm outcomes (infeasible/unbounded) are re-established by
    # a cold solve rather than trusted from a recycled basis.
    from repro.perf import PERF

    PERF.count("lp.simplex.warm_degraded")
    return None


#: Iteration cap for warm re-solves: past this, a cold solve is a better
#: bet than continuing to repair a stale basis.
_WARM_ITERATION_LIMIT = 20_000


def solve_lp(model, backend: str = BACKEND_AUTO, warm_start=None, **kwargs):
    """Dispatch ``model`` to the named LP backend.

    This is the registry-backed implementation behind
    :meth:`repro.lp.model.LinearProgram.solve`; the historical ``"auto"``
    semantics (try scipy, fall back to the simplex with a warning) are
    preserved exactly.  When a guard is installed (the service's circuit
    breaker), the dispatch routes through it.

    ``warm_start`` (a :class:`~repro.lp.basis.Basis` or a previous
    :class:`~repro.lp.solution.LPSolution`) routes the solve through the
    revised simplex's dual warm start first — the basis is re-certified
    against the patched arrays, and any problem with it falls back to the
    named backend's cold solve.  Only the stock LP backends
    (:data:`LP_BACKENDS`) are intercepted: a custom registered backend was
    named for a reason, and a warm shortcut would mask its behaviour (and
    its failures) from callers like the service's circuit breaker.
    """
    solver = get_backend(backend)

    def thunk():
        if (
            warm_start is not None
            and backend in LP_BACKENDS
            and warm_starts_enabled()
        ):
            solution = _try_warm_solve(model, warm_start, **kwargs)
            if solution is not None:
                return solution
        return solver.solve(model, **kwargs)

    if _GUARD is None:
        return thunk()
    return _GUARD(backend, thunk)


def degrade_backend(backend: Optional[str]) -> Optional[str]:
    """The backend a failed bound task should retry on, or None.

    ``None`` means the task either carries no backend choice or already runs
    on the degrade target — nothing further to fall back to.
    """
    if backend in (None, DEGRADE_TARGET):
        return None
    return DEGRADE_TARGET


def estimated_lp_variables(problem) -> int:
    """Cheap upper-ballpark of the monolithic MC-PERF variable count.

    Two variables (store/create) per (storer, interval, object) plus one
    covered variable per demanded cell — before pruning, so it errs high,
    which is the safe direction for the decomposition-size gate.
    """
    import numpy as np

    storers = len(problem.storer_ids())
    cells = int(np.count_nonzero(problem.demand.reads))
    return 2 * storers * problem.demand.num_intervals * problem.demand.num_objects + cells


def select_backend(problem, properties=None) -> str:
    """Structure-aware backend selection for ``backend="structure"``.

    Order of preference: the exact tree DP (polynomial, bypasses the LP)
    when the instance is in its class; the per-object decomposition when it
    applies and the monolithic LP would be large
    (:data:`DECOMPOSITION_MIN_VARIABLES`); otherwise the monolithic
    ``auto`` path.
    """
    from repro.solvers.tree_dp import tree_dp_applicable

    ok, _reason = tree_dp_applicable(problem, properties)
    if ok:
        return BACKEND_TREE_DP

    from repro.solvers.decompose import decomposition_applicable

    ok, _reason = decomposition_applicable(problem, properties)
    if ok and estimated_lp_variables(problem) >= DECOMPOSITION_MIN_VARIABLES:
        return BACKEND_DECOMPOSED
    return BACKEND_AUTO
