"""Per-object decomposition of MC-PERF.

Objects couple in the monolithic LP only through shared resource rows —
storage-capacity rows (16), uniform replica rows (17), node-opening
variables (13)/(14) — and through QoS rows whose scope aggregates objects
(``PER_USER`` / ``OVERALL``).  When none of the resource couplings are
present (:func:`decomposition_applicable`), the problem splits by object:

* **Separable scopes** (``PER_OBJECT`` / ``PER_USER_OBJECT``): every QoS
  row mentions a single object, so the instance is *exactly* the sum of
  independent per-object MC-PERF instances.  Each becomes a
  :class:`~repro.runner.tasks.BoundTask` solved through the existing
  :class:`~repro.runner.execute.ExperimentRunner` pool; bounds, roundings
  and stores are summed/stitched back together.

* **Aggregating scopes** (``PER_USER`` / ``OVERALL``): the per-scope QoS
  rows are the only coupling, so Dantzig–Wolfe column generation applies.
  A small master LP chooses convex combinations of per-object placement
  columns subject to the aggregate coverage rows (with big-M slacks);
  pricing relaxes each object subproblem's own QoS rows to zero and
  re-prices its covered variables by the master's coverage duals through
  the incremental patch API (`set_objective`), so pricing re-solves are
  assembly-free.  On convergence the master optimum equals the monolithic
  LP optimum; if the round cap is hit first, the best Lagrangian bound
  ``L(λ) = Σ_s λ_s·rhs_s + Σ_k min_x (c_k(x) − λ·g_k(x))`` is reported —
  still a valid lower bound, flagged via ``extras``.

The monolithic LP is never assembled on this path, which is what opens the
1000-node / million-request scale; decomposed results can be differentially
audited against the monolith via
:func:`repro.audit.differential.audit_backend_agreement`.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.bounds import LowerBoundResult, compute_lower_bound
from repro.core.evaluate import CostBreakdown
from repro.core.goals import GoalScope, QoSGoal
from repro.core.problem import MCPerfProblem
from repro.core.properties import (
    HeuristicProperties,
    ReplicaConstraint,
    StorageConstraint,
)
from repro.core.rounding import RoundingResult
from repro.lp.solution import SolveStatus
from repro.solvers.registry import BACKEND_AUTO, BACKEND_DECOMPOSED

#: Worker processes for the separable per-object fan-out (0 = pick).
JOBS_ENV = "REPRO_DECOMPOSE_JOBS"

#: Column-generation safety caps.
MAX_PRICING_ROUNDS = 40
REDUCED_COST_EPS = 1e-7
SLACK_TOL = 1e-6
INITIAL_BIG_M = 1e6
MAX_BIG_M_ESCALATIONS = 3

_SEPARABLE_SCOPES = (GoalScope.PER_OBJECT, GoalScope.PER_USER_OBJECT)

_INFEASIBLE_REASON = "LP relaxation infeasible: the class cannot meet the goal"


def decomposition_applicable(
    problem: MCPerfProblem, properties: Optional[HeuristicProperties] = None
) -> Tuple[bool, str]:
    """Whether the instance splits by object (no shared resource rows).

    Returns ``(ok, reason)``; ``reason`` names the coupling that blocks the
    split.  Know/Hist/React create fixings are fine — the sphere-of-
    knowledge aggregation is per-object.  ``ReplicaConstraint.PER_OBJECT``
    is fine too (one replica-count variable per object).
    """
    props = properties or HeuristicProperties()
    if not isinstance(problem.goal, QoSGoal):
        return False, "decomposition needs a QoS goal (routing rows couple via scopes)"
    if props.storage_constraint is not StorageConstraint.NONE:
        return False, "storage-capacity rows couple objects on each node"
    if props.replica_constraint is ReplicaConstraint.UNIFORM:
        return False, "the uniform replica-count variable couples objects"
    if problem.costs.zeta > 0:
        return False, "node-opening variables couple objects on each node"
    return True, ""


def _object_problem(problem: MCPerfProblem, obj: int) -> MCPerfProblem:
    """The single-object slice of ``problem`` (object ``obj`` becomes index 0)."""
    demand = problem.demand.restrict_objects([obj])
    initial = None
    if problem.initial_placement is not None:
        initial = np.asarray(problem.initial_placement)[:, [obj]]
    return dataclasses.replace(problem, demand=demand, initial_placement=initial)


def _resolve_jobs(jobs: Optional[int], num_tasks: int) -> int:
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get(JOBS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    if num_tasks >= 8:
        return min(4, os.cpu_count() or 1)
    return 1


def _remap_scope_key(key: object, obj: int) -> object:
    """Translate a single-object subproblem's scope key back to the monolith's."""
    if isinstance(key, tuple):
        if len(key) == 2 and key[0] == "k":
            return ("k", obj)
        if len(key) == 2:
            return (key[0], obj)
    return key


def _zero_result(
    problem: MCPerfProblem, props: HeuristicProperties, do_rounding: bool, keep_store: bool
) -> LowerBoundResult:
    """The trivial bound for a demandless instance: store nothing, cost zero."""
    result = LowerBoundResult(
        properties=props,
        feasible=True,
        lp_cost=0.0,
        status="optimal",
        backend_used=BACKEND_DECOMPOSED,
    )
    shape = (
        len(problem.storer_ids()),
        problem.demand.num_intervals,
        problem.demand.num_objects,
    )
    if keep_store:
        result.store_lp = np.zeros(shape)
    if do_rounding:
        result.rounding = RoundingResult(
            store=np.zeros(shape),
            cost=CostBreakdown(),
            feasible=True,
            fractional_units=0,
            rounded_up=0,
            rounded_down=0,
            repaired=0,
        )
        result.feasible_cost = 0.0
    result.extras["decomposition"] = {"mode": "empty", "objects": 0}
    return result


def solve_decomposed(
    problem: MCPerfProblem,
    properties: Optional[HeuristicProperties] = None,
    do_rounding: bool = True,
    keep_store: bool = False,
    jobs: Optional[int] = None,
    audit: Optional[str] = None,
    audit_subject: str = "",
) -> LowerBoundResult:
    """Lower bound via per-object decomposition.

    Falls back to the monolithic ``auto`` path (with an ``extras`` note)
    when the instance has a coupling the decomposition cannot split, or
    when the Dantzig–Wolfe master cannot obtain duals (no scipy).
    """
    props = properties or HeuristicProperties()
    ok, reason = decomposition_applicable(problem, props)
    if not ok:
        result = compute_lower_bound(
            problem,
            props,
            do_rounding=do_rounding,
            backend=BACKEND_AUTO,
            keep_store=keep_store,
            audit=audit,
            audit_subject=audit_subject,
        )
        result.extras["decomposition_fallback"] = reason
        return result

    active = [int(k) for k in problem.demand.active_objects()]
    if not active:
        return _zero_result(problem, props, do_rounding, keep_store)

    t0 = time.perf_counter()
    if problem.goal.scope in _SEPARABLE_SCOPES:
        result = _solve_separable(problem, props, active, do_rounding, keep_store, jobs)
    else:
        result = _solve_dantzig_wolfe(problem, props, active, do_rounding, keep_store)
        if result is None:  # no duals available: the master cannot price
            result = compute_lower_bound(
                problem,
                props,
                do_rounding=do_rounding,
                backend=BACKEND_AUTO,
                keep_store=keep_store,
                audit=audit,
                audit_subject=audit_subject,
            )
            result.extras["decomposition_fallback"] = (
                "master LP produced no duals (scipy backend unavailable)"
            )
            return result
    result.solve_seconds = time.perf_counter() - t0

    from repro.audit import resolve_mode

    mode = resolve_mode(audit)
    converged = result.extras.get("decomposition", {}).get("converged", True)
    if mode != "off" and result.feasible and converged:
        from repro.audit import audit_backend_agreement, resolve_sample, selected_for_sample

        if mode == "full" and selected_for_sample(audit_subject, resolve_sample()):
            ta = time.perf_counter()
            result.audit = audit_backend_agreement(
                problem, props, result, mode=mode, subject=audit_subject
            )
            result.extras["audit_seconds"] = time.perf_counter() - ta
    return result


# -- separable scopes: independent per-object bounds -------------------------


def _solve_separable(
    problem: MCPerfProblem,
    props: HeuristicProperties,
    active: List[int],
    do_rounding: bool,
    keep_store: bool,
    jobs: Optional[int],
) -> LowerBoundResult:
    subs = [(k, _object_problem(problem, k)) for k in active]
    jobs = _resolve_jobs(jobs, len(subs))

    if jobs > 1 and not keep_store:
        from repro.runner.execute import ExperimentRunner
        from repro.runner.tasks import BoundTask

        tasks = [
            BoundTask(
                problem=sub,
                properties=props,
                do_rounding=do_rounding,
                backend=BACKEND_AUTO,
                label=f"object-{k}",
            )
            for k, sub in subs
        ]
        results = ExperimentRunner(jobs=jobs).map(tasks)
    else:
        results = [
            compute_lower_bound(
                sub,
                props,
                do_rounding=do_rounding,
                backend=BACKEND_AUTO,
                keep_store=keep_store,
            )
            for _k, sub in subs
        ]

    combined = LowerBoundResult(properties=props, feasible=True, lp_cost=0.0)
    combined.status = "optimal"
    combined.backend_used = BACKEND_DECOMPOSED
    combined.extras["decomposition"] = {
        "mode": "separable",
        "objects": len(active),
        "jobs": jobs,
    }
    shape = (
        len(problem.storer_ids()),
        problem.demand.num_intervals,
        problem.demand.num_objects,
    )
    store_lp = np.zeros(shape) if keep_store else None
    rounding_store = np.zeros(shape) if do_rounding else None
    cost = CostBreakdown()
    qos: Dict[object, float] = {}
    frac_units = up = down = repaired = legalized = 0
    rounding_feasible = True

    for (k, _sub), res in zip(subs, results):
        combined.num_variables += res.num_variables
        combined.num_constraints += res.num_constraints
        combined.round_seconds += res.round_seconds
        if not res.feasible:
            combined.feasible = False
            combined.lp_cost = None
            combined.status = res.status
            combined.reason = f"object {k}: {res.reason}"
            return combined
        combined.lp_cost += res.lp_cost
        if store_lp is not None and res.store_lp is not None:
            store_lp[:, :, k] = res.store_lp[:, :, 0]
        if do_rounding and res.rounding is not None:
            r = res.rounding
            rounding_store[:, :, k] = r.store[:, :, 0]
            cost.storage += r.cost.storage
            cost.creation += r.cost.creation
            cost.penalty += r.cost.penalty
            cost.writes += r.cost.writes
            cost.opening += r.cost.opening
            for name, value in r.cost.adjustments.items():
                cost.adjustments[name] = cost.adjustments.get(name, 0.0) + value
            frac_units += r.fractional_units
            up += r.rounded_up
            down += r.rounded_down
            repaired += r.repaired
            legalized += r.legalized
            rounding_feasible = rounding_feasible and r.feasible
            for key, value in r.qos.items():
                qos[_remap_scope_key(key, k)] = value

    combined.store_lp = store_lp
    if do_rounding:
        combined.rounding = RoundingResult(
            store=rounding_store,
            cost=cost,
            feasible=rounding_feasible,
            fractional_units=frac_units,
            rounded_up=up,
            rounded_down=down,
            repaired=repaired,
            legalized=legalized,
            qos=qos,
        )
        combined.feasible_cost = cost.total
        if not rounding_feasible:
            combined.extras["rounding_infeasible"] = True
    return combined


# -- aggregating scopes: Dantzig–Wolfe column generation ---------------------


class _ObjectPricer:
    """One object's pricing subproblem: its LP with QoS rows relaxed.

    Holds the formulation, the base objective vector, and the (row index,
    variable indices, coefficients) of each scope's QoS row so the master's
    duals can be folded into the covered-variable objectives in place.
    """

    def __init__(self, obj: int, form) -> None:
        self.obj = obj
        self.form = form
        self.base_obj = np.array([v.objective for v in form.lp.variables])
        self.constant = float(form.objective_constant)
        #: Last optimal solution — re-pricing only patches objectives, so
        #: its basis stays primal feasible and warm-starts the next round.
        self.last: Optional[object] = None
        self.rows: Dict[object, Tuple[np.ndarray, np.ndarray]] = {}
        for key, (row, _denom, _const, _maxp) in form.qos_meta.items():
            if row < 0:
                continue
            con = form.lp.constraints[row]
            self.rows[key] = (
                np.asarray(con.indices, dtype=np.int64),
                np.asarray(con.coeffs, dtype=float),
            )
            form.lp.set_rhs(row, 0.0)  # relax: the master owns coverage

    def price(self, duals: Dict[object, float]):
        """Re-price covered variables by ``-λ_s·r`` and solve.

        Returns ``(z, cost, coverage)``: the patched optimum, the column's
        true cost ``c0·x + const`` and its per-scope coverage contributions.
        """
        lp = self.form.lp
        for key, (indices, coeffs) in self.rows.items():
            lam = duals.get(key, 0.0)
            for idx, coeff in zip(indices, coeffs):
                lp.set_objective(int(idx), self.base_obj[idx] - lam * coeff)
        solution = lp.solve(backend=BACKEND_AUTO, warm_start=self.last).require_optimal()
        self.last = solution
        values = np.asarray(solution.values, dtype=float)
        cost = float(self.base_obj @ values) + self.constant
        coverage = {
            key: float(coeffs @ values[indices])
            for key, (indices, coeffs) in self.rows.items()
        }
        return float(solution.objective), cost, coverage


def _aggregate_requirements(problem: MCPerfProblem, pricers) -> Tuple[dict, dict, dict]:
    """Monolith-level (denominator, origin-covered, max-coverable) per scope key.

    Demand cells are partitioned by object, so the monolithic QoS metadata
    is the per-object sum — the basis for the master's right-hand sides and
    the aggregate structural-feasibility check.
    """
    denom: Dict[object, float] = {}
    const: Dict[object, float] = {}
    maxp: Dict[object, float] = {}
    for pricer in pricers:
        for key, (_row, d, c, m) in pricer.form.qos_meta.items():
            denom[key] = denom.get(key, 0.0) + d
            const[key] = const.get(key, 0.0) + c
            maxp[key] = maxp.get(key, 0.0) + m
    return denom, const, maxp


def _remap_master_warm(prev_solution, prev_counts, counts, num_keys, num_rows):
    """Lift the previous master round's solution onto the new column layout.

    The master is rebuilt every round with per-object column blocks followed
    by one slack per scope key; pricing only *appends* columns inside each
    block, so old variable ``j`` of block ``i`` shifts by the number of new
    columns in earlier blocks.  Rows (one per key + one convexity per
    object) are unchanged.  Returns a warm-start hint for the new model —
    a remapped :class:`~repro.lp.basis.Basis` when the previous round
    carried one, else a values-remapped solution the registry can crash a
    basis from — or None when the layouts cannot be reconciled.
    """
    import numpy as np

    from repro.lp.basis import AT_LOWER, Basis
    from repro.lp.solution import LPSolution, SolveStatus

    if prev_solution is None or prev_counts is None:
        return None
    if len(prev_counts) != len(counts) or any(
        o > n for o, n in zip(prev_counts, counts)
    ):
        return None
    n_old = sum(prev_counts) + num_keys
    n_new = sum(counts) + num_keys
    # old var index -> new var index (block-wise shift; slacks at the end).
    index_map = np.empty(n_old, dtype=np.int64)
    old_at = new_at = 0
    for old_cnt, new_cnt in zip(prev_counts, counts):
        index_map[old_at : old_at + old_cnt] = new_at + np.arange(old_cnt)
        old_at += old_cnt
        new_at += new_cnt
    index_map[old_at:] = new_at + np.arange(num_keys)

    basis = getattr(prev_solution, "basis", None)
    if isinstance(basis, Basis) and basis.matches(n_old, num_rows):
        statuses = np.full(n_new + num_rows, AT_LOWER, dtype=np.int8)
        statuses[index_map] = basis.statuses[:n_old]
        statuses[n_new:] = basis.statuses[n_old:]
        return Basis(statuses=statuses, nvars=n_new, nrows=num_rows)
    if (
        prev_solution.status is SolveStatus.OPTIMAL
        and len(prev_solution.values) == n_old
    ):
        values = np.zeros(n_new)
        values[index_map] = np.asarray(prev_solution.values, dtype=float)
        return LPSolution(
            status=SolveStatus.OPTIMAL,
            objective=float(prev_solution.objective),
            values=values,
            backend=prev_solution.backend,
        )
    return None


def _solve_master(pricers, columns, required, big_m, warm=None):
    """Build and solve the restricted master; return (solution, key rows, conv rows).

    ``columns[i]`` maps its object to a list of ``(cost, coverage)`` pairs;
    the master picks a convex combination per object subject to the
    aggregate coverage rows, with big-M slacks keeping it always feasible.
    ``warm`` is the previous round's remapped hint
    (:func:`_remap_master_warm`); new columns enter at their lower bound
    and the dual simplex re-prices them in a few pivots.
    """
    from repro.lp.model import LinearProgram
    from repro.solvers.registry import BACKEND_SCIPY

    lp = LinearProgram(name="dw-master")
    col_vars: List[List[int]] = []
    for pricer, cols in zip(pricers, columns):
        col_vars.append(
            [
                lp.var(f"w[k{pricer.obj},{j}]", upper=1.0, obj=cost).index
                for j, (cost, _cov) in enumerate(cols)
            ]
        )
    slack_vars = {key: lp.var(f"slack[{key}]", obj=big_m).index for key in required}

    key_rows: Dict[object, int] = {}
    for key, rhs in required.items():
        indices = [slack_vars[key]]
        coeffs = [1.0]
        for cols, vars_ in zip(columns, col_vars):
            for (_cost, cov), var in zip(cols, vars_):
                g = cov.get(key, 0.0)
                if g > 0.0:
                    indices.append(var)
                    coeffs.append(g)
        lp.add_row(indices, coeffs, ">=", rhs, name=f"qos[{key}]")
        key_rows[key] = lp.num_constraints - 1

    conv_rows: List[int] = []
    for vars_ in col_vars:
        lp.add_row(vars_, [1.0] * len(vars_), "==", 1.0, name=f"convex[{len(conv_rows)}]")
        conv_rows.append(lp.num_constraints - 1)

    solution = lp.solve(backend=BACKEND_SCIPY, warm_start=warm).require_optimal()
    slack_used = sum(float(solution.values[idx]) for idx in slack_vars.values())
    slack_cost = big_m * slack_used
    return solution, key_rows, conv_rows, slack_used, slack_cost


def _solve_dantzig_wolfe(
    problem: MCPerfProblem,
    props: HeuristicProperties,
    active: List[int],
    do_rounding: bool,
    keep_store: bool,
) -> Optional[LowerBoundResult]:
    """Column generation over per-object subproblems; None when duals are missing."""
    from repro.core.formulation import build_formulation

    goal = problem.goal
    result = LowerBoundResult(properties=props, feasible=False)
    result.backend_used = BACKEND_DECOMPOSED

    pricers: List[_ObjectPricer] = []
    columns: List[List[Tuple[float, Dict[object, float]]]] = []
    for k in active:
        form = build_formulation(_object_problem(problem, k), props)
        result.num_variables += form.lp.num_variables
        result.num_constraints += form.lp.num_constraints
        # Seed the master with the object's own-fraction column when the
        # object can meet the target alone: if every object can, their sum
        # meets the aggregate target and the master starts feasible.
        seeds: List[Tuple[float, Dict[object, float]]] = []
        seed_solution = None
        if not form.structurally_infeasible:
            solution = form.lp.solve(backend=BACKEND_AUTO)
            if solution.status is SolveStatus.OPTIMAL:
                seed_solution = solution
                values = np.asarray(solution.values, dtype=float)
                base = np.array([v.objective for v in form.lp.variables])
                cov = {}
                for key, (row, _d, _c, _m) in form.qos_meta.items():
                    if row < 0:
                        continue
                    con = form.lp.constraints[row]
                    idx = np.asarray(con.indices, dtype=np.int64)
                    cf = np.asarray(con.coeffs, dtype=float)
                    cov[key] = float(cf @ values[idx])
                seeds.append((float(base @ values) + float(form.objective_constant), cov))
        pricer = _ObjectPricer(k, form)  # relaxes the QoS rows in place
        pricer.last = seed_solution  # warm seed for the first pricing round
        seeds.append((pricer.constant, {}))  # the empty placement, always valid
        pricers.append(pricer)
        columns.append(seeds)

    denom, const, maxp = _aggregate_requirements(problem, pricers)
    required = {}
    for key, d in denom.items():
        if d <= 0:
            continue
        need = goal.fraction * d
        if maxp.get(key, 0.0) < need - 1e-9:
            result.status = "structurally-infeasible"
            result.reason = (
                f"goal scope {key!r}: at most {maxp.get(key, 0.0) / d:.5f} of "
                f"reads coverable, goal requires {goal.fraction:.5f}"
            )
            return result
        rhs = need - const.get(key, 0.0)
        if rhs > 1e-9:
            required[key] = rhs

    big_m = INITIAL_BIG_M
    escalations = 0
    best_bound = -np.inf
    rounds = 0
    converged = False
    master_obj = None
    prev_master = None
    prev_counts = None
    try:
        while rounds < MAX_PRICING_ROUNDS:
            rounds += 1
            counts = [len(cols) for cols in columns]
            warm = _remap_master_warm(
                prev_master, prev_counts, counts,
                num_keys=len(required), num_rows=len(required) + len(pricers),
            )
            solution, key_rows, conv_rows, slack_used, slack_cost = _solve_master(
                pricers, columns, required, big_m, warm=warm
            )
            prev_master, prev_counts = solution, counts
            if solution.duals is None:
                return None
            duals = {
                key: max(float(solution.duals[row]), 0.0)
                for key, row in key_rows.items()
            }
            mu = [float(solution.duals[row]) for row in conv_rows]
            master_obj = float(solution.objective) - slack_cost

            new_columns = 0
            lagrangian = sum(duals[key] * required[key] for key in required)
            for pricer, cols, mu_k in zip(pricers, columns, mu):
                z, cost, coverage = pricer.price(duals)
                lagrangian += z + pricer.constant
                if z + pricer.constant - mu_k < -REDUCED_COST_EPS:
                    cols.append((cost, coverage))
                    new_columns += 1
            best_bound = max(best_bound, lagrangian)

            if new_columns == 0:
                if slack_used > SLACK_TOL:
                    if escalations >= MAX_BIG_M_ESCALATIONS:
                        result.status = "infeasible"
                        result.reason = _INFEASIBLE_REASON
                        return result
                    escalations += 1
                    big_m *= 100.0
                    continue
                converged = True
                break
    except RuntimeError as exc:
        # A master/pricing solve failed outright; surface it like an LP error.
        result.status = "error"
        result.reason = f"decomposed solve failed: {exc}"
        return result

    result.feasible = True
    result.status = "optimal" if converged else "iteration-limit"
    # On convergence the master optimum *is* the monolithic LP optimum; at
    # the round cap only the Lagrangian dual value is a safe lower bound.
    result.lp_cost = master_obj if converged else max(best_bound, 0.0)
    result.extras["decomposition"] = {
        "mode": "dantzig-wolfe",
        "objects": len(active),
        "rounds": rounds,
        "columns": sum(len(cols) for cols in columns),
        "converged": converged,
    }
    if not converged:
        result.extras["decomposition_bound_gap"] = (
            None if master_obj is None else master_obj - result.lp_cost
        )
    if do_rounding:
        result.extras["rounding_skipped"] = (
            "aggregated-scope decomposition yields no monolithic LP point to round"
        )
    if keep_store:
        result.extras["store_skipped"] = (
            "aggregated-scope decomposition keeps no monolithic store matrix"
        )
    return result
