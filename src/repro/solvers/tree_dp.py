"""Exact tree backend: bottom-up replica placement on tree metrics.

When the topology's latency matrix is a tree metric
(:meth:`~repro.topology.graph.Topology.is_tree`), MC-PERF's full-coverage
special case reduces, per (interval, object), to covering every demanding
site with balls of radius Tlat centered on storage nodes — and on trees the
classic bottom-up greedy (place a replica at the highest ancestor still
within range of the deepest uncovered demander) solves that cover *exactly*
in linear time per cell (Benoit–Rehn–Robert-style bottom-up traversal).
Because ball hypergraphs on trees are totally balanced, the set-cover LP
relaxation is integral, so the greedy's cost equals the LP lower bound: the
backend returns ``lp_cost == feasible_cost`` with zero rounding gap, without
ever assembling the LP.

Applicability (:func:`tree_dp_applicable`) is deliberately narrow and
checked structurally — anything outside the class falls back to the LP:

* QoS goal at ``fraction == 1.0``: full coverage collapses every goal scope
  to the same per-cell condition ("each demanded, non-origin-covered cell
  must be covered"), which is what makes the cells independent.
* The general heuristic class (no SC/RC rows, global routing/knowledge, no
  history/reactive create fixings) — constrained classes couple cells.
* ``gamma == zeta == 0`` (no penalty or opening terms) and either a single
  interval or ``beta == 0`` (creation cost would otherwise couple
  consecutive intervals).
* Default placement universe: ``origin_free``, no ``storage_nodes`` /
  ``assignment`` / ``initial_placement`` overrides.

Within the class the instance is never structurally infeasible: every
demanding site outside the origin's radius is itself a storage node at
distance zero.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np

from repro.core.bounds import LowerBoundResult
from repro.core.evaluate import solution_cost
from repro.core.goals import QoSGoal
from repro.core.problem import MCPerfProblem
from repro.core.properties import HeuristicProperties
from repro.core.rounding import RoundingResult
from repro.solvers.registry import BACKEND_TREE_DP

_EPS = 1e-9


def tree_dp_applicable(
    problem: MCPerfProblem, properties: Optional[HeuristicProperties] = None
) -> Tuple[bool, str]:
    """Whether :func:`solve_tree_dp` computes the exact bound for this instance.

    Returns ``(ok, reason)`` — ``reason`` names the first failed condition,
    so auto-selection diagnostics can say why the LP path was kept.
    """
    props = properties or HeuristicProperties()
    goal = problem.goal
    if not isinstance(goal, QoSGoal):
        return False, "tree DP needs a QoS goal"
    if goal.fraction < 1.0 - 1e-12:
        return False, "tree DP needs fraction == 1 (full coverage decouples the cells)"
    if not props.is_general:
        return False, "tree DP covers only the general heuristic class"
    costs = problem.costs
    if costs.gamma != 0:
        return False, "gamma penalties couple coverage with the objective"
    if costs.zeta != 0:
        return False, "node-opening costs couple cells across objects"
    if not problem.origin_free:
        return False, "tree DP assumes the origin-free placement universe"
    if problem.storage_nodes is not None:
        return False, "explicit storage_nodes restrict the candidate set"
    if problem.assignment is not None:
        return False, "deployment assignment changes the access metric"
    if problem.initial_placement is not None:
        return False, "an initial placement changes creation accounting"
    if problem.demand.num_intervals > 1 and costs.beta != 0:
        return False, "creation cost couples intervals (needs one interval or beta == 0)"
    if not problem.topology.is_tree():
        return False, "latency matrix is not a tree metric"
    return True, ""


def _cover_tree(
    order: np.ndarray,
    parent: np.ndarray,
    pdist: np.ndarray,
    demand_mask: np.ndarray,
    radius: float,
) -> np.ndarray:
    """Minimum vertex ball cover of the masked demanders on a rooted tree.

    ``order`` lists nodes with every parent before its children (root
    first); processing it in reverse visits children before parents.  Two
    per-node quantities propagate upward: ``d_unc`` — distance to the
    farthest still-uncovered demander in the subtree (−inf when none) — and
    ``d_cov`` — remaining reach (radius minus distance) of the best replica
    placed in the subtree.  A replica is placed at a node exactly when
    deferring to its parent would put the deepest uncovered demander out of
    range; on trees this greedy is optimal, and the root (the origin, not a
    placement site) can never be left with uncovered demand because any
    demander within ``radius`` of the root is origin-covered and excluded
    from the mask.
    """
    n = len(order)
    neg_inf = -np.inf
    d_unc = np.full(n, neg_inf)
    d_cov = np.full(n, neg_inf)
    placed = np.zeros(n, dtype=bool)
    root = int(order[0])

    for v in order[::-1]:
        v = int(v)
        if demand_mask[v] and d_unc[v] < 0.0:
            d_unc[v] = 0.0
        if d_cov[v] >= d_unc[v] - _EPS:
            d_unc[v] = neg_inf
        if v == root:
            if d_unc[v] > neg_inf:
                raise RuntimeError(
                    "tree cover left uncovered demand at the origin; "
                    "instance is outside the tree-DP class"
                )
            continue
        w = pdist[v]
        if d_unc[v] > neg_inf and d_unc[v] + w > radius + _EPS:
            placed[v] = True
            d_cov[v] = radius
            d_unc[v] = neg_inf
        p = int(parent[v])
        if d_unc[v] > neg_inf and d_unc[v] + w > d_unc[p]:
            d_unc[p] = d_unc[v] + w
        if d_cov[v] > neg_inf and d_cov[v] - w > d_cov[p]:
            d_cov[p] = d_cov[v] - w
    return placed


def solve_tree_dp(
    problem: MCPerfProblem,
    properties: Optional[HeuristicProperties] = None,
    do_rounding: bool = True,
    keep_store: bool = False,
    audit: Optional[str] = None,
    audit_subject: str = "",
) -> LowerBoundResult:
    """Exact lower bound (and integral placement) via the tree cover.

    The returned :class:`~repro.core.bounds.LowerBoundResult` mirrors the LP
    path: ``lp_cost`` is the exact optimum, and with ``do_rounding`` the
    attached rounding carries the optimal *integral* store matrix — the gap
    is identically zero.
    """
    props = properties or HeuristicProperties()
    ok, reason = tree_dp_applicable(problem, props)
    if not ok:
        raise ValueError(f"tree-DP backend not applicable: {reason}")

    t0 = time.perf_counter()
    inst = problem.instance(props)
    order, parent, pdist = problem.topology.tree_parents()
    goal = problem.goal
    radius = float(goal.tlat_ms)
    costs = problem.costs

    reads = inst.qos_reads()  # (Nd, I, K); demanders are topology nodes
    nd_count, intervals, objects = reads.shape
    origin_covered = inst.origin_covers.astype(bool)

    # Per-cell uniform replica weight: alpha per stored interval, delta
    # update traffic, plus beta when storing implies creating (single
    # interval, empty initial placement); beta == 0 in the multi-interval
    # branch of the applicability predicate.
    writes_per_ik = inst.writes.sum(axis=0)  # (I, K)
    weight = costs.alpha + costs.delta * writes_per_ik  # (I, K)
    if intervals == 1:
        weight = weight + costs.beta

    storers = inst.storer_ids  # topology ids, origin excluded
    node_to_storer = np.full(problem.topology.num_nodes, -1, dtype=np.int64)
    node_to_storer[storers] = np.arange(len(storers))

    store = np.zeros((len(storers), intervals, objects))
    lp_cost = 0.0
    cells_solved = 0
    for k in range(objects):
        col = reads[:, :, k]
        if not col.any():
            continue
        for i in range(intervals):
            demand_mask = (col[:, i] > 0) & ~origin_covered
            if not demand_mask.any():
                continue
            placed = _cover_tree(order, parent, pdist, demand_mask, radius)
            nodes = np.flatnonzero(placed)
            if len(nodes):
                store[node_to_storer[nodes], i, k] = 1.0
                lp_cost += float(weight[i, k]) * len(nodes)
            cells_solved += 1

    result = LowerBoundResult(
        properties=props,
        feasible=True,
        lp_cost=lp_cost,
        status="optimal",
        backend_used=BACKEND_TREE_DP,
        solve_seconds=time.perf_counter() - t0,
    )
    result.extras["tree_dp"] = {
        "cells": cells_solved,
        "replicas": int(store.sum()),
    }
    if keep_store:
        result.store_lp = store

    if do_rounding:
        t1 = time.perf_counter()
        cost = solution_cost(inst, props, costs, store, goal=goal)
        result.rounding = RoundingResult(
            store=store,
            cost=cost,
            feasible=True,
            fractional_units=0,
            rounded_up=0,
            rounded_down=0,
            repaired=0,
        )
        result.feasible_cost = cost.total
        result.round_seconds = time.perf_counter() - t1

    from repro.audit import resolve_mode

    mode = resolve_mode(audit)
    if mode != "off":
        from repro.audit import audit_backend_agreement, resolve_sample, selected_for_sample

        if mode == "full" and selected_for_sample(audit_subject, resolve_sample()):
            ta = time.perf_counter()
            result.audit = audit_backend_agreement(
                problem, props, result, mode=mode, subject=audit_subject
            )
            result.extras["audit_seconds"] = time.perf_counter() - ta
    return result
