"""Content-addressed on-disk result cache.

Each task result is stored as one JSON file under
``<root>/<key[:2]>/<key>.json`` where ``key`` is the task's content digest
(:mod:`repro.runner.digest`).  Because the key covers the problem, the class
properties, the goal level and the solve flags, a warm cache serves repeat
sweeps without a single LP solve, and editing one heuristic class invalidates
only that class's entries.

Entries carry the producing task ``kind`` and the schema version; mismatches
and unreadable files are treated as misses (and overwritten on the next
``put``), so the cache is always safe to delete or share.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from repro.runner.digest import SCHEMA_VERSION


class ResultCache:
    """A directory of content-addressed task results."""

    def __init__(self, root: os.PathLike | str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str, kind: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or None on miss/corruption."""
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if entry.get("schema") != SCHEMA_VERSION or entry.get("kind") != kind:
            return None
        payload = entry.get("payload")
        return payload if isinstance(payload, dict) else None

    def store(self, key: str, kind: str, payload: Dict[str, Any], seconds: float) -> None:
        """Persist a result atomically (write-to-temp + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "key": key,
            "seconds": seconds,
            "payload": payload,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r}, entries={len(self)})"
