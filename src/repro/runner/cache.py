"""Content-addressed on-disk result cache.

Each task result is stored as one JSON file under
``<root>/<key[:2]>/<key>.json`` where ``key`` is the task's content digest
(:mod:`repro.runner.digest`).  Because the key covers the problem, the class
properties, the goal level and the solve flags, a warm cache serves repeat
sweeps without a single LP solve, and editing one heuristic class invalidates
only that class's entries.

Entries carry the producing task ``kind`` and the schema version; mismatches
and unreadable files are treated as misses (and overwritten on the next
``put``), so the cache is always safe to delete or share.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from repro.runner.digest import SCHEMA_VERSION


class ResultCache:
    """A directory of content-addressed task results."""

    def __init__(self, root: os.PathLike | str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load_entry(self, key: str, kind: str) -> Optional[Dict[str, Any]]:
        """The full stored entry for ``key`` (payload + original solve
        ``seconds``), or None on miss/corruption."""
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if entry.get("schema") != SCHEMA_VERSION or entry.get("kind") != kind:
            return None
        if not isinstance(entry.get("payload"), dict):
            return None
        return entry

    def load(self, key: str, kind: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or None on miss/corruption."""
        entry = self.load_entry(key, kind)
        return None if entry is None else entry["payload"]

    def store(self, key: str, kind: str, payload: Dict[str, Any], seconds: float) -> None:
        """Persist a result atomically (write-to-temp + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "key": key,
            "seconds": seconds,
            "payload": payload,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def quarantine(self, key: str) -> bool:
        """Move a suspect entry aside as ``<key>.json.quarantined``.

        Called when a cache-hit audit flags the stored payload (bit rot, a
        hand-edited file, a stale digest).  The entry stops being served —
        the next load is a miss and the re-solved result overwrites it — but
        the bytes are preserved next to the cache for inspection.  Returns
        False when the entry was already gone.
        """
        path = self._path(key)
        try:
            os.replace(path, path.with_name(path.name + ".quarantined"))
        except OSError:
            return False
        return True

    def stats(self) -> Dict[str, Any]:
        """Aggregate view of the cache: entry count, bytes on disk, entries
        per task kind, and the total solve seconds the entries saved."""
        entries = 0
        total_bytes = 0
        kinds: Dict[str, int] = {}
        seconds = 0.0
        for path in sorted(self.root.glob("*/*.json")):
            try:
                entry = json.loads(path.read_text())
                size = path.stat().st_size
            except (OSError, ValueError):
                continue
            entries += 1
            total_bytes += size
            kind = str(entry.get("kind", "?"))
            kinds[kind] = kinds.get(kind, 0) + 1
            try:
                seconds += float(entry.get("seconds", 0.0) or 0.0)
            except (TypeError, ValueError):
                pass
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "seconds": seconds,
            "kinds": kinds,
        }

    def clear(self) -> int:
        """Delete every entry (and empty shard directory); returns the count."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for shard in self.root.iterdir():
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass  # non-empty (stray files) — leave it
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r}, entries={len(self)})"
