"""The task scheduler: serial or process-parallel, cache-aware, fault-tolerant.

:class:`ExperimentRunner` maps a list of tasks to their results:

1. every task's content digest is checked against a previous run's
   :class:`~repro.runner.resume.ResumeState` (``--resume``) and the
   :class:`~repro.runner.cache.ResultCache` (when configured); payloads that
   fail to decode are treated as misses and re-executed, never trusted;
2. the remaining tasks are *chunked by reuse group* — tasks sharing a
   ``reuse_key()`` (same class, QoS fraction varying) stay together so the
   per-process formulation memo can re-target one LP's right-hand sides
   instead of rebuilding it per level;
3. chunks execute under the :class:`~repro.runner.resilience.RetryPolicy`:
   per-attempt wall-clock timeouts, bounded retry with exponential backoff,
   and optionally a final pure-simplex attempt for bound tasks
   (``on_error="degrade"``).  In-process at ``jobs=1`` (bit-identical to the
   historical serial loops with the default policy), or across a
   ``ProcessPoolExecutor`` at ``jobs>1``;
4. a worker crash (``BrokenProcessPool``) never sinks the batch: unfinished
   chunks are re-dispatched to a fresh pool, split to quarantine the poison
   task, and a task that keeps killing its workers becomes a structured
   :class:`~repro.runner.resilience.TaskFailure` (or re-raises under
   ``on_error="fail"``);
5. fresh results are written back to the cache and, together with hits and
   failures, recorded incrementally in the
   :class:`~repro.runner.artifacts.RunWriter`, so an interrupted run can be
   resumed from its run directory.

Results always come back in task order, whatever the execution order was.
A task that exhausted every recovery path occupies its slot as a
:class:`TaskFailure` instead of a result (``on_error`` ``skip``/``degrade``).
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence

from repro.runner.artifacts import RunWriter
from repro.runner.cache import ResultCache
from repro.runner.resilience import (
    RetryPolicy,
    TaskFailure,
    TaskOutcome,
    WorkerCrashError,
    run_with_policy,
)
from repro.runner.resume import ResumeState


def _run_chunk(tasks: Sequence[Any], policy: RetryPolicy) -> List[TaskOutcome]:
    """Execute one reuse-group chunk sequentially; top-level for pickling."""
    return [run_with_policy(task, policy) for task in tasks]


class ExperimentRunner:
    """Runs task batches with optional parallelism, caching and artifacts.

    Parameters
    ----------
    jobs:
        Worker processes. 1 (default) executes in-process, in submission
        order — numerically identical to the historical serial pipelines.
    cache:
        Optional :class:`ResultCache` (content-addressed, on disk).
    artifacts:
        Optional :class:`RunWriter`; call :meth:`finalize` after the last
        batch to write the final ``manifest.json`` and ``timing.txt``
        (the manifest itself is flushed incrementally as tasks finish).
    policy:
        Optional :class:`RetryPolicy` controlling per-task timeouts, retries
        and the ``on_error`` mode.  The default policy reproduces the
        historical fail-fast behavior exactly.
    resume:
        Optional :class:`ResumeState` from a previous ``--run-dir``; tasks
        whose content digest completed ``ok`` there are served without
        re-execution.

    One runner may serve several ``map()`` batches (e.g. a sensitivity sweep
    issuing one batch per scenario); counters accumulate across batches.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        artifacts: Optional[RunWriter] = None,
        policy: Optional[RetryPolicy] = None,
        resume: Optional[ResumeState] = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.artifacts = artifacts
        self.policy = policy or RetryPolicy()
        self.resume = resume
        self.tasks = 0
        self.cache_hits = 0
        self.executed = 0
        self.failed = 0
        self.resumed = 0
        self.audit_quarantined = 0

    # -- execution -----------------------------------------------------------

    def map(self, tasks: Sequence[Any]) -> List[Any]:
        """Results for ``tasks``, in task order.

        Slots of tasks that exhausted every recovery path hold a
        :class:`TaskFailure` (``on_error`` ``skip``/``degrade``) — callers
        decide whether a partial batch is usable.
        """
        tasks = list(tasks)
        results: List[Any] = [None] * len(tasks)
        cached: Dict[int, bool] = {}

        keys = [task.cache_key() for task in tasks]
        record_ids: Optional[List[int]] = None
        if self.artifacts is not None:
            record_ids = self.artifacts.plan(
                [(task.kind, task.label, key) for task, key in zip(tasks, keys)]
            )

        pending: List[int] = []
        for i, (task, key) in enumerate(zip(tasks, keys)):
            hit = self._load_prior(task, key)
            if hit is None:
                pending.append(i)
                continue
            payload, seconds, source = hit
            try:
                results[i] = task.decode(payload)
            except Exception:
                # Stale or corrupt payload: a miss, not a batch-killer.  The
                # re-executed result overwrites the bad entry.
                pending.append(i)
                continue
            # Re-certify served payloads before trusting them: decode
            # success only proves the JSON parses, not that the numbers
            # still satisfy the constraints they claim to.
            report = self._audit_hit(task, results[i], keys[i])
            if report is not None and not report.ok:
                if source == "cache" and self.cache is not None:
                    self.cache.quarantine(keys[i])
                self.audit_quarantined += 1
                results[i] = None
                pending.append(i)
                continue
            cached[i] = True
            if source == "resume":
                self.resumed += 1
            self._record(
                i, tasks, keys, record_ids, cached=True, seconds=seconds,
                result=results[i], audit=report,
            )

        chunks = self._chunks(tasks, pending)
        if self.jobs == 1 or len(chunks) <= 1:
            for chunk in chunks:
                for i in chunk:
                    # Per-task collection: with on_error="fail" the raise
                    # propagates (historical), but already-finished siblings
                    # stay recorded and cached for a later --resume.
                    outcome = run_with_policy(tasks[i], self.policy)
                    self._collect(tasks, keys, record_ids, [i], [outcome],
                                  results, cached)
        else:
            self._map_parallel(tasks, keys, record_ids, chunks, results, cached)

        self.tasks += len(tasks)
        self.cache_hits += sum(1 for c in cached.values() if c)
        self.executed += len(pending)
        return results

    def _audit_hit(self, task, result, key):
        """Re-audit a served payload (None when the task has auditing off).

        Audit crashes are demoted to a failing report rather than raised: a
        broken certificate must cost a re-solve, never sink the batch.
        """
        audit_cached = getattr(task, "audit_cached", None)
        if audit_cached is None:
            return None
        try:
            return audit_cached(result, key)
        except Exception as exc:
            from repro.audit import AuditReport

            report = AuditReport(mode="fast", subject=key)
            report.flag("artifact", key, message=f"cache-hit audit crashed: {exc}")
            return report

    def _load_prior(self, task, key):
        """A prior result for ``key`` as ``(payload, seconds, source)``, or None.

        A previous run's ``ok`` record (``--resume``) wins over the shared
        cache; both report the *original* solve seconds so manifests show
        true compute cost even for served tasks.
        """
        if self.resume is not None:
            payload = self.resume.load(key, task.kind)
            if payload is not None:
                return payload, self.resume.seconds(key), "resume"
        if self.cache is not None:
            entry = self.cache.load_entry(key, task.kind)
            if entry is not None:
                return entry["payload"], float(entry.get("seconds", 0.0)), "cache"
        return None

    def _map_parallel(self, tasks, keys, record_ids, chunks, results, cached) -> None:
        """Fan chunks out over worker pools, isolating crashed workers.

        A ``BrokenProcessPool`` only loses the chunks that had not finished.
        A break in a *shared* pool has an ambiguous culprit — every broken
        future is collateral of whichever task killed the worker — so no
        crash is counted there: multi-task chunks split in half (to shrink
        the blast radius) and singletons re-dispatch into an **isolated**
        single-task pool, where a break is definitively that task's own
        fault.  An isolated task that keeps killing workers
        (``policy.crash_retries`` exceeded) becomes a
        :class:`TaskFailure` — or re-raises as :class:`WorkerCrashError`
        under ``on_error="fail"``.
        """
        queue: List[List[int]] = [list(chunk) for chunk in chunks]
        while queue:
            broken: List[List[int]] = []
            with ProcessPoolExecutor(max_workers=min(self.jobs, len(queue))) as pool:
                futures = [
                    (chunk, pool.submit(_run_chunk, [tasks[i] for i in chunk], self.policy))
                    for chunk in queue
                ]
                for chunk, future in futures:
                    try:
                        outcomes = future.result()
                    except BrokenExecutor:
                        broken.append(chunk)
                        continue
                    self._collect(tasks, keys, record_ids, chunk, outcomes,
                                  results, cached)
            queue = []
            for chunk in broken:
                if len(chunk) > 1:
                    mid = len(chunk) // 2
                    queue.append(chunk[:mid])
                    queue.append(chunk[mid:])
                else:
                    self._run_isolated(chunk[0], tasks, keys, record_ids,
                                       results, cached)

    def _run_isolated(self, i, tasks, keys, record_ids, results, cached) -> None:
        """Re-dispatch one crash-suspected task alone in fresh pools.

        Alone in the pool, a ``BrokenExecutor`` can only be this task's own
        doing; each break counts against ``policy.crash_retries``.
        """
        crashes = 0
        while True:
            with ProcessPoolExecutor(max_workers=1) as pool:
                future = pool.submit(_run_chunk, [tasks[i]], self.policy)
                try:
                    outcomes = future.result()
                except BrokenExecutor:
                    crashes += 1
                    if crashes <= self.policy.crash_retries:
                        continue
                else:
                    self._collect(tasks, keys, record_ids, [i], outcomes,
                                  results, cached)
                    return
            label = tasks[i].label or f"{tasks[i].kind}-{i}"
            if self.policy.on_error == "fail":
                raise WorkerCrashError(
                    f"task {label!r} killed its worker process {crashes} time(s)"
                )
            failure = TaskFailure(
                kind=tasks[i].kind,
                label=tasks[i].label,
                error=f"worker process died {crashes} time(s) running this task",
                error_type="WorkerCrash",
                attempts=crashes,
                crashed=True,
            )
            outcome = TaskOutcome(failure=failure, attempts=crashes)
            self._collect(tasks, keys, record_ids, [i], [outcome],
                          results, cached)
            return

    def _chunks(self, tasks: Sequence[Any], pending: Sequence[int]) -> List[List[int]]:
        """Group pending task indices by reuse key (first-appearance order).

        Tasks without a reuse key become singleton chunks; grouped tasks
        execute sequentially inside one process so formulation re-targeting
        applies.  At ``jobs=1`` grouping preserves the historical
        class-outer/level-inner order because sweeps emit tasks that way.
        """
        groups: Dict[str, List[int]] = {}
        order: List[List[int]] = []
        for i in pending:
            key = tasks[i].reuse_key()
            if key is None:
                order.append([i])
                continue
            if key not in groups:
                groups[key] = []
                order.append(groups[key])
            groups[key].append(i)
        return order

    def _collect(self, tasks, keys, record_ids, chunk, outcomes, results, cached) -> None:
        for i, outcome in zip(chunk, outcomes):
            cached[i] = False
            if outcome.failure is not None:
                failure = outcome.failure
                failure.key = keys[i]
                results[i] = failure
                self.failed += 1
                self._record(
                    i, tasks, keys, record_ids, cached=False,
                    seconds=outcome.seconds, failure=failure,
                    attempts=outcome.attempts,
                )
                continue
            results[i] = outcome.result
            # A gracefully-interrupted result (SIGTERM between epochs) covers
            # only part of the task's horizon: caching it under the full
            # task digest would poison every later warm run, and a resume
            # must re-execute it — so it is recorded but never cached and
            # its manifest row carries status "interrupted", which
            # ResumeState refuses to serve.
            interrupted = bool(getattr(outcome.result, "interrupted", False))
            if self.cache is not None and not interrupted:
                self.cache.store(
                    keys[i], tasks[i].kind, tasks[i].encode(outcome.result),
                    outcome.seconds,
                )
            self._record(
                i, tasks, keys, record_ids, cached=False,
                seconds=outcome.seconds, result=outcome.result,
                attempts=outcome.attempts,
                audit=getattr(outcome.result, "audit", None),
                status="interrupted" if interrupted else "ok",
            )

    def _record(
        self, i, tasks, keys, record_ids, *, cached, seconds,
        result=None, failure=None, attempts=0, audit=None, status="ok",
    ) -> None:
        if self.artifacts is None:
            return
        task = tasks[i]
        index = record_ids[i] if record_ids is not None else None
        describe = getattr(task, "describe", None)
        meta = describe() if describe is not None else None
        # Availability digests ride in the meta row so the manifest can
        # aggregate them without re-opening per-task payload files.
        summarize = getattr(task, "summarize", None)
        if summarize is not None and result is not None:
            meta = dict(meta or {})
            meta["availability"] = summarize(result)
        if failure is not None:
            self.artifacts.record(
                index=index, kind=task.kind, label=task.label, key=keys[i],
                cached=False, seconds=seconds, status="failed",
                attempts=attempts, error=failure.error,
                failure=failure.to_dict(), meta=meta,
            )
        else:
            self.artifacts.record(
                index=index, kind=task.kind, label=task.label, key=keys[i],
                cached=cached, seconds=seconds, status=status, attempts=attempts,
                payload=task.encode(result), meta=meta,
                audit=None if audit is None else audit.to_dict(),
            )

    # -- bookkeeping ---------------------------------------------------------

    @property
    def cache_misses(self) -> int:
        return self.tasks - self.cache_hits

    def finalize(self, extra: Optional[Dict[str, Any]] = None) -> Optional[str]:
        """Write the run directory (when artifacts are configured)."""
        if self.artifacts is None:
            return None
        info = {
            "jobs": self.jobs,
            "task_timeout": self.policy.task_timeout,
            "retries": self.policy.retries,
            "on_error": self.policy.on_error,
        }
        if extra:
            info.update(extra)
        return str(self.artifacts.finalize(info))

    def summary(self) -> str:
        text = (
            f"tasks={self.tasks} cache_hits={self.cache_hits} "
            f"executed={self.executed} failed={self.failed} jobs={self.jobs}"
        )
        if self.resume is not None:
            text += f" resumed={self.resumed}"
        if self.audit_quarantined:
            text += f" audit_quarantined={self.audit_quarantined}"
        return text


def run_tasks(tasks: Sequence[Any], runner: Optional[ExperimentRunner] = None) -> List[Any]:
    """Run ``tasks`` through ``runner``, or serially in-process when None.

    The None path is the library default: no cache, no artifacts, no worker
    processes, fail-fast policy — the exact pre-runner behavior of the
    callers.
    """
    if runner is None:
        runner = ExperimentRunner(jobs=1)
    return runner.map(tasks)
