"""The task scheduler: serial or process-parallel, cache-aware.

:class:`ExperimentRunner` maps a list of tasks to their results:

1. every task's content digest is checked against the
   :class:`~repro.runner.cache.ResultCache` (when configured);
2. the remaining tasks are *chunked by reuse group* — tasks sharing a
   ``reuse_key()`` (same class, QoS fraction varying) stay together so the
   per-process formulation memo can re-target one LP's right-hand sides
   instead of rebuilding it per level;
3. chunks execute in submission order in-process at ``jobs=1`` (bit-identical
   to the historical serial loops), or across a ``ProcessPoolExecutor`` at
   ``jobs>1``;
4. fresh results are written back to the cache and, together with hits,
   recorded in the :class:`~repro.runner.artifacts.RunWriter`.

Results always come back in task order, whatever the execution order was.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.runner.artifacts import RunWriter
from repro.runner.cache import ResultCache


def _run_chunk(tasks: Sequence[Any]) -> List[Tuple[Any, float]]:
    """Execute one reuse-group chunk sequentially; top-level for pickling."""
    out = []
    for task in tasks:
        t0 = time.perf_counter()
        result = task.run()
        out.append((result, time.perf_counter() - t0))
    return out


class ExperimentRunner:
    """Runs task batches with optional parallelism, caching and artifacts.

    Parameters
    ----------
    jobs:
        Worker processes. 1 (default) executes in-process, in submission
        order — numerically identical to the historical serial pipelines.
    cache:
        Optional :class:`ResultCache` (content-addressed, on disk).
    artifacts:
        Optional :class:`RunWriter`; call :meth:`finalize` after the last
        batch to write ``manifest.json``.

    One runner may serve several ``map()`` batches (e.g. a sensitivity sweep
    issuing one batch per scenario); counters accumulate across batches.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        artifacts: Optional[RunWriter] = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.artifacts = artifacts
        self.tasks = 0
        self.cache_hits = 0
        self.executed = 0

    # -- execution -----------------------------------------------------------

    def map(self, tasks: Sequence[Any]) -> List[Any]:
        """Results for ``tasks``, in task order."""
        tasks = list(tasks)
        results: List[Any] = [None] * len(tasks)
        timings: Dict[int, float] = {}
        cached: Dict[int, bool] = {}

        keys = [task.cache_key() for task in tasks]
        pending: List[int] = []
        for i, (task, key) in enumerate(zip(tasks, keys)):
            payload = self.cache.load(key, task.kind) if self.cache else None
            if payload is not None:
                results[i] = task.decode(payload)
                timings[i] = 0.0
                cached[i] = True
            else:
                pending.append(i)

        chunks = self._chunks(tasks, pending)
        if self.jobs == 1 or len(chunks) <= 1:
            for chunk in chunks:
                outcomes = _run_chunk([tasks[i] for i in chunk])
                self._collect(tasks, keys, chunk, outcomes, results, timings, cached)
        else:
            with ProcessPoolExecutor(max_workers=min(self.jobs, len(chunks))) as pool:
                futures = [
                    (chunk, pool.submit(_run_chunk, [tasks[i] for i in chunk]))
                    for chunk in chunks
                ]
                for chunk, future in futures:
                    self._collect(
                        tasks, keys, chunk, future.result(), results, timings, cached
                    )

        self.tasks += len(tasks)
        self.cache_hits += sum(1 for c in cached.values() if c)
        self.executed += len(pending)

        if self.artifacts is not None:
            for i, task in enumerate(tasks):
                self.artifacts.record(
                    kind=task.kind,
                    label=task.label,
                    key=keys[i],
                    cached=cached.get(i, False),
                    seconds=timings.get(i, 0.0),
                    payload=task.encode(results[i]),
                )
        return results

    def _chunks(self, tasks: Sequence[Any], pending: Sequence[int]) -> List[List[int]]:
        """Group pending task indices by reuse key (first-appearance order).

        Tasks without a reuse key become singleton chunks; grouped tasks
        execute sequentially inside one process so formulation re-targeting
        applies.  At ``jobs=1`` grouping preserves the historical
        class-outer/level-inner order because sweeps emit tasks that way.
        """
        groups: Dict[str, List[int]] = {}
        order: List[List[int]] = []
        for i in pending:
            key = tasks[i].reuse_key()
            if key is None:
                order.append([i])
                continue
            if key not in groups:
                groups[key] = []
                order.append(groups[key])
            groups[key].append(i)
        return order

    def _collect(self, tasks, keys, chunk, outcomes, results, timings, cached) -> None:
        for i, (result, seconds) in zip(chunk, outcomes):
            results[i] = result
            timings[i] = seconds
            cached[i] = False
            if self.cache is not None:
                self.cache.store(keys[i], tasks[i].kind, tasks[i].encode(result), seconds)

    # -- bookkeeping ---------------------------------------------------------

    @property
    def cache_misses(self) -> int:
        return self.tasks - self.cache_hits

    def finalize(self, extra: Optional[Dict[str, Any]] = None) -> Optional[str]:
        """Write the run directory (when artifacts are configured)."""
        if self.artifacts is None:
            return None
        info = {"jobs": self.jobs}
        if extra:
            info.update(extra)
        return str(self.artifacts.finalize(info))

    def summary(self) -> str:
        return (
            f"tasks={self.tasks} cache_hits={self.cache_hits} "
            f"executed={self.executed} jobs={self.jobs}"
        )


def run_tasks(tasks: Sequence[Any], runner: Optional[ExperimentRunner] = None) -> List[Any]:
    """Run ``tasks`` through ``runner``, or serially in-process when None.

    The None path is the library default: no cache, no artifacts, no worker
    processes — the exact pre-runner behavior of the callers.
    """
    if runner is None:
        runner = ExperimentRunner(jobs=1)
    return runner.map(tasks)
