"""Stable content digests for experiment inputs.

The runner's cache is *content-addressed*: a task's cache key is a SHA-256
digest of everything its result depends on — the problem (topology latencies,
demand counts, goal, costs, restrictions), the heuristic-class properties and
the solve/rounding flags.  Re-running a sweep after editing one class
re-solves only that class because only its tasks' digests change.

Digests are computed by a canonical recursive walk, not ``pickle``, so they
are stable across Python versions and process boundaries:

* floats hash by ``repr`` (shortest round-trip representation);
* numpy arrays hash by dtype + shape + raw bytes;
* dataclasses hash field-by-field in sorted field order;
* enums hash by their value; dicts by sorted key.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Any

import numpy as np

#: Bump when the canonical encoding (or result schema) changes incompatibly,
#: so stale cache entries from older code are never decoded.
SCHEMA_VERSION = "1"


def _walk(h: "hashlib._Hash", obj: Any) -> None:
    """Feed one object into the hash with unambiguous type framing."""
    if obj is None:
        h.update(b"\x00N")
    elif isinstance(obj, bool):
        h.update(b"\x00B" + (b"1" if obj else b"0"))
    elif isinstance(obj, int):
        h.update(b"\x00I" + str(obj).encode())
    elif isinstance(obj, float):
        h.update(b"\x00F" + repr(obj).encode())
    elif isinstance(obj, str):
        h.update(b"\x00S" + obj.encode("utf-8") + b"\x00")
    elif isinstance(obj, bytes):
        h.update(b"\x00Y" + obj + b"\x00")
    elif isinstance(obj, enum.Enum):
        h.update(b"\x00E")
        _walk(h, obj.value)
    elif isinstance(obj, np.ndarray):
        h.update(b"\x00A" + str(obj.dtype).encode() + str(obj.shape).encode())
        h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, np.generic):
        _walk(h, obj.item())
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        h.update(b"\x00D" + type(obj).__name__.encode())
        for f in sorted(dataclasses.fields(obj), key=lambda f: f.name):
            h.update(f.name.encode() + b"=")
            _walk(h, getattr(obj, f.name))
    elif isinstance(obj, (list, tuple)):
        h.update(b"\x00L" + str(len(obj)).encode())
        for item in obj:
            _walk(h, item)
    elif isinstance(obj, dict):
        h.update(b"\x00M" + str(len(obj)).encode())
        for key in sorted(obj, key=repr):
            _walk(h, key)
            _walk(h, obj[key])
    elif isinstance(obj, (set, frozenset)):
        h.update(b"\x00T")
        _walk(h, sorted(obj, key=repr))
    else:
        raise TypeError(f"cannot digest object of type {type(obj).__name__}: {obj!r}")


def digest_of(*objects: Any) -> str:
    """Hex SHA-256 digest of the canonical encoding of ``objects``."""
    h = hashlib.sha256()
    h.update(b"repro-digest/v" + SCHEMA_VERSION.encode())
    for obj in objects:
        _walk(h, obj)
    return h.hexdigest()


def short_digest(*objects: Any, length: int = 12) -> str:
    """Truncated :func:`digest_of`, for directory and label names."""
    return digest_of(*objects)[:length]
