"""Picklable task units for the experiment runner.

The paper's methodology is a grid of independent computations: one LP bound
(+ rounding) per (heuristic class x QoS level), one trace replay per
simulated heuristic.  Each grid cell becomes a :class:`BoundTask` or
:class:`SimulateTask` — a frozen, picklable value object that

* computes its own content-addressed ``cache_key()``,
* knows how to ``run()`` itself inside any process (serial or a
  ``ProcessPoolExecutor`` worker), and
* encodes/decodes its result for the on-disk cache and run artifacts.

Formulation reuse across sweep levels (the RHS-only re-targeting of
:meth:`~repro.core.formulation.Formulation.set_qos_fraction`) survives the
move into worker processes through a small per-process memo: tasks that share
a ``reuse_key()`` (same problem modulo QoS fraction, same class) are chunked
onto the same worker by the scheduler, and the first task's formulation is
re-targeted for the rest — exactly the single-process fast path the sweeps
always used.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.bounds import LowerBoundResult, compute_lower_bound
from repro.core.goals import QoSGoal
from repro.core.problem import MCPerfProblem
from repro.core.properties import HeuristicProperties
from repro.runner.digest import digest_of
from repro.simulator.engine import SimulationResult, simulate
from repro.topology.graph import Topology
from repro.workload.trace import Trace

#: Per-process formulation memo: reuse_key -> Formulation.  Bounded because a
#: formulation holds the full LP; sweeps walk classes one group at a time, so
#: a tiny capacity already captures every reuse the schedule allows.
_FORMULATIONS: "OrderedDict[str, object]" = OrderedDict()
_FORMULATION_CAPACITY = 4


def _memoize_formulation(key: str, form: object) -> None:
    _FORMULATIONS[key] = form
    _FORMULATIONS.move_to_end(key)
    while len(_FORMULATIONS) > _FORMULATION_CAPACITY:
        _FORMULATIONS.popitem(last=False)


@dataclass(frozen=True)
class BoundTask:
    """One lower-bound computation: LP solve (+ optional rounding).

    ``properties=None`` computes the general bound.  The QoS level lives in
    ``problem.goal.fraction`` — sweeps materialize one task per (class,
    level) with :func:`dataclasses.replace`-d goals.
    """

    problem: MCPerfProblem
    properties: Optional[HeuristicProperties] = None
    do_rounding: bool = True
    run_length: bool = False
    backend: str = "auto"
    diagnose: bool = False
    #: "greedy" (Appendix-C) or "iterative" (patch-API LP-guided rounding).
    rounding_mode: str = "greedy"
    #: Allow RHS-only formulation reuse across tasks sharing ``reuse_key()``.
    reuse_formulation: bool = False
    #: Display name for artifacts/reports; not part of the cache key.
    label: str = ""
    #: Audit mode ("off"/"fast"/"full"; None reads ``REPRO_AUDIT``).
    #: Deliberately *not* part of the cache key: auditing verifies a result,
    #: it never changes one, so an audited and an unaudited run must share
    #: cache entries.  Cache hits are re-certified via :meth:`audit_cached`.
    audit: Optional[str] = None
    #: Warm-start hint for the LP solve (:class:`~repro.lp.basis.Basis` or
    #: a previous :class:`~repro.lp.solution.LPSolution`).  Like ``audit``,
    #: not part of the cache key: a warm start accelerates a solve, it never
    #: changes the optimum.  The service daemon threads its per-class basis
    #: store through here (``dataclasses.replace(task, warm_basis=...)``).
    warm_basis: Optional[object] = dataclasses.field(
        default=None, compare=False, repr=False
    )

    kind = "bound"

    def cache_key(self) -> str:
        return digest_of(
            "bound-task",
            self.problem,
            self.properties,
            self.do_rounding,
            self.run_length,
            self.backend,
            self.diagnose,
            self.rounding_mode,
        )

    def reuse_key(self) -> Optional[str]:
        """Group key for formulation sharing; None when reuse is impossible.

        Only the QoS fraction may differ inside a group — everything else
        (topology, demand, scope, threshold, costs, class) is part of the
        key, matching what :meth:`Formulation.set_qos_fraction` can re-target.
        """
        if not self.reuse_formulation or not isinstance(self.problem.goal, QoSGoal):
            return None
        normalized = dataclasses.replace(
            self.problem, goal=dataclasses.replace(self.problem.goal, fraction=1.0)
        )
        return digest_of("formulation", normalized, self.properties)

    def run(self) -> LowerBoundResult:
        problem = self.problem
        form = None
        reuse_key = self.reuse_key()
        if reuse_key is not None:
            from repro.core.formulation import build_formulation

            form = _FORMULATIONS.get(reuse_key)
            if form is None:
                form = build_formulation(problem, self.properties)
                _memoize_formulation(reuse_key, form)
            else:
                _FORMULATIONS.move_to_end(reuse_key)
                form.set_qos_fraction(problem.goal.fraction)
            problem = form.problem
        from repro.audit import resolve_mode

        # Full-mode violations carry the task's content digest, so a flagged
        # cell is traceable to its exact cached artifact.
        audit_subject = self.cache_key() if resolve_mode(self.audit) == "full" else ""
        return compute_lower_bound(
            problem,
            self.properties,
            do_rounding=self.do_rounding,
            run_length=self.run_length,
            backend=self.backend,
            formulation=form,
            diagnose=self.diagnose,
            rounding_mode=self.rounding_mode,
            audit=self.audit,
            audit_subject=audit_subject,
            warm_start=self.warm_basis,
        )

    def audit_cached(self, result: LowerBoundResult, key: str = ""):
        """Artifact-level re-certification of a cache-served result.

        Returns an :class:`~repro.audit.report.AuditReport` (None when
        auditing is off).  The scheduler treats a failing report as a cache
        miss: the entry is quarantined and the cell re-solved.
        """
        from repro.audit import audit_bound_result, resolve_mode

        mode = resolve_mode(self.audit)
        if mode == "off":
            return None
        return audit_bound_result(
            self.problem, self.properties, result,
            mode=mode, subject=key or self.label,
        )

    def describe(self) -> Dict[str, object]:
        """Manifest metadata enabling post-hoc auditing (``repro audit``).

        Records the class name (matched against the Table-3 registry), the
        goal level and everything needed to rebuild the problem against the
        original topology/workload inputs.
        """
        from repro.core.classes import STANDARD_CLASSES

        props = self.properties or HeuristicProperties()
        cls = None
        for candidate in STANDARD_CLASSES.values():
            if candidate.properties == props:
                cls = candidate.name
                break
        goal = self.problem.goal
        meta: Dict[str, object] = {
            "class": cls,
            "scope": goal.scope.value,
            "tlat_ms": goal.tlat_ms,
            "intervals": self.problem.demand.num_intervals,
            "warmup": self.problem.warmup_intervals,
            "backend": self.backend,
            "rounding_mode": self.rounding_mode,
            "do_rounding": self.do_rounding,
        }
        if isinstance(goal, QoSGoal):
            meta["qos"] = goal.fraction
        else:
            meta["tavg_ms"] = goal.tavg_ms
        costs = self.problem.costs
        for name in ("alpha", "beta", "gamma", "delta", "zeta"):
            meta[name] = getattr(costs, name)
        return meta

    @staticmethod
    def encode(result: LowerBoundResult) -> Dict[str, object]:
        return result.to_dict()

    @staticmethod
    def decode(payload: Dict[str, object]) -> LowerBoundResult:
        return LowerBoundResult.from_dict(payload)


@dataclass(frozen=True)
class HeuristicSpec:
    """A deployable heuristic as data, so simulate tasks stay picklable.

    Mirrors the CLI's heuristic surface (name + sizing knobs + optional
    healing wrapper); ``build()`` materializes the stateful heuristic inside
    the process that will run the replay.
    """

    name: str
    capacity: int = 10
    replicas: int = 2
    period_s: Optional[float] = None
    tlat_ms: float = 150.0
    heal: bool = False
    heal_copies: int = 2
    #: Zone-spread floor for the healing wrapper (1 = off).
    heal_zones: int = 1
    #: Healing creations per hour of simulated time (None = unlimited).
    heal_budget: Optional[int] = None

    def build(self):
        from repro.heuristics import (
            CooperativeLRUCaching,
            GreedyGlobalPlacement,
            LFUCaching,
            LRUCaching,
            QiuGreedyPlacement,
            RandomPlacement,
        )

        if self.name == "lru":
            heuristic = LRUCaching(self.capacity)
        elif self.name == "lfu":
            heuristic = LFUCaching(self.capacity)
        elif self.name == "coop-lru":
            heuristic = CooperativeLRUCaching(self.capacity)
        elif self.name == "greedy-global":
            heuristic = GreedyGlobalPlacement(
                self.capacity, period_s=self.period_s, tlat_ms=self.tlat_ms
            )
        elif self.name == "qiu":
            heuristic = QiuGreedyPlacement(
                self.replicas, period_s=self.period_s, tlat_ms=self.tlat_ms
            )
        elif self.name == "random":
            heuristic = RandomPlacement(self.replicas, period_s=self.period_s)
        else:
            raise ValueError(f"unknown heuristic {self.name!r}")
        if self.heal:
            from repro.faults import HealingPolicy

            heuristic = HealingPolicy(
                heuristic,
                copies=self.heal_copies,
                min_unique_zones=self.heal_zones,
                repair_budget=self.heal_budget,
            )
        return heuristic


@dataclass(frozen=True)
class SimulateTask:
    """One trace replay of a heuristic (optionally under injected faults).

    Faults stay in their CLI spec-string form; the schedule is generated
    deterministically from ``fault_seed`` inside ``run()``, so the task
    pickles small and replays identically everywhere.
    """

    topology: Topology
    trace: Trace
    heuristic: HeuristicSpec
    tlat_ms: float = 150.0
    warmup_s: float = 0.0
    cost_interval_s: float = 3600.0
    alpha: float = 1.0
    beta: float = 1.0
    faults: Optional[str] = None
    fault_seed: int = 0
    label: str = ""
    #: Audit mode; see :class:`BoundTask.audit` (not part of the cache key).
    audit: Optional[str] = None

    kind = "simulate"

    def cache_key(self) -> str:
        return digest_of(
            "simulate-task",
            self.topology,
            self.trace,
            self.heuristic,
            self.tlat_ms,
            self.warmup_s,
            self.cost_interval_s,
            self.alpha,
            self.beta,
            self.faults,
            self.fault_seed,
        )

    def reuse_key(self) -> Optional[str]:
        return None

    def run(self) -> SimulationResult:
        schedule = None
        if self.faults:
            from repro.faults import parse_faults

            schedule = parse_faults(
                self.faults,
                num_nodes=self.topology.num_nodes,
                num_objects=self.trace.num_objects,
                duration_s=self.trace.duration_s,
                origin=self.topology.origin,
                seed=self.fault_seed,
                zones=self.topology.zones,
            )
            schedule.validate_for(self.topology)
        return simulate(
            self.topology,
            self.trace,
            self.heuristic.build(),
            tlat_ms=self.tlat_ms,
            warmup_s=self.warmup_s,
            cost_interval_s=self.cost_interval_s,
            alpha=self.alpha,
            beta=self.beta,
            faults=schedule,
        )

    def audit_cached(self, result: SimulationResult, key: str = ""):
        """Consistency re-check of a cache-served replay (None when off)."""
        from repro.audit import audit_sim_result, resolve_mode

        mode = resolve_mode(self.audit)
        if mode == "off":
            return None
        return audit_sim_result(result, mode=mode, subject=key or self.label)

    def describe(self) -> Dict[str, object]:
        """Manifest metadata for the post-hoc sim-gate (``repro audit``)."""
        return {
            "heuristic": self.heuristic.name,
            "tlat_ms": self.tlat_ms,
            "warmup_s": self.warmup_s,
            "alpha": self.alpha,
            "beta": self.beta,
            "faults": self.faults,
        }

    @staticmethod
    def summarize(result: SimulationResult) -> Dict[str, object]:
        """Availability digest the manifest aggregates (``availability`` block)."""
        return {
            "availability": result.availability,
            "unavailable_reads": result.unavailable_reads,
            "slo_target": result.slo_target,
            "slo_violations": 1 if result.slo_violated else 0,
        }

    @staticmethod
    def encode(result: SimulationResult) -> Dict[str, object]:
        return result.to_dict()

    @staticmethod
    def decode(payload: Dict[str, object]) -> SimulationResult:
        return SimulationResult.from_dict(payload)


@dataclass(frozen=True)
class ContinuousTask:
    """One epoch-driven continuous-placement run (drift + faults + SLO).

    The workload is synthesized *inside* ``run()`` from the drift
    parameters (deterministic in ``workload_seed``), and the fault spec
    string is parsed over the full ``epochs * epoch_s`` horizon with the
    topology's zone map — so the task pickles small and replays identically
    everywhere, exactly like :class:`SimulateTask`.
    """

    topology: Topology
    heuristic: HeuristicSpec
    epochs: int = 4
    epoch_s: float = 3600.0
    requests_per_epoch: int = 2000
    num_objects: int = 64
    drift: float = 0.25
    zipf_exponent: float = 0.9
    workload_seed: int = 0
    #: Optional workload-emulation spec (:func:`repro.workload.emulate.
    #: parse_emulation` grammar, e.g. ``"diurnal:amp=0.5;flashcrowd:
    #: start=2,end=3,obj=0,mult=8"``).  When set, traces come from
    #: :func:`~repro.workload.emulate.emulated_traces` layered on the same
    #: drift substreams; when None, plain :func:`~repro.workload.drift.
    #: drifting_traces`.
    workload: Optional[str] = None
    tlat_ms: float = 150.0
    warmup_s: float = 0.0
    cost_interval_s: float = 3600.0
    alpha: float = 1.0
    beta: float = 1.0
    faults: Optional[str] = None
    fault_seed: int = 0
    #: Per-epoch availability SLO target (None = unjudged).
    slo: Optional[float] = None
    #: Per-node cap applied to carried placements at epoch boundaries.
    shed_capacity: Optional[int] = None
    object_size_bytes: float = 1.0
    label: str = ""
    #: Audit mode; see :class:`BoundTask.audit` (not part of the cache key).
    audit: Optional[str] = None

    kind = "continuous"

    def cache_key(self) -> str:
        return digest_of(
            "continuous-task",
            self.topology,
            self.heuristic,
            self.epochs,
            self.epoch_s,
            self.requests_per_epoch,
            self.num_objects,
            self.drift,
            self.zipf_exponent,
            self.workload_seed,
            self.workload,
            self.tlat_ms,
            self.warmup_s,
            self.cost_interval_s,
            self.alpha,
            self.beta,
            self.faults,
            self.fault_seed,
            self.slo,
            self.shed_capacity,
            self.object_size_bytes,
        )

    def reuse_key(self) -> Optional[str]:
        return None

    def materialize(self):
        """``(traces, schedule, slo)`` deterministically from the task's fields.

        The placement-service daemon steps epochs itself (checkpointing at
        each boundary), so the workload/fault materialization is factored
        out of :meth:`run` — both paths must see byte-identical inputs for
        crash recovery to converge on the batch run's placements.
        """
        from repro.faults import AvailabilitySLO, parse_faults
        from repro.workload.drift import drifting_traces

        duration_s = self.epochs * self.epoch_s
        schedule = None
        if self.faults:
            schedule = parse_faults(
                self.faults,
                num_nodes=self.topology.num_nodes,
                num_objects=self.num_objects,
                duration_s=duration_s,
                origin=self.topology.origin,
                seed=self.fault_seed,
                zones=self.topology.zones,
            )
            schedule.validate_for(self.topology)
        if self.workload:
            from repro.workload.emulate import emulated_traces

            traces = emulated_traces(
                self.topology.num_nodes,
                self.num_objects,
                epochs=self.epochs,
                epoch_s=self.epoch_s,
                requests_per_epoch=self.requests_per_epoch,
                spec=self.workload,
                drift=self.drift,
                zipf_exponent=self.zipf_exponent,
                populations=self.topology.populations,
                zones=self.topology.zones,
                seed=self.workload_seed,
            )
        else:
            traces = drifting_traces(
                self.topology.num_nodes,
                self.num_objects,
                epochs=self.epochs,
                epoch_s=self.epoch_s,
                requests_per_epoch=self.requests_per_epoch,
                drift=self.drift,
                zipf_exponent=self.zipf_exponent,
                populations=self.topology.populations,
                seed=self.workload_seed,
            )
        slo = None if self.slo is None else AvailabilitySLO(self.slo)
        return traces, schedule, slo

    def run(self, stop=None):
        from repro.simulator.continuous import run_continuous

        traces, schedule, slo = self.materialize()
        return run_continuous(
            self.topology,
            traces,
            self.heuristic.build,
            tlat_ms=self.tlat_ms,
            faults=schedule,
            slo=slo,
            capacity=self.shed_capacity,
            object_size_bytes=self.object_size_bytes,
            alpha=self.alpha,
            beta=self.beta,
            cost_interval_s=self.cost_interval_s,
            warmup_s=self.warmup_s,
            stop=stop,
        )

    def audit_cached(self, result, key: str = ""):
        """Consistency re-check of a cache-served continuous run."""
        from repro.audit import audit_continuous_result, resolve_mode

        mode = resolve_mode(self.audit)
        if mode == "off":
            return None
        return audit_continuous_result(result, mode=mode, subject=key or self.label)

    def describe(self) -> Dict[str, object]:
        """Manifest metadata for post-hoc inspection."""
        return {
            "heuristic": self.heuristic.name,
            "heal": self.heuristic.heal,
            "heal_zones": self.heuristic.heal_zones,
            "epochs": self.epochs,
            "epoch_s": self.epoch_s,
            "drift": self.drift,
            "workload": self.workload,
            "tlat_ms": self.tlat_ms,
            "faults": self.faults,
            "slo": self.slo,
        }

    @staticmethod
    def summarize(result) -> Dict[str, object]:
        """Availability digest the manifest aggregates (``availability`` block)."""
        return {
            "availability": result.availability,
            "unavailable_reads": result.unavailable_reads,
            "slo_target": result.slo_target,
            "slo_violations": result.slo_violations,
        }

    @staticmethod
    def encode(result) -> Dict[str, object]:
        return result.to_dict()

    @staticmethod
    def decode(payload: Dict[str, object]):
        from repro.simulator.continuous import ContinuousResult

        return ContinuousResult.from_dict(payload)
