"""Resumable runs: reuse a previous run directory's completed results.

A run directory (:class:`~repro.runner.artifacts.RunWriter`) records one row
per task — ``status`` ``ok`` / ``failed`` / ``pending`` — and one payload
file per completed task.  :class:`ResumeState` reads that directory back and
serves the ``ok`` payloads by content digest, so a resumed sweep re-executes
*only* the failed and pending tasks: a crash (or a batch full of
:class:`~repro.runner.resilience.TaskFailure` records) costs exactly the
incomplete work.

The manifest is flushed incrementally while a run progresses, so a run that
died mid-sweep still resumes.  Even without a readable manifest the payload
files alone are enough — any task file carrying a result payload counts as
``ok`` (failed tasks store a ``failure`` record instead, never a payload).

Because tasks are matched by content digest, resuming is safe across CLI
invocations with edited flags: a task whose inputs changed simply misses and
re-executes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Tuple


class ResumeState:
    """Completed results of a previous run directory, keyed by content digest."""

    def __init__(self, run_dir: os.PathLike | str):
        self.run_dir = Path(run_dir)
        if not self.run_dir.is_dir():
            raise FileNotFoundError(f"resume directory not found: {self.run_dir}")
        self._payloads: Dict[Tuple[str, str], Dict[str, Any]] = {}
        self._seconds: Dict[str, float] = {}
        self._status: Dict[str, str] = {}

        manifest = self.run_dir / "manifest.json"
        if manifest.is_file():
            try:
                data = json.loads(manifest.read_text())
            except (OSError, ValueError):
                data = {}
            for rec in data.get("task_records", []):
                key = rec.get("key")
                if not key:
                    continue
                # Pre-resilience manifests had no status; every recorded row
                # was a completed result, so default to "ok".
                status = rec.get("status", "ok")
                self._status[key] = status
                if status == "ok":
                    self._seconds[key] = float(rec.get("seconds", 0.0))

        tasks_dir = self.run_dir / "tasks"
        if tasks_dir.is_dir():
            for path in sorted(tasks_dir.glob("*.json")):
                try:
                    entry = json.loads(path.read_text())
                except (OSError, ValueError):
                    continue
                key = entry.get("key")
                payload = entry.get("payload")
                if not key or not isinstance(payload, dict):
                    continue
                if self._status.get(key, "ok") != "ok":
                    continue
                self._payloads[(key, str(entry.get("kind", "")))] = payload

    def load(self, key: str, kind: str) -> Optional[Dict[str, Any]]:
        """The prior run's payload for ``(key, kind)``, or None."""
        return self._payloads.get((key, kind))

    def seconds(self, key: str) -> float:
        """The original compute time recorded for ``key`` (0.0 if unknown)."""
        return self._seconds.get(key, 0.0)

    def counts(self) -> Dict[str, int]:
        """Status histogram of the prior run (ok / failed / pending)."""
        out = {"ok": 0, "failed": 0, "pending": 0}
        for status in self._status.values():
            out[status] = out.get(status, 0) + 1
        # Payload files without a manifest row still resume as ok.
        unlisted = sum(
            1 for key, _kind in self._payloads if key not in self._status
        )
        out["ok"] += unlisted
        return out

    def __len__(self) -> int:
        return len(self._payloads)

    def __repr__(self) -> str:
        return f"ResumeState({str(self.run_dir)!r}, ok_payloads={len(self)})"
