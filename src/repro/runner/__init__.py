"""The unified experiment-runner layer.

The paper's methodology is a grid of independent computations — one LP bound
(+ rounding) per (heuristic class x QoS level), one trace replay per
simulated heuristic.  This package turns those grids into explicit task
graphs and runs them through one scheduler with:

* **parallel solves** — ``jobs=N`` fans tasks out over a process pool;
  ``jobs=1`` is bit-identical to the historical serial loops;
* **content-addressed caching** — results keyed by a stable digest of
  (problem, class properties, goal level, backend, rounding flags), so a
  warm rerun performs zero LP solves and editing one class re-solves only
  that class;
* **fault tolerance** — per-task wall-clock timeouts, bounded retry with
  exponential backoff, worker-crash isolation (a ``BrokenProcessPool``
  re-dispatches unfinished chunks instead of sinking the batch), graceful
  degradation of bound solves to the pure-simplex backend, and structured
  :class:`TaskFailure` records instead of batch-killing exceptions
  (:mod:`repro.runner.resilience`);
* **run artifacts & resume** — ``runs/<timestamp>-<digest>/`` with an
  incrementally-flushed ``manifest.json`` (per-task ``ok``/``failed``/
  ``pending`` status), per-task result JSON and a timing summary; a crashed
  or partially-failed run resumes via :class:`ResumeState`, re-executing
  only its incomplete tasks.

The sweep (:func:`repro.analysis.sweep.qos_sweep`), selection
(:func:`repro.core.selection.select_heuristic`), deployment
(:func:`repro.core.deployment.plan_deployment`) and sensitivity
(:mod:`repro.analysis.sensitivity`) pipelines all accept a ``runner=``; the
CLI builds one from ``--jobs/--cache-dir/--run-dir/--task-timeout/--retries/
--on-error/--resume``.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.runner.artifacts import RunWriter, TaskRecord
from repro.runner.cache import ResultCache
from repro.runner.digest import digest_of, short_digest
from repro.runner.execute import ExperimentRunner, run_tasks
from repro.runner.resilience import (
    RetryPolicy,
    TaskFailure,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.runner.resume import ResumeState
from repro.runner.tasks import BoundTask, ContinuousTask, HeuristicSpec, SimulateTask

__all__ = [
    "BoundTask",
    "ContinuousTask",
    "ExperimentRunner",
    "HeuristicSpec",
    "ResultCache",
    "ResumeState",
    "RetryPolicy",
    "RunWriter",
    "SimulateTask",
    "TaskFailure",
    "TaskRecord",
    "TaskTimeoutError",
    "WorkerCrashError",
    "digest_of",
    "make_runner",
    "run_tasks",
    "short_digest",
]


def make_runner(
    jobs: int = 1,
    cache_dir: Optional[os.PathLike | str] = None,
    run_dir: Optional[os.PathLike | str] = None,
    label: str = "",
    task_timeout: Optional[float] = None,
    retries: int = 0,
    on_error: str = "fail",
    resume: Optional[os.PathLike | str] = None,
) -> ExperimentRunner:
    """An :class:`ExperimentRunner` from CLI-style knobs.

    ``cache_dir=None`` disables caching; ``run_dir=None`` disables run
    artifacts; the default policy (no timeout, no retries, fail-fast) and
    ``resume=None`` reproduce the historical in-memory behavior exactly.
    ``resume`` points at a previous run directory — its ``ok`` results are
    served by content digest, so only failed/pending tasks re-execute.
    """
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    artifacts = RunWriter(root=run_dir, label=label) if run_dir is not None else None
    policy = RetryPolicy(task_timeout=task_timeout, retries=retries, on_error=on_error)
    resume_state = ResumeState(resume) if resume is not None else None
    return ExperimentRunner(
        jobs=jobs, cache=cache, artifacts=artifacts, policy=policy,
        resume=resume_state,
    )
