"""The unified experiment-runner layer.

The paper's methodology is a grid of independent computations — one LP bound
(+ rounding) per (heuristic class x QoS level), one trace replay per
simulated heuristic.  This package turns those grids into explicit task
graphs and runs them through one scheduler with:

* **parallel solves** — ``jobs=N`` fans tasks out over a process pool;
  ``jobs=1`` is bit-identical to the historical serial loops;
* **content-addressed caching** — results keyed by a stable digest of
  (problem, class properties, goal level, backend, rounding flags), so a
  warm rerun performs zero LP solves and editing one class re-solves only
  that class;
* **run artifacts** — ``runs/<timestamp>-<digest>/`` with ``manifest.json``
  (including the cache-hit counters), per-task result JSON and a timing
  summary.

The sweep (:func:`repro.analysis.sweep.qos_sweep`), selection
(:func:`repro.core.selection.select_heuristic`), deployment
(:func:`repro.core.deployment.plan_deployment`) and sensitivity
(:mod:`repro.analysis.sensitivity`) pipelines all accept a ``runner=``; the
CLI builds one from ``--jobs/--cache-dir/--run-dir``.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.runner.artifacts import RunWriter, TaskRecord
from repro.runner.cache import ResultCache
from repro.runner.digest import digest_of, short_digest
from repro.runner.execute import ExperimentRunner, run_tasks
from repro.runner.tasks import BoundTask, HeuristicSpec, SimulateTask

__all__ = [
    "BoundTask",
    "ExperimentRunner",
    "HeuristicSpec",
    "ResultCache",
    "RunWriter",
    "SimulateTask",
    "TaskRecord",
    "digest_of",
    "make_runner",
    "run_tasks",
    "short_digest",
]


def make_runner(
    jobs: int = 1,
    cache_dir: Optional[os.PathLike | str] = None,
    run_dir: Optional[os.PathLike | str] = None,
    label: str = "",
) -> ExperimentRunner:
    """An :class:`ExperimentRunner` from CLI-style knobs.

    ``cache_dir=None`` disables caching; ``run_dir=None`` disables run
    artifacts — the defaults reproduce the historical in-memory behavior.
    """
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    artifacts = RunWriter(root=run_dir, label=label) if run_dir is not None else None
    return ExperimentRunner(jobs=jobs, cache=cache, artifacts=artifacts)
