"""Run-directory artifacts.

Every runner invocation can persist what it did under
``<root>/<timestamp>-<digest>/``:

* ``manifest.json`` — run metadata, the task list (label, cache key, status,
  cached or executed, attempts, seconds) and the cache-hit counters the
  acceptance checks read;
* ``tasks/NNN-<key12>.json`` — each task's full result payload (the same
  encoding the cache uses), or the structured ``failure`` record for a task
  that exhausted every recovery path;
* ``timing.txt`` — a human-readable per-task timing summary.

Tasks are *planned* before execution (status ``pending``) and updated to
``ok`` or ``failed`` as they finish; the manifest is flushed incrementally so
a run that crashes mid-sweep still leaves a resumable record behind
(:class:`~repro.runner.resume.ResumeState` re-executes only the non-``ok``
rows).

The digest in the directory name is the digest of the run's task keys, so
identical experiments land in recognizably-related directories while repeat
runs still get fresh timestamped homes.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.runner.digest import SCHEMA_VERSION, digest_of


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via mkstemp + ``os.replace``.

    The manifest is rewritten after every task; a crash (or a ``kill -9``)
    mid-flush must never leave a torn ``manifest.json`` behind — readers
    (``--resume``, ``repro audit``, the service checkpoint recovery) always
    see either the previous complete snapshot or the new one.  Same pattern
    as :meth:`repro.runner.cache.ResultCache.store`.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass
class TaskRecord:
    """One task's row in the manifest."""

    index: int
    kind: str
    label: str
    key: str
    cached: bool
    seconds: float
    status: str = "ok"
    attempts: int = 0
    error: str = ""
    file: Optional[str] = None
    #: Serialized AuditReport for this task (None when auditing was off).
    audit: Optional[Dict[str, Any]] = None
    #: Task-described metadata (class, goal level, ...) for post-hoc audits.
    meta: Optional[Dict[str, Any]] = None


@dataclass
class RunWriter:
    """Collects task records and writes the run directory incrementally."""

    root: Path
    label: str = ""
    records: List[TaskRecord] = field(default_factory=list)
    _dir: Optional[Path] = None
    _started: float = field(default_factory=time.time)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    @property
    def run_dir(self) -> Optional[Path]:
        return self._dir

    def _ensure_dir(self) -> Path:
        if self._dir is None:
            stamp = time.strftime("%Y%m%d-%H%M%S", time.localtime(self._started))
            run_key = digest_of(self.label, [r.key for r in self.records])[:12]
            path = self.root / f"{stamp}-{run_key}"
            suffix = 0
            while path.exists():
                suffix += 1
                path = self.root / f"{stamp}-{run_key}.{suffix}"
            path.mkdir(parents=True)
            (path / "tasks").mkdir()
            self._dir = path
        return self._dir

    def plan(self, entries: Sequence[Tuple[str, str, str]]) -> List[int]:
        """Register a batch of pending tasks; returns their record indices.

        ``entries`` is ``[(kind, label, key), ...]`` in task order.  Planned
        rows appear in the manifest with status ``pending`` immediately, so a
        crash before (or during) execution leaves a resumable record.
        """
        indices: List[int] = []
        for kind, label, key in entries:
            rec = TaskRecord(
                index=len(self.records),
                kind=kind,
                label=label or f"{kind}-{len(self.records)}",
                key=key,
                cached=False,
                seconds=0.0,
                status="pending",
            )
            self.records.append(rec)
            indices.append(rec.index)
        self._flush_manifest()
        return indices

    def record(
        self,
        *,
        kind: str,
        label: str,
        key: str,
        cached: bool,
        seconds: float,
        index: Optional[int] = None,
        status: str = "ok",
        attempts: int = 0,
        error: str = "",
        payload: Optional[Dict[str, Any]] = None,
        failure: Optional[Dict[str, Any]] = None,
        audit: Optional[Dict[str, Any]] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Finalize one task's row (updating its planned entry when given)."""
        if index is not None:
            rec = self.records[index]
            rec.kind, rec.label, rec.key = kind, label or rec.label, key
        else:
            rec = TaskRecord(
                index=len(self.records),
                kind=kind,
                label=label or f"{kind}-{len(self.records)}",
                key=key,
                cached=cached,
                seconds=seconds,
            )
            self.records.append(rec)
        rec.cached = cached
        rec.seconds = seconds
        rec.status = status
        rec.attempts = attempts
        rec.error = error
        rec.audit = audit
        rec.meta = meta
        body: Optional[Dict[str, Any]] = None
        if failure is not None:
            body = {"kind": kind, "key": key, "failure": failure}
        elif payload is not None:
            body = {"kind": kind, "key": key, "payload": payload}
        if body is not None:
            run_dir = self._ensure_dir()
            rec.file = f"tasks/{rec.index:03d}-{key[:12]}.json"
            atomic_write_text(run_dir / rec.file, json.dumps(body))
        self._flush_manifest()

    def manifest(self, extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        hits = sum(1 for r in self.records if r.cached)
        by_status = {"ok": 0, "failed": 0, "pending": 0}
        for r in self.records:
            by_status[r.status] = by_status.get(r.status, 0) + 1
        data: Dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "label": self.label,
            "created": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.localtime(self._started)
            ),
            "tasks": len(self.records),
            "cache_hits": hits,
            "cache_misses": len(self.records) - hits,
            "executed": len(self.records) - hits,
            "ok": by_status["ok"],
            "failed": by_status["failed"],
            "pending": by_status["pending"],
            "seconds": sum(r.seconds for r in self.records),
            "wall_seconds": time.time() - self._started,
            "task_records": [vars(r) for r in self.records],
        }
        # Audit violations are first-class manifest rows, not crashes: the
        # acceptance gates read them here without re-opening payload files.
        audit_violations: List[Dict[str, Any]] = []
        audited = 0
        for r in self.records:
            if r.audit is None:
                continue
            audited += 1
            for violation in r.audit.get("violations", []):
                audit_violations.append({"label": r.label, **violation})
        data["audited"] = audited
        data["audit_failed"] = len(
            {v["label"] for v in audit_violations}
        )
        data["audit_violations"] = audit_violations
        # Availability aggregates: simulate/continuous tasks attach a digest
        # under meta["availability"] (see ExperimentRunner._record); roll it
        # up here so fault-injection sweeps surface unavailability and SLO
        # verdicts without payload spelunking.
        digests = [
            r.meta["availability"]
            for r in self.records
            if r.meta is not None and "availability" in r.meta
        ]
        if digests:
            data["availability"] = {
                "tasks": len(digests),
                "unavailable_reads": sum(
                    int(d.get("unavailable_reads", 0)) for d in digests
                ),
                "min_availability": min(
                    float(d.get("availability", 1.0)) for d in digests
                ),
                "slo_violations": sum(
                    int(d.get("slo_violations", 0)) for d in digests
                ),
                "slo_judged": sum(
                    1 for d in digests if d.get("slo_target") is not None
                ),
            }
        if extra:
            data.update(extra)
        return data

    def _flush_manifest(self, extra: Optional[Dict[str, Any]] = None) -> None:
        """Write the current manifest snapshot (cheap; called per record)."""
        run_dir = self._ensure_dir()
        atomic_write_text(
            run_dir / "manifest.json", json.dumps(self.manifest(extra), indent=2)
        )

    def finalize(self, extra: Optional[Dict[str, Any]] = None) -> Path:
        """Write the final ``manifest.json`` and ``timing.txt``; return the run dir."""
        run_dir = self._ensure_dir()
        manifest = self.manifest(extra)
        atomic_write_text(run_dir / "manifest.json", json.dumps(manifest, indent=2))

        width = max([len(r.label) for r in self.records], default=5)
        lines = [
            f"run {run_dir.name}  label={self.label or '-'}  "
            f"tasks={manifest['tasks']}  cache_hits={manifest['cache_hits']}  "
            f"executed={manifest['executed']}  failed={manifest['failed']}",
            f"{'task'.ljust(width)}  {'source':8s}  {'seconds':>8s}",
        ]
        for r in self.records:
            if r.cached:
                source = "cache"
            elif r.status == "failed":
                source = "failed"
            elif r.status == "pending":
                source = "pending"
            else:
                source = "solve"
            lines.append(f"{r.label.ljust(width)}  {source:8s}  {r.seconds:8.3f}")
        lines.append(
            f"{'total'.ljust(width)}  {'':8s}  {manifest['seconds']:8.3f}"
            f"  (wall {manifest['wall_seconds']:.3f}s)"
        )
        atomic_write_text(run_dir / "timing.txt", "\n".join(lines) + "\n")
        return run_dir
