"""Run-directory artifacts.

Every runner invocation can persist what it did under
``<root>/<timestamp>-<digest>/``:

* ``manifest.json`` — run metadata, the task list (label, cache key, cached
  or executed, seconds) and the cache-hit counters the acceptance checks
  read;
* ``tasks/NNN-<key12>.json`` — each task's full result payload (the same
  encoding the cache uses);
* ``timing.txt`` — a human-readable per-task timing summary.

The digest in the directory name is the digest of the run's task keys, so
identical experiments land in recognizably-related directories while repeat
runs still get fresh timestamped homes.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.runner.digest import SCHEMA_VERSION, digest_of


@dataclass
class TaskRecord:
    """One task's row in the manifest."""

    index: int
    kind: str
    label: str
    key: str
    cached: bool
    seconds: float
    file: Optional[str] = None


@dataclass
class RunWriter:
    """Collects task records and writes the run directory on ``finalize``."""

    root: Path
    label: str = ""
    records: List[TaskRecord] = field(default_factory=list)
    _dir: Optional[Path] = None
    _started: float = field(default_factory=time.time)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    @property
    def run_dir(self) -> Optional[Path]:
        return self._dir

    def _ensure_dir(self) -> Path:
        if self._dir is None:
            stamp = time.strftime("%Y%m%d-%H%M%S", time.localtime(self._started))
            run_key = digest_of(self.label, [r.key for r in self.records])[:12]
            path = self.root / f"{stamp}-{run_key}"
            suffix = 0
            while path.exists():
                suffix += 1
                path = self.root / f"{stamp}-{run_key}.{suffix}"
            path.mkdir(parents=True)
            (path / "tasks").mkdir()
            self._dir = path
        return self._dir

    def record(
        self,
        *,
        kind: str,
        label: str,
        key: str,
        cached: bool,
        seconds: float,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        rec = TaskRecord(
            index=len(self.records),
            kind=kind,
            label=label or f"{kind}-{len(self.records)}",
            key=key,
            cached=cached,
            seconds=seconds,
        )
        self.records.append(rec)
        if payload is not None:
            run_dir = self._ensure_dir()
            rec.file = f"tasks/{rec.index:03d}-{key[:12]}.json"
            (run_dir / rec.file).write_text(
                json.dumps({"kind": kind, "key": key, "payload": payload})
            )

    def manifest(self, extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        hits = sum(1 for r in self.records if r.cached)
        data: Dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "label": self.label,
            "created": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.localtime(self._started)
            ),
            "tasks": len(self.records),
            "cache_hits": hits,
            "cache_misses": len(self.records) - hits,
            "executed": len(self.records) - hits,
            "seconds": sum(r.seconds for r in self.records),
            "wall_seconds": time.time() - self._started,
            "task_records": [vars(r) for r in self.records],
        }
        if extra:
            data.update(extra)
        return data

    def finalize(self, extra: Optional[Dict[str, Any]] = None) -> Path:
        """Write ``manifest.json`` and ``timing.txt``; returns the run dir."""
        run_dir = self._ensure_dir()
        manifest = self.manifest(extra)
        (run_dir / "manifest.json").write_text(json.dumps(manifest, indent=2))

        width = max([len(r.label) for r in self.records], default=5)
        lines = [
            f"run {run_dir.name}  label={self.label or '-'}  "
            f"tasks={manifest['tasks']}  cache_hits={manifest['cache_hits']}  "
            f"executed={manifest['executed']}",
            f"{'task'.ljust(width)}  {'source':8s}  {'seconds':>8s}",
        ]
        for r in self.records:
            source = "cache" if r.cached else "solve"
            lines.append(f"{r.label.ljust(width)}  {source:8s}  {r.seconds:8.3f}")
        lines.append(
            f"{'total'.ljust(width)}  {'':8s}  {manifest['seconds']:8.3f}"
            f"  (wall {manifest['wall_seconds']:.3f}s)"
        )
        (run_dir / "timing.txt").write_text("\n".join(lines) + "\n")
        return run_dir
