"""Fault-tolerant task execution: timeouts, retries, degradation, failures.

A production-scale sweep is thousands of independent LP solves and trace
replays; at that scale *something* always goes wrong — a solver crashes on a
degenerate basis, a worker process dies, one pathological instance stalls for
hours.  This module gives the scheduler a policy for those events instead of
the historical behavior (first exception sinks the whole batch):

* :class:`RetryPolicy` — per-task wall-clock timeout, bounded
  retry-with-exponential-backoff, and the ``on_error`` mode (``fail`` /
  ``skip`` / ``degrade``).
* :func:`run_with_policy` — one task's attempt loop.  ``degrade`` gives bound
  tasks a final attempt on the pure-simplex LP backend before giving up; the
  result's ``backend_used`` records what actually solved it.
* :class:`TaskFailure` — the structured record a task leaves behind when it
  exhausts every recovery path.  Pipelines carry these through their result
  objects (``SweepResult.failures``, ``SelectionReport.failures``) so one
  poisoned cell never hides the healthy ones.

Timeouts are enforced with ``SIGALRM`` (``signal.setitimer``), which works
both in-process and inside ``ProcessPoolExecutor`` workers (each worker runs
tasks on its main thread).  On platforms without ``SIGALRM``, or off the main
thread, the timeout degrades to a one-time ``RuntimeWarning`` and the task
runs unbounded — better a slow answer (with a visible warning) than a crash
from installing a signal handler where that is illegal.

The ``REPRO_CHAOS`` environment variable deterministically injects
:class:`ChaosError` into execution attempts; CI's chaos smoke job uses it to
prove a sweep survives an intermittently-failing backend and that
``--resume`` converges the run afterwards.  The legacy grammar
(``fail=<probability>,seed=<int>``) and unified chaos-plan clauses
(``crash:p=…,seed=…``; see :mod:`repro.chaos`) both work — parsing routes
through :func:`repro.chaos.plan.plan_from_task_env`, is cached per raw
string (not re-parsed every attempt), and raises
:class:`~repro.errors.ValidationError` naming the offending clause.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ValidationError

#: Recognized ``on_error`` modes (see :class:`RetryPolicy`).
ON_ERROR_MODES = ("fail", "skip", "degrade")

#: Environment hook for deterministic failure injection (chaos testing).
CHAOS_ENV = "REPRO_CHAOS"


class TaskTimeoutError(RuntimeError):
    """A task attempt exceeded its wall-clock budget."""


class WorkerCrashError(RuntimeError):
    """A task repeatedly killed its worker process (poison task)."""


class ChaosError(RuntimeError):
    """Failure injected by the ``REPRO_CHAOS`` test hook."""


@dataclass(frozen=True)
class RetryPolicy:
    """How the runner treats a task that stalls, raises or crashes its worker.

    Attributes
    ----------
    task_timeout:
        Wall-clock budget per *attempt* in seconds; None (default) never
        times out.
    retries:
        Extra attempts after the first failure, each preceded by an
        exponentially growing backoff sleep (``backoff_s * 2**attempt``).
    backoff_s:
        Base backoff delay before the first retry.
    on_error:
        What to do once attempts are exhausted: ``"fail"`` re-raises (the
        historical behavior — the batch dies), ``"skip"`` yields a
        :class:`TaskFailure` record in the task's result slot, ``"degrade"``
        additionally gives bound tasks one last attempt on the pure-simplex
        LP backend before recording a failure.
    crash_retries:
        How many times a task whose worker process died is re-dispatched to
        a fresh pool before being declared a poison task.
    """

    task_timeout: Optional[float] = None
    retries: int = 0
    backoff_s: float = 0.05
    on_error: str = "fail"
    crash_retries: int = 1

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive (or None)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}, got {self.on_error!r}"
            )
        if self.crash_retries < 0:
            raise ValueError("crash_retries must be >= 0")


@dataclass
class TaskFailure:
    """Structured record of a task that exhausted every recovery path.

    Takes the task's slot in the results list (``on_error != "fail"``), so a
    sweep with one poisoned cell still returns every healthy result.
    ``feasible`` is a class-level False: defensive ``result.feasible`` checks
    in downstream code treat a failure like an infeasible bound instead of
    crashing on a missing attribute.
    """

    kind: str = ""
    label: str = ""
    key: str = ""
    error: str = ""
    error_type: str = ""
    attempts: int = 0
    backends: List[str] = field(default_factory=list)
    timed_out: bool = False
    crashed: bool = False
    diagnosis: str = ""
    seconds: float = 0.0

    feasible = False
    lp_cost = None
    feasible_cost = None

    def __str__(self) -> str:
        what = "timed out" if self.timed_out else (
            "crashed its worker" if self.crashed else f"failed ({self.error_type})"
        )
        text = f"[{self.label or self.kind}] {what} after {self.attempts} attempt(s)"
        if self.error:
            text += f": {self.error}"
        if self.diagnosis:
            text += f" — {self.diagnosis}"
        return text

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe encoding for manifests and run artifacts."""
        return {
            "kind": self.kind,
            "label": self.label,
            "key": self.key,
            "error": self.error,
            "error_type": self.error_type,
            "attempts": self.attempts,
            "backends": list(self.backends),
            "timed_out": self.timed_out,
            "crashed": self.crashed,
            "diagnosis": self.diagnosis,
            "seconds": self.seconds,
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "TaskFailure":
        """Inverse of :meth:`to_dict`."""
        return TaskFailure(
            kind=str(payload.get("kind", "")),
            label=str(payload.get("label", "")),
            key=str(payload.get("key", "")),
            error=str(payload.get("error", "")),
            error_type=str(payload.get("error_type", "")),
            attempts=int(payload.get("attempts", 0)),
            backends=[str(b) for b in payload.get("backends", [])],
            timed_out=bool(payload.get("timed_out", False)),
            crashed=bool(payload.get("crashed", False)),
            diagnosis=str(payload.get("diagnosis", "")),
            seconds=float(payload.get("seconds", 0.0)),
        )


@dataclass
class TaskOutcome:
    """What one policy-governed execution produced: a result or a failure."""

    result: Any = None
    failure: Optional[TaskFailure] = None
    seconds: float = 0.0
    attempts: int = 0
    backends: List[str] = field(default_factory=list)


# -- timeouts ----------------------------------------------------------------


#: One warning per process when a timeout cannot be enforced — a silently
#: skipped budget looks exactly like a healthy run until something hangs.
_TIMEOUT_UNENFORCEABLE_WARNED = False


def _warn_no_timeout(why: str) -> None:
    global _TIMEOUT_UNENFORCEABLE_WARNED
    if _TIMEOUT_UNENFORCEABLE_WARNED:
        return
    _TIMEOUT_UNENFORCEABLE_WARNED = True
    warnings.warn(
        f"task_timeout cannot be enforced ({why}); tasks run unbounded",
        RuntimeWarning,
        stacklevel=3,
    )


def call_with_timeout(fn, timeout: Optional[float]):
    """Run ``fn()`` under a SIGALRM wall-clock budget.

    Enforcement needs a POSIX main thread; anywhere else — a service
    executor thread, a platform without ``SIGALRM``, an embedded
    interpreter that refuses signal handlers — the budget degrades to a
    one-time :class:`RuntimeWarning` and the call runs unbounded (better a
    slow answer than a broken one).  Workers of a ``ProcessPoolExecutor``
    execute tasks on their main thread, so the budget holds there too.
    """
    if not timeout:
        return fn()
    if not hasattr(signal, "SIGALRM"):
        _warn_no_timeout("no SIGALRM on this platform")
        return fn()
    if threading.current_thread() is not threading.main_thread():
        _warn_no_timeout("running off the main thread")
        return fn()

    def _alarm(signum, frame):
        raise TaskTimeoutError(f"task exceeded its {timeout:g}s wall-clock budget")

    try:
        previous = signal.signal(signal.SIGALRM, _alarm)
    except ValueError as exc:
        # Raised where installing handlers is illegal despite the thread
        # check (e.g. a subinterpreter): degrade, don't crash the task.
        _warn_no_timeout(str(exc))
        return fn()
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# -- chaos injection ---------------------------------------------------------


#: Parse-once cache: (raw env string, parsed injector).  A sweep checks the
#: spec on every task attempt; re-parsing the same string thousands of
#: times was pure waste, and the cache also de-duplicates the validation
#: error a bad spec raises.
_CHAOS_CACHE: Tuple[str, Optional[object]] = ("", None)


def _chaos_spec():
    """The active :class:`~repro.chaos.plan.TaskChaos`, or None when unset.

    Parsed once per distinct ``REPRO_CHAOS`` value (workers inherit the
    env, so each process pays a single parse).  Both the legacy
    ``fail=<p>,seed=<n>`` grammar and unified plan clauses
    (``crash:p=…``) are accepted; errors raise
    :class:`~repro.errors.ValidationError` naming the offending clause.
    """
    global _CHAOS_CACHE
    raw = os.environ.get(CHAOS_ENV, "").strip()
    if not raw:
        return None
    cached_raw, cached = _CHAOS_CACHE
    if raw == cached_raw:
        return cached
    from repro.chaos.plan import plan_from_task_env

    try:
        chaos = plan_from_task_env(raw).task_chaos()
    except ValidationError as exc:
        raise ValidationError(f"{CHAOS_ENV}: {exc}") from None
    _CHAOS_CACHE = (raw, chaos)
    return chaos


def chaos_should_fail(identity: str, attempt: int) -> bool:
    """Deterministic injected-failure draw for (task identity, attempt)."""
    chaos = _chaos_spec()
    if chaos is None:
        return False
    return chaos.should_fail(identity, attempt)


# -- the attempt loop --------------------------------------------------------


def _degraded_task(task):
    """A degrade-target copy of a bound task, or None when not applicable.

    The target backend comes from the solver registry
    (:data:`~repro.solvers.registry.DEGRADE_TARGET`, the pure-Python
    simplex) — the one backend with no native dependencies to fail.
    """
    if getattr(task, "kind", "") != "bound":
        return None
    from repro.solvers.registry import degrade_backend

    target = degrade_backend(getattr(task, "backend", None))
    if target is None:
        return None
    return dataclasses.replace(task, backend=target)


def _diagnose_failure(task, exc: BaseException) -> str:
    """Best-effort infeasibility diagnosis for a failed bound task.

    Only the structural check runs here: an LP-level infeasibility comes
    back as a ``feasible=False`` *result* (with the deletion-filter
    diagnosis when the task asked for it), never as an exception, so a
    raising solve is environmental and a full diagnose pass would just
    fail the same way.
    """
    if getattr(task, "kind", "") != "bound" or not getattr(task, "diagnose", False):
        return ""
    if isinstance(exc, (TaskTimeoutError, ChaosError)):
        return ""
    try:
        from repro.core.formulation import build_formulation

        form = build_formulation(task.problem, task.properties)
        if form.structurally_infeasible:
            return form.infeasible_reason
    except Exception:
        pass
    return ""


def run_with_policy(task, policy: RetryPolicy) -> TaskOutcome:
    """Execute one task under ``policy``.

    Returns a :class:`TaskOutcome` carrying either the result or a
    :class:`TaskFailure`; re-raises the last exception only when
    ``policy.on_error == "fail"`` (the historical fail-fast contract).
    """
    start = time.perf_counter()
    attempts = 0
    backends: List[str] = []
    last_exc: Optional[BaseException] = None
    chaos = _chaos_spec() is not None
    identity = ""
    if chaos:
        identity = getattr(task, "label", "") or task.cache_key()

    for attempt in range(policy.retries + 1):
        attempts += 1
        backend = getattr(task, "backend", None)
        if backend is not None:
            backends.append(backend)
        try:
            if chaos and chaos_should_fail(identity, attempt):
                raise ChaosError(f"injected failure (attempt {attempt + 1})")
            result = call_with_timeout(task.run, policy.task_timeout)
            return TaskOutcome(
                result=result,
                seconds=time.perf_counter() - start,
                attempts=attempts,
                backends=backends,
            )
        except Exception as exc:
            last_exc = exc
            if attempt < policy.retries and policy.backoff_s > 0:
                time.sleep(policy.backoff_s * (2**attempt))

    if policy.on_error == "degrade":
        degraded = _degraded_task(task)
        if degraded is not None:
            attempts += 1
            backends.append(degraded.backend)
            try:
                result = call_with_timeout(degraded.run, policy.task_timeout)
                return TaskOutcome(
                    result=result,
                    seconds=time.perf_counter() - start,
                    attempts=attempts,
                    backends=backends,
                )
            except Exception as exc:
                last_exc = exc

    if policy.on_error == "fail":
        raise last_exc

    failure = TaskFailure(
        kind=getattr(task, "kind", ""),
        label=getattr(task, "label", ""),
        error=str(last_exc),
        error_type=type(last_exc).__name__,
        attempts=attempts,
        backends=backends,
        timed_out=isinstance(last_exc, TaskTimeoutError),
        diagnosis=_diagnose_failure(task, last_exc),
        seconds=time.perf_counter() - start,
    )
    return TaskOutcome(
        failure=failure,
        seconds=failure.seconds,
        attempts=attempts,
        backends=backends,
    )
