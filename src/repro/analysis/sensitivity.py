"""Sensitivity analysis: how robust is the recommendation?

The paper's method is off-line — "it has to be run explicitly by the
designer as changes in the system occur".  This module quantifies how far
the inputs can move before the recommendation changes, the questions a
designer asks before trusting a choice:

* :func:`threshold_sensitivity` — sweep the latency threshold Tlat.
* :func:`qos_sensitivity` — sweep the QoS fraction.
* :func:`cost_ratio_sensitivity` — sweep the storage/creation price ratio
  (alpha vs beta), which the paper notes "provide a way to change the
  weight" of the two cost terms.
* :func:`recommendation_stability` — the fraction of perturbed scenarios in
  which the baseline recommendation survives.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.costs import CostModel
from repro.core.goals import QoSGoal
from repro.core.problem import MCPerfProblem
from repro.core.selection import (
    assemble_report,
    resolve_candidates,
    selection_tasks,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.runner.execute import ExperimentRunner


@dataclass
class SensitivityPoint:
    """Selection outcome at one perturbed input.

    ``failed`` lists classes whose bound task failed at this point (resilient
    runner, ``on_error`` ``skip``/``degrade``); their bounds are absent from
    ``bounds`` rather than silently conflated with infeasibility.
    """

    parameter: str
    value: float
    recommended: Optional[str]
    bounds: Dict[str, Optional[float]] = field(default_factory=dict)
    failed: List[str] = field(default_factory=list)


@dataclass
class SensitivityReport:
    """A parameter sweep's selection outcomes."""

    parameter: str
    baseline_value: float
    baseline_recommendation: Optional[str]
    points: List[SensitivityPoint] = field(default_factory=list)

    def stable_range(self) -> tuple:
        """The (min, max) parameter values keeping the baseline choice."""
        keeping = [
            p.value
            for p in self.points
            if p.recommended == self.baseline_recommendation
        ]
        if not keeping:
            return (float("nan"), float("nan"))
        return (min(keeping), max(keeping))

    def flips(self) -> List[SensitivityPoint]:
        """Points where the recommendation differs from the baseline."""
        return [
            p for p in self.points if p.recommended != self.baseline_recommendation
        ]

    def render(self) -> str:
        lines = [
            f"Sensitivity to {self.parameter} "
            f"(baseline {self.baseline_value:g} -> {self.baseline_recommendation})",
            f"{'value':>10s}  {'recommendation':24s}",
        ]
        for p in self.points:
            marker = "" if p.recommended == self.baseline_recommendation else "  <- flips"
            if p.failed:
                marker += f"  [{len(p.failed)} class(es) failed]"
            lines.append(f"{p.value:10g}  {str(p.recommended):24s}{marker}")
        return "\n".join(lines)

    def failed_points(self) -> List[SensitivityPoint]:
        """Points where at least one class's bound task failed."""
        return [p for p in self.points if p.failed]


def _sweep(problem: MCPerfProblem, parameter: str, values, rebuild, classes, backend, runner=None):
    """Run baseline + perturbed selections as one flattened task batch.

    Every scenario (baseline and each perturbed value) contributes the same
    per-class bound tasks, so the whole sensitivity sweep is a single
    ``len(scenarios) * (1 + len(candidates))`` batch — one scheduler pass
    that a parallel runner fans out across all scenarios at once.
    """
    from repro.runner.execute import run_tasks

    candidates = resolve_candidates(classes)
    scenarios = [problem] + [rebuild(problem, value) for value in values]
    tasks = []
    for scenario in scenarios:
        tasks.extend(
            selection_tasks(scenario, candidates, do_rounding=False, backend=backend)
        )
    results = run_tasks(tasks, runner)

    stride = 1 + len(candidates)
    reports = [
        assemble_report(
            scenario,
            candidates,
            results[k * stride],
            results[k * stride + 1 : (k + 1) * stride],
        )
        for k, scenario in enumerate(scenarios)
    ]

    baseline, outcomes = reports[0], reports[1:]
    report = SensitivityReport(
        parameter=parameter,
        baseline_value=_baseline_value(problem, parameter),
        baseline_recommendation=baseline.recommended,
    )
    for value, outcome in zip(values, outcomes):
        report.points.append(
            SensitivityPoint(
                parameter=parameter,
                value=float(value),
                recommended=outcome.recommended,
                bounds={name: outcome.bound(name) for name in outcome.results},
                failed=sorted(outcome.failures),
            )
        )
    return report


def _baseline_value(problem: MCPerfProblem, parameter: str) -> float:
    if parameter == "tlat_ms":
        return problem.goal.tlat_ms
    if parameter == "qos_fraction":
        return problem.goal.fraction
    if parameter == "alpha_over_beta":
        return problem.costs.alpha / problem.costs.beta if problem.costs.beta else float("inf")
    raise ValueError(f"unknown parameter {parameter!r}")


def threshold_sensitivity(
    problem: MCPerfProblem,
    thresholds_ms: Sequence[float],
    classes: Optional[Sequence[object]] = None,
    backend: str = "scipy",
    runner: Optional["ExperimentRunner"] = None,
) -> SensitivityReport:
    """Re-run selection across latency thresholds."""
    if not isinstance(problem.goal, QoSGoal):
        raise TypeError("threshold_sensitivity needs a QoSGoal problem")

    def rebuild(p, tlat):
        return dataclasses.replace(
            p, goal=dataclasses.replace(p.goal, tlat_ms=float(tlat))
        )

    return _sweep(problem, "tlat_ms", thresholds_ms, rebuild, classes, backend, runner)


def qos_sensitivity(
    problem: MCPerfProblem,
    fractions: Sequence[float],
    classes: Optional[Sequence[object]] = None,
    backend: str = "scipy",
    runner: Optional["ExperimentRunner"] = None,
) -> SensitivityReport:
    """Re-run selection across QoS fractions."""
    if not isinstance(problem.goal, QoSGoal):
        raise TypeError("qos_sensitivity needs a QoSGoal problem")

    def rebuild(p, fraction):
        return dataclasses.replace(
            p, goal=dataclasses.replace(p.goal, fraction=float(fraction))
        )

    return _sweep(problem, "qos_fraction", fractions, rebuild, classes, backend, runner)


def cost_ratio_sensitivity(
    problem: MCPerfProblem,
    ratios: Sequence[float],
    classes: Optional[Sequence[object]] = None,
    backend: str = "scipy",
    runner: Optional["ExperimentRunner"] = None,
) -> SensitivityReport:
    """Re-run selection across storage/creation price ratios (alpha/beta).

    Beta is held at the baseline; alpha is scaled to hit each ratio.
    """
    beta = problem.costs.beta
    if beta <= 0:
        raise ValueError("cost-ratio sweep needs a positive beta")

    def rebuild(p, ratio):
        costs = CostModel(
            alpha=float(ratio) * beta,
            beta=beta,
            gamma=p.costs.gamma,
            delta=p.costs.delta,
            zeta=p.costs.zeta,
        )
        return dataclasses.replace(p, costs=costs)

    return _sweep(problem, "alpha_over_beta", ratios, rebuild, classes, backend, runner)


def recommendation_stability(reports: Sequence[SensitivityReport]) -> float:
    """Fraction of all perturbed points keeping their baseline choice."""
    total = sum(len(r.points) for r in reports)
    if total == 0:
        return 1.0
    kept = sum(
        1
        for r in reports
        for p in r.points
        if p.recommended == r.baseline_recommendation
    )
    return kept / total
