"""Analysis helpers: QoS sweeps, tables and ASCII plots for the figures."""

from repro.analysis.sweep import SweepResult, qos_sweep
from repro.analysis.report import render_csv, render_series_table, render_sweep_table
from repro.analysis.plot import ascii_chart
from repro.analysis.sensitivity import (
    SensitivityPoint,
    SensitivityReport,
    cost_ratio_sensitivity,
    qos_sensitivity,
    recommendation_stability,
    threshold_sensitivity,
)

__all__ = [
    "SweepResult",
    "qos_sweep",
    "render_sweep_table",
    "render_series_table",
    "render_csv",
    "ascii_chart",
    "SensitivityPoint",
    "SensitivityReport",
    "threshold_sensitivity",
    "qos_sensitivity",
    "cost_ratio_sensitivity",
    "recommendation_stability",
]
