"""Minimal ASCII line charts for terminal-rendered figures.

The benchmark harness prints each figure's series both as a table and as a
small ASCII chart, so the reproduced shape (who wins, where curves end) is
visible directly in the bench output without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: Dict[str, Sequence[Optional[float]]],
    x_labels: Sequence[str],
    height: int = 12,
    width: int = 60,
    title: str = "",
) -> str:
    """Plot several named series (None = missing point) on one char canvas."""
    if height < 3 or width < 10:
        raise ValueError("chart too small")
    values = [v for pts in series.values() for v in pts if v is not None]
    if not values:
        return f"{title}\n(no feasible points)"
    lo, hi = min(values), max(values)
    if hi <= lo:
        hi = lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    num_x = max(len(pts) for pts in series.values())
    if num_x < 1:
        return f"{title}\n(empty series)"

    def col(i: int) -> int:
        return int(i * (width - 1) / max(num_x - 1, 1))

    def row(v: float) -> int:
        frac = (v - lo) / (hi - lo)
        return (height - 1) - int(round(frac * (height - 1)))

    legend = []
    for s_idx, (name, pts) in enumerate(series.items()):
        mark = _MARKERS[s_idx % len(_MARKERS)]
        legend.append(f"{mark}={name}")
        for i, v in enumerate(pts):
            if v is None:
                continue
            canvas[row(v)][col(i)] = mark

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:12.0f} ┤" + "".join(canvas[0]))
    for r in range(1, height - 1):
        lines.append(" " * 12 + " │" + "".join(canvas[r]))
    lines.append(f"{lo:12.0f} ┤" + "".join(canvas[height - 1]))
    labels = " " * 14
    for i, lab in enumerate(x_labels[:num_x]):
        pos = 14 + col(i)
        if pos >= len(labels):
            labels = labels.ljust(pos) + str(lab)
    lines.append(labels)
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)
