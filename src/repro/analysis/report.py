"""Rendering sweep results as tables (the figures' data, in text form)."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.sweep import SweepResult


def _fmt_level(level: float) -> str:
    pct = level * 100.0
    text = f"{pct:.3f}".rstrip("0").rstrip(".")
    return f"{text}%"


def _fmt_cost(value: Optional[float]) -> str:
    if value is None:
        return "—"
    if value >= 10_000:
        return f"{value / 1000:.1f}k"
    return f"{value:.0f}"


def render_sweep_table(
    sweep: SweepResult,
    title: str = "",
    feasible_costs: bool = False,
) -> str:
    """An ASCII table: rows = classes, columns = QoS levels.

    With ``feasible_costs`` the rounded feasible cost is shown next to each
    bound as ``bound/feasible``.
    """
    headers = ["class"] + [_fmt_level(level) for level in sweep.levels]
    rows: List[List[str]] = []
    for cls in sweep.classes:
        row = [cls]
        for level in sweep.levels:
            cell = _fmt_cost(sweep.bound(cls, level))
            if feasible_costs:
                cell += "/" + _fmt_cost(sweep.feasible_cost(cls, level))
            row.append(cell)
        rows.append(row)
    widths = [
        max(len(headers[col]), max(len(r[col]) for r in rows)) for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_csv(sweep: SweepResult) -> str:
    """CSV rows ``class,level,bound,feasible_cost`` (empty = infeasible)."""
    lines = ["class,qos_level,lower_bound,feasible_cost"]
    for cls in sweep.classes:
        for level in sweep.levels:
            bound = sweep.bound(cls, level)
            feas = sweep.feasible_cost(cls, level)
            lines.append(
                f"{cls},{level},"
                f"{'' if bound is None else f'{bound:.3f}'},"
                f"{'' if feas is None else f'{feas:.3f}'}"
            )
    return "\n".join(lines)


def render_series_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Generic ASCII table used by the Figure-2/3 benches."""
    text_rows = [[("—" if v is None else (f"{v:.0f}" if isinstance(v, float) else str(v))) for v in row] for row in rows]
    widths = [
        max(len(str(columns[c])), max((len(r[c]) for r in text_rows), default=0))
        for c in range(len(columns))
    ]
    lines = [title] if title else []
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
