"""QoS-goal sweeps: the x-axis of Figures 1–3.

A sweep fixes the system and workload, varies the QoS fraction (the paper
plots 95 % … 99.999 %), and computes each class's lower bound at every
level.  Infeasible points (class cannot meet the goal) are recorded as such
— those are the early curve endpoints in the paper's figures.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.bounds import LowerBoundResult
from repro.core.classes import FIGURE1_CLASSES, HeuristicClass, get_class
from repro.core.goals import QoSGoal
from repro.core.problem import MCPerfProblem
from repro.runner.resilience import TaskFailure

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.runner.execute import ExperimentRunner
    from repro.runner.tasks import BoundTask

#: The QoS levels the paper sweeps in Figures 1-3.
PAPER_QOS_LEVELS: List[float] = [0.95, 0.99, 0.999, 0.9999, 0.99999]


@dataclass
class SweepResult:
    """Per-(class, QoS level) bounds for one system + workload.

    ``failures`` carries cells whose task exhausted the runner's recovery
    paths (``on_error`` ``skip``/``degrade``) — distinct from infeasible
    cells, which are real answers ("the class cannot meet the goal") and
    live in ``results``.
    """

    levels: List[float]
    classes: List[str]
    results: Dict[str, Dict[float, LowerBoundResult]] = field(default_factory=dict)
    failures: Dict[str, Dict[float, TaskFailure]] = field(default_factory=dict)

    def bound(self, cls: str, level: float) -> Optional[float]:
        result = self.results.get(cls, {}).get(level)
        return result.lp_cost if result is not None and result.feasible else None

    def failure(self, cls: str, level: float) -> Optional[TaskFailure]:
        """The failure record for a cell, or None if it produced a result."""
        return self.failures.get(cls, {}).get(level)

    def failed_cells(self) -> List[tuple]:
        """Every (class, level) whose task failed, in sweep order."""
        return [
            (cls, level)
            for cls in self.classes
            for level in self.levels
            if self.failure(cls, level) is not None
        ]

    def feasible_cost(self, cls: str, level: float) -> Optional[float]:
        result = self.results.get(cls, {}).get(level)
        return result.feasible_cost if result is not None and result.feasible else None

    def series(self, cls: str) -> List[Optional[float]]:
        """Bound per level (None where the class cannot meet the goal)."""
        return [self.bound(cls, level) for level in self.levels]

    def max_feasible_level(self, cls: str) -> Optional[float]:
        feasible = [lvl for lvl in self.levels if self.bound(cls, lvl) is not None]
        return max(feasible) if feasible else None

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe encoding for the runner's cache/artifact layer.

        Levels are stored as ``[level, result]`` pairs (not object keys)
        because JSON object keys are strings; floats round-trip exactly
        through JSON's shortest-repr encoding.
        """
        return {
            "levels": list(self.levels),
            "classes": list(self.classes),
            "results": {
                cls: [[level, result.to_dict()] for level, result in per_level.items()]
                for cls, per_level in self.results.items()
            },
            "failures": {
                cls: [[level, failure.to_dict()] for level, failure in per_level.items()]
                for cls, per_level in self.failures.items()
            },
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "SweepResult":
        """Inverse of :meth:`to_dict`."""
        sweep = SweepResult(
            levels=[float(lvl) for lvl in payload["levels"]],
            classes=[str(c) for c in payload["classes"]],
        )
        for cls, pairs in payload.get("results", {}).items():
            sweep.results[str(cls)] = {
                float(level): LowerBoundResult.from_dict(result)
                for level, result in pairs
            }
        for cls, pairs in payload.get("failures", {}).items():
            sweep.failures[str(cls)] = {
                float(level): TaskFailure.from_dict(failure)
                for level, failure in pairs
            }
        return sweep

    def crossover(self, cls_a: str, cls_b: str) -> Optional[float]:
        """The first sweep level where the cheaper of two classes flips.

        Returns the level at which the ordering of ``cls_a`` vs ``cls_b``
        differs from the ordering at the first level where both are
        feasible; None if they never flip (or never coexist).  A class
        becoming infeasible while the other stays feasible also counts as a
        flip — that's the "curve ends" crossover the paper's figures show.
        """
        baseline: Optional[int] = None
        for level in self.levels:
            a = self.bound(cls_a, level)
            b = self.bound(cls_b, level)
            if a is None and b is None:
                continue
            if a is None or b is None:
                order = 1 if a is None else -1  # infeasible side "costs more"
            else:
                order = 0 if abs(a - b) <= 1e-9 else (-1 if a < b else 1)
            if baseline is None:
                if order != 0:
                    baseline = order
                continue
            if order != 0 and order != baseline:
                return level
        return None


def sweep_tasks(
    problem: MCPerfProblem,
    levels: Sequence[float],
    classes: Sequence["HeuristicClass"],
    do_rounding: bool = False,
    run_length: bool = False,
    backend: str = "scipy",
    reuse_formulation: bool = True,
    rounding_mode: str = "greedy",
    audit: Optional[str] = None,
) -> List["BoundTask"]:
    """The sweep's task graph: one bound task per (class, level).

    Tasks are emitted class-outer/level-inner — the historical serial order —
    and share a formulation-reuse group per class, so the scheduler keeps
    :meth:`~repro.core.formulation.Formulation.set_qos_fraction`'s RHS-only
    re-targeting whether the tasks run in-process or on a worker.
    """
    from repro.runner.tasks import BoundTask

    tasks: List[BoundTask] = []
    for cls in classes:
        for level in levels:
            goal = dataclasses.replace(problem.goal, fraction=level)
            leveled = dataclasses.replace(problem, goal=goal)
            tasks.append(
                BoundTask(
                    problem=leveled,
                    properties=cls.properties,
                    do_rounding=do_rounding,
                    run_length=run_length,
                    backend=backend,
                    reuse_formulation=reuse_formulation,
                    rounding_mode=rounding_mode,
                    label=f"bound[{cls.name}@{level:g}]",
                    audit=audit,
                )
            )
    return tasks


def qos_sweep(
    problem: MCPerfProblem,
    levels: Optional[Sequence[float]] = None,
    classes: Optional[Sequence[object]] = None,
    do_rounding: bool = False,
    run_length: bool = False,
    backend: str = "scipy",
    reuse_formulation: bool = True,
    runner: Optional["ExperimentRunner"] = None,
    rounding_mode: str = "greedy",
    audit: Optional[str] = None,
) -> SweepResult:
    """Compute class bounds across QoS levels (the Figure-1 computation).

    ``problem.goal`` supplies the latency threshold and scope; its fraction
    is replaced by each sweep level in turn.  By default each class's
    formulation is built once and re-targeted per level via
    :meth:`~repro.core.formulation.Formulation.set_qos_fraction`, which
    skips the model-assembly cost at every level after the first.

    The per-(class, level) solves run through the experiment-runner layer:
    ``runner=None`` executes them serially in-process (the historical
    behavior); an :class:`~repro.runner.execute.ExperimentRunner` adds
    worker-pool parallelism, content-addressed result caching and run
    artifacts.
    """
    if not isinstance(problem.goal, QoSGoal):
        raise TypeError("qos_sweep needs a QoSGoal problem")
    levels = list(levels) if levels is not None else list(PAPER_QOS_LEVELS)
    if classes is None:
        chosen = [get_class(n) for n in FIGURE1_CLASSES]
    else:
        chosen = [c if isinstance(c, HeuristicClass) else get_class(str(c)) for c in classes]

    from repro.runner.execute import run_tasks

    tasks = sweep_tasks(
        problem,
        levels,
        chosen,
        do_rounding=do_rounding,
        run_length=run_length,
        backend=backend,
        reuse_formulation=reuse_formulation,
        rounding_mode=rounding_mode,
        audit=audit,
    )
    results = run_tasks(tasks, runner)

    sweep = SweepResult(levels=levels, classes=[c.name for c in chosen])
    cursor = iter(results)
    for cls in chosen:
        per_level: Dict[float, LowerBoundResult] = {}
        for level in levels:
            outcome = next(cursor)
            if isinstance(outcome, TaskFailure):
                sweep.failures.setdefault(cls.name, {})[level] = outcome
            else:
                per_level[level] = outcome
        sweep.results[cls.name] = per_level
    return sweep
