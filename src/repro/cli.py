"""Command-line interface for the replica-placement analysis toolkit.

Gives system designers the paper's workflow without writing Python::

    repro topology --nodes 20 --seed 2 -o topo.json
    repro workload web --nodes 20 --objects 80 --scale 0.1 -o trace.json
    repro bounds    -t topo.json -w trace.json --qos 0.95 --class caching
    repro select    -t topo.json -w trace.json --qos 0.95
    repro deploy    -t topo.json -w trace.json --qos 0.95 --zeta 3000
    repro simulate  -t topo.json -w trace.json --heuristic lru --capacity 20
    repro continuous -t topo.json --heuristic qiu --epochs 4 --drift 0.25 \
                     --zones 3 --faults 'zoneout:mtbf=21600,mttr=1800' --slo 0.99
    repro chaos 'flashcrowd:epochs=2-3,object=0,mult=8;zonepart:zone=1,at=900,down=900;crash:epoch=3;corrupt_checkpoint:at=1' \
                --workdir out/campaign

Every subcommand prints a human-readable report; ``--json`` switches to a
machine-readable dump.  Entry point: ``python -m repro.cli`` (also installed
as ``repro`` via the console-script hook).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import List, Optional

from repro.core.classes import STANDARD_CLASSES, get_class, render_table3
from repro.errors import ValidationError
from repro.core.costs import CostModel
from repro.core.deployment import plan_deployment
from repro.core.goals import GoalScope, QoSGoal
from repro.core.problem import MCPerfProblem
from repro.core.selection import select_heuristic
from repro.runner import (
    BoundTask,
    HeuristicSpec,
    ResultCache,
    SimulateTask,
    TaskFailure,
    make_runner,
)
from repro.solvers.registry import BACKEND_AUTO, BOUND_BACKENDS
from repro.topology.generators import as_level_topology
from repro.topology.io import load_topology, save_topology
from repro.workload.demand import DemandMatrix
from repro.workload.generators import group_workload, web_workload
from repro.workload.io import load_trace, save_trace
from repro.workload.stats import characterize


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Replica-placement heuristic selection (Karlsson & Karamanolis, ICDCS 2004)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more logging (-v info, -vv debug)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="errors only"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    topo = sub.add_parser("topology", help="generate an AS-level topology")
    topo.add_argument("--nodes", type=int, default=20)
    topo.add_argument("--seed", type=int, default=0)
    topo.add_argument("--skew", type=float, default=0.8, help="population skew")
    topo.add_argument(
        "--zones",
        default=None,
        metavar="SPEC",
        help=(
            "attach a zone map: an integer K (round-robin into K zones) or "
            "explicit groups like '0+1+2;3+4;5' covering every node"
        ),
    )
    topo.add_argument("-o", "--output", required=True)

    wl = sub.add_parser("workload", help="generate a WEB or GROUP trace")
    wl.add_argument("kind", choices=["web", "group"])
    wl.add_argument(
        "--nodes", type=int, default=None,
        help="number of sites (default: the --topology's size, else 20)",
    )
    wl.add_argument("--objects", type=int, default=80)
    wl.add_argument("--scale", type=float, default=0.1)
    wl.add_argument("--seed", type=int, default=0)
    wl.add_argument("--topology", help="take site populations from this topology")
    wl.add_argument("-o", "--output", required=True)

    def runner_args(p):
        """Execution-infrastructure flags shared by every solver command."""
        p.add_argument("--json", action="store_true", help="machine-readable output")
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="worker processes for independent solves (1 = serial, exact historical path)",
        )
        p.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="content-addressed result cache; reruns skip already-solved tasks",
        )
        p.add_argument(
            "--run-dir",
            default=None,
            metavar="DIR",
            help="write runs/<timestamp>-<digest>/ artifacts (manifest, per-task JSON, timings)",
        )
        p.add_argument(
            "--task-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="wall-clock limit per task attempt (default: none)",
        )
        p.add_argument(
            "--retries",
            type=int,
            default=0,
            metavar="N",
            help="re-attempts per task after a failure/timeout (exponential backoff)",
        )
        p.add_argument(
            "--on-error",
            choices=["fail", "skip", "degrade"],
            default="fail",
            help=(
                "after retries are exhausted: fail the whole run, skip (record a "
                "structured TaskFailure and keep going), or degrade (one final "
                "pure-simplex attempt for LP bound tasks, then skip)"
            ),
        )
        p.add_argument(
            "--resume",
            default=None,
            metavar="RUN_DIR",
            help="serve ok results from a previous run directory; only its failed/pending tasks re-execute",
        )
        p.add_argument(
            "--profile",
            action="store_true",
            help=(
                "emit per-stage timing/counter JSON (profile.json in the "
                "--run-dir, stderr otherwise); counters cover this process "
                "only, so pair with --jobs 1 for full coverage"
            ),
        )
        p.add_argument(
            "--audit",
            choices=["off", "fast", "full"],
            default=None,
            help=(
                "re-certify results (default: the REPRO_AUDIT env var, else "
                "off): fast = recomputed objective + sampled constraint "
                "spot-checks + from-scratch placement certificates; full = "
                "exact Fraction arithmetic on every row/bound + cross-"
                "backend differential re-solve.  Cache hits are re-audited "
                "and quarantined on failure.  Violations exit nonzero."
            ),
        )

    def problem_args(p):
        p.add_argument("-t", "--topology", required=True)
        p.add_argument("-w", "--workload", required=True)
        p.add_argument("--qos", type=float, default=0.95, help="QoS fraction")
        p.add_argument("--tlat", type=float, default=150.0, help="latency threshold (ms)")
        p.add_argument("--intervals", type=int, default=8)
        p.add_argument("--warmup", type=int, default=1)
        p.add_argument(
            "--scope",
            choices=[s.value for s in GoalScope],
            default=GoalScope.PER_USER.value,
        )
        p.add_argument("--alpha", type=float, default=1.0)
        p.add_argument("--beta", type=float, default=1.0)
        runner_args(p)

    bounds = sub.add_parser("bounds", help="compute a class's lower bound")
    problem_args(bounds)
    bounds.add_argument(
        "--class",
        dest="cls",
        default="general",
        choices=sorted(STANDARD_CLASSES),
    )
    bounds.add_argument("--no-rounding", action="store_true")
    bounds.add_argument(
        "--backend",
        choices=list(BOUND_BACKENDS),
        default=BACKEND_AUTO,
        help=(
            "solver backend: auto/scipy/simplex solve the monolithic LP; "
            "tree-dp and decomposed use the structural backends in "
            "repro.solvers; structure introspects the problem and picks"
        ),
    )
    bounds.add_argument(
        "--rounding-mode",
        choices=["greedy", "iterative"],
        default="greedy",
        help=(
            "greedy = the paper's Appendix-C rounder; iterative = LP-guided "
            "rounding whose re-solves patch the cached assembly in place"
        ),
    )

    select = sub.add_parser("select", help="run the §6.1 selection methodology")
    problem_args(select)
    select.add_argument("--classes", nargs="*", default=None)
    select.add_argument("--no-rounding", action="store_true")

    deploy = sub.add_parser("deploy", help="run the §6.2 deployment methodology")
    problem_args(deploy)
    deploy.add_argument("--zeta", type=float, default=3000.0, help="node-opening cost")
    deploy.add_argument("--max-nodes", type=int, default=None)

    sim = sub.add_parser("simulate", help="replay the trace against a heuristic")
    problem_args(sim)
    sim.add_argument(
        "--heuristic",
        required=True,
        choices=["lru", "lfu", "coop-lru", "greedy-global", "qiu", "random"],
    )
    sim.add_argument("--capacity", type=int, default=10, help="cache capacity (objects)")
    sim.add_argument("--replicas", type=int, default=2, help="replicas per object")
    sim.add_argument("--period", type=float, default=None, help="placement period (s)")
    sim.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "inject failures, e.g. 'poisson:mtbf=21600,mttr=1800' or "
            "'crash:node=3,at=600,down=1200;flaky:a=1,b=2,up=900,down=60'"
        ),
    )
    sim.add_argument(
        "--fault-seed", type=int, default=0, help="seed for generated fault schedules"
    )
    sim.add_argument(
        "--heal",
        action="store_true",
        help="wrap the heuristic in a re-replicating HealingPolicy",
    )
    sim.add_argument(
        "--heal-copies", type=int, default=2, help="live replicas HealingPolicy restores"
    )
    sim.add_argument(
        "--heal-zones",
        type=int,
        default=1,
        help="minimum distinct zones replicas must span (needs a zoned topology)",
    )
    sim.add_argument(
        "--heal-budget",
        type=int,
        default=None,
        metavar="N",
        help="max healing creations per budget window (default: unlimited)",
    )

    cont = sub.add_parser(
        "continuous",
        help="epoch-driven continuous placement under faults with SLO enforcement",
    )
    cont.add_argument("-t", "--topology", required=True)
    cont.add_argument(
        "--heuristic",
        required=True,
        choices=["lru", "lfu", "coop-lru", "greedy-global", "qiu", "random"],
    )
    cont.add_argument("--epochs", type=int, default=4, help="number of epochs")
    cont.add_argument(
        "--epoch-length", type=float, default=3600.0, metavar="S",
        help="seconds per epoch",
    )
    cont.add_argument(
        "--drift", type=float, default=0.25,
        help="per-epoch workload drift in [0,1]: popularity-rank rotation "
             "plus node-weight blending",
    )
    cont.add_argument(
        "--slo", type=float, default=None, metavar="FRACTION",
        help="per-epoch availability SLO target (e.g. 0.99); violations exit nonzero",
    )
    cont.add_argument(
        "--zones",
        default=None,
        metavar="SPEC",
        help="zone map overriding the topology's own: an integer K or "
             "explicit groups like '0+1;2+3'",
    )
    cont.add_argument("--requests", type=int, default=2000, help="requests per epoch")
    cont.add_argument("--objects", type=int, default=64, help="objects in the universe")
    cont.add_argument("--seed", type=int, default=0, help="workload seed")
    cont.add_argument("--tlat", type=float, default=150.0, help="latency threshold (ms)")
    cont.add_argument("--alpha", type=float, default=1.0)
    cont.add_argument("--beta", type=float, default=1.0)
    cont.add_argument("--capacity", type=int, default=10, help="cache capacity (objects)")
    cont.add_argument("--replicas", type=int, default=2, help="replicas per object")
    cont.add_argument("--period", type=float, default=None, help="placement period (s)")
    cont.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="fault spec over the whole horizon; zone clauses "
             "('zoneout:...', 'zonepart:...') need a zone map",
    )
    cont.add_argument(
        "--fault-seed", type=int, default=0, help="seed for generated fault schedules"
    )
    cont.add_argument(
        "--workload",
        default=None,
        metavar="SPEC",
        help="workload-emulation spec layered on the drift stream "
             "(diurnal/flashcrowd/burst/writes/clock_skew clauses; see docs/CHAOS.md)",
    )
    cont.add_argument(
        "--heal", action="store_true",
        help="wrap the heuristic in a re-replicating HealingPolicy",
    )
    cont.add_argument(
        "--heal-copies", type=int, default=2, help="live replicas HealingPolicy restores"
    )
    cont.add_argument(
        "--heal-zones",
        type=int,
        default=1,
        help="minimum distinct zones replicas must span (needs a zone map)",
    )
    cont.add_argument(
        "--heal-budget",
        type=int,
        default=None,
        metavar="N",
        help="max healing creations per budget window (default: unlimited)",
    )
    cont.add_argument(
        "--shed-capacity",
        type=int,
        default=None,
        metavar="N",
        help="carried-replica cap between epochs; lowest-value replicas shed first",
    )
    cont.add_argument(
        "--object-size", type=float, default=1.0, metavar="BYTES",
        help="bytes per object for migration accounting",
    )
    runner_args(cont)

    serve = sub.add_parser(
        "serve",
        help="run the continuous loop as a supervised, checkpointed query service",
    )
    serve.add_argument("-t", "--topology", required=True)
    serve.add_argument(
        "--heuristic",
        required=True,
        choices=["lru", "lfu", "coop-lru", "greedy-global", "qiu", "random"],
    )
    serve.add_argument(
        "--state-dir", required=True, metavar="DIR",
        help="journal + snapshots + endpoint.json; restarting with the same "
             "dir resumes from the last durable epoch",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="listen port (0 = ephemeral; the bound port lands in endpoint.json)",
    )
    serve.add_argument("--epochs", type=int, default=4, help="number of epochs")
    serve.add_argument(
        "--epoch-length", type=float, default=3600.0, metavar="S",
        help="simulated seconds per epoch",
    )
    serve.add_argument(
        "--epoch-interval", type=float, default=0.0, metavar="S",
        help="wall-clock pacing between epochs (0 = step as fast as possible)",
    )
    serve.add_argument("--drift", type=float, default=0.25)
    serve.add_argument("--slo", type=float, default=None, metavar="FRACTION")
    serve.add_argument("--zones", default=None, metavar="SPEC")
    serve.add_argument("--requests", type=int, default=2000)
    serve.add_argument("--objects", type=int, default=64)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--tlat", type=float, default=150.0)
    serve.add_argument("--alpha", type=float, default=1.0)
    serve.add_argument("--beta", type=float, default=1.0)
    serve.add_argument("--capacity", type=int, default=10)
    serve.add_argument("--replicas", type=int, default=2)
    serve.add_argument("--period", type=float, default=None)
    serve.add_argument("--faults", default=None, metavar="SPEC")
    serve.add_argument("--fault-seed", type=int, default=0)
    serve.add_argument(
        "--workload", default=None, metavar="SPEC",
        help="workload-emulation spec (see `repro continuous --help`)",
    )
    serve.add_argument(
        "--heal", action="store_true",
        help="wrap the heuristic in a re-replicating HealingPolicy",
    )
    serve.add_argument(
        "--heal-copies", type=int, default=2,
        help="live replicas HealingPolicy restores",
    )
    serve.add_argument(
        "--heal-zones", type=int, default=1,
        help="minimum distinct zones replicas must span (needs a zone map)",
    )
    serve.add_argument(
        "--heal-budget", type=int, default=None, metavar="N",
        help="max healing creations per budget window (default: unlimited)",
    )
    serve.add_argument("--shed-capacity", type=int, default=None, metavar="N")
    serve.add_argument("--object-size", type=float, default=1.0, metavar="BYTES")
    serve.add_argument(
        "--snapshot-every", type=int, default=4, metavar="N",
        help="full snapshot (and journal truncation) every N epochs",
    )
    serve.add_argument(
        "--admission-limit", type=int, default=8, metavar="N",
        help="concurrent bound solves before requests are shed with 429",
    )
    serve.add_argument(
        "--retry-after", type=float, default=1.0, metavar="S",
        help="Retry-After hint on shed requests",
    )
    serve.add_argument(
        "--breaker-failures", type=int, default=3, metavar="N",
        help="consecutive solver failures before the circuit opens",
    )
    serve.add_argument(
        "--breaker-cooldown", type=float, default=5.0, metavar="S",
        help="open-state cooldown before a half-open probe",
    )
    serve.add_argument(
        "--solve-timeout", type=float, default=30.0, metavar="S",
        help="per-request ceiling on bound solves (expiry counts a breaker failure)",
    )
    serve.add_argument(
        "--max-restarts", type=int, default=3, metavar="N",
        help="in-process supervisor restarts before escalating",
    )
    serve.add_argument(
        "--exit-when-done", action="store_true",
        help="exit after the final epoch instead of serving until SIGTERM",
    )
    serve.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="fault-injection spec (overrides $REPRO_SERVICE_CHAOS); see docs/CHAOS.md",
    )
    serve.add_argument(
        "--brownout-depth", type=float, default=0.5, metavar="FRACTION",
        help="admission-queue fill fraction past which bound solves degrade "
             "to the approximate path (marked approx:true)",
    )
    serve.add_argument(
        "--stale-ttl", type=float, default=60.0, metavar="S",
        help="max age of a last-known-good answer served while shedding or "
             "with the breaker open",
    )
    serve.add_argument("--json", action="store_true", help="machine-readable output")

    chaos = sub.add_parser(
        "chaos",
        help="run a seeded fault campaign end-to-end and check its invariants",
    )
    chaos.add_argument(
        "plan",
        help="chaos plan: semicolon-separated clauses like "
             "'flashcrowd:epochs=2-3,object=0,mult=8;zonepart:zone=1,at=900,"
             "down=900;crash:epoch=3;corrupt_checkpoint:at=1' (docs/CHAOS.md)",
    )
    chaos.add_argument(
        "--workdir", required=True, metavar="DIR",
        help="campaign artifacts: topology, state dir, serve logs, report.json",
    )
    chaos.add_argument(
        "--heuristic", default="qiu",
        choices=["lru", "lfu", "coop-lru", "greedy-global", "qiu", "random"],
    )
    chaos.add_argument("--epochs", type=int, default=6)
    chaos.add_argument(
        "--epoch-interval", type=float, default=0.25, metavar="S",
        help="wall-clock pacing of the chaos run's epochs (load needs time to land)",
    )
    chaos.add_argument("--requests", type=int, default=300, help="requests per epoch")
    chaos.add_argument("--objects", type=int, default=12)
    chaos.add_argument("--seed", type=int, default=3)
    chaos.add_argument(
        "--slo", type=float, default=0.9, metavar="FRACTION",
        help="availability SLO the healed plan must meet (checked as an invariant)",
    )
    chaos.add_argument(
        "--no-heal", action="store_true",
        help="run the bare heuristic instead of the healing wrapper",
    )
    chaos.add_argument(
        "--max-restarts", type=int, default=5,
        help="supervised relaunches of the serve subprocess after injected crashes",
    )
    chaos.add_argument(
        "--admission-limit", type=int, default=2, metavar="N",
        help="small on purpose: the campaign must push the service into brownout",
    )
    chaos.add_argument("--load-workers", type=int, default=6, metavar="N")
    chaos.add_argument("--json", action="store_true", help="machine-readable output")

    sweep = sub.add_parser("sweep", help="Figure-1 style QoS sweep of class bounds")
    problem_args(sweep)
    sweep.add_argument(
        "--levels", nargs="+", type=float, default=[0.9, 0.95, 0.99],
        help="QoS fractions to sweep",
    )
    sweep.add_argument("--classes", nargs="*", default=None)
    sweep.add_argument("--csv", help="also write the sweep as CSV to this path")
    sweep.add_argument(
        "--rounding", action="store_true", help="also round each bound to a feasible cost"
    )
    sweep.add_argument(
        "--rounding-mode",
        choices=["greedy", "iterative"],
        default="greedy",
        help="rounding algorithm when --rounding is on (see `bounds --help`)",
    )

    aud = sub.add_parser(
        "audit", help="re-verify a completed run directory's artifacts"
    )
    aud.add_argument("run_dir", help="a --run-dir produced run directory")
    aud.add_argument(
        "-t", "--topology", default=None,
        help="original topology input; with -w, enables full placement re-verification",
    )
    aud.add_argument(
        "-w", "--workload", default=None,
        help="original workload input (see -t)",
    )
    aud.add_argument(
        "--eps", type=float, default=None,
        help="slack for the rounded-cost >= lower-bound gate (default 1e-6)",
    )
    aud.add_argument(
        "--sim-eps", type=float, default=None,
        help="slack for the simulated-cost >= class-bound gate (default 1e-3)",
    )
    aud.add_argument("--json", action="store_true", help="machine-readable output")

    cache = sub.add_parser("cache", help="inspect or clear a result cache")
    cache.add_argument("action", choices=["stats", "clear"])
    cache.add_argument(
        "--cache-dir", required=True, metavar="DIR", help="cache root to operate on"
    )
    cache.add_argument("--json", action="store_true", help="machine-readable output")

    sub.add_parser("classes", help="print the Table-3 class registry")
    return parser


def _load_problem(args) -> tuple:
    topology = load_topology(args.topology)
    trace = load_trace(args.workload)
    demand = DemandMatrix.from_trace(trace, num_intervals=args.intervals)
    problem = MCPerfProblem(
        topology=topology,
        demand=demand,
        goal=QoSGoal(tlat_ms=args.tlat, fraction=args.qos, scope=GoalScope(args.scope)),
        costs=CostModel(alpha=args.alpha, beta=args.beta),
        warmup_intervals=args.warmup,
    )
    return topology, trace, demand, problem


def _runner_for(args, label: str):
    """An :class:`~repro.runner.ExperimentRunner` from the shared CLI flags."""
    return make_runner(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        run_dir=args.run_dir,
        label=label,
        task_timeout=args.task_timeout,
        retries=args.retries,
        on_error=args.on_error,
        resume=args.resume,
    )


def _finish_runner(args, runner) -> None:
    """Finalize artifacts; report to stderr (stdout stays parseable JSON)."""
    run_dir = runner.finalize()
    if getattr(args, "profile", False):
        from pathlib import Path

        from repro.perf import PERF

        snapshot = PERF.snapshot()
        if run_dir is not None:
            path = Path(run_dir) / "profile.json"
            path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
            print(f"profile written to {path}", file=sys.stderr)
        else:
            print(json.dumps({"profile": snapshot}), file=sys.stderr)
    if args.cache_dir is not None or run_dir is not None:
        message = runner.summary()
        if run_dir is not None:
            message += f" run_dir={run_dir}"
        print(message, file=sys.stderr)


def _with_zones(topology, spec):
    """Attach a ``--zones`` map to ``topology`` (no-op when spec is None)."""
    if spec is None:
        return topology
    import dataclasses

    from repro.topology.zones import parse_zones

    return dataclasses.replace(
        topology, zones=parse_zones(spec, topology.num_nodes)
    )


def _cmd_topology(args) -> int:
    topo = as_level_topology(
        num_nodes=args.nodes, seed=args.seed, population_skew=args.skew
    )
    try:
        topo = _with_zones(topo, args.zones)
    except ValidationError as exc:
        print(f"topology: bad --zones: {exc}", file=sys.stderr)
        return 2
    save_topology(topo, args.output)
    print(f"wrote {topo} to {args.output}")
    return 0


def _cmd_workload(args) -> int:
    populations = None
    if args.topology:
        populations = load_topology(args.topology).populations
    num_nodes = args.nodes
    if num_nodes is None:
        num_nodes = len(populations) if populations is not None else 20
    maker = web_workload if args.kind == "web" else group_workload
    trace = maker(
        num_nodes=num_nodes,
        num_objects=args.objects,
        populations=populations,
        requests_scale=args.scale,
        seed=args.seed,
    )
    save_trace(trace, args.output)
    print(f"wrote {characterize(trace)} to {args.output}")
    return 0


def _cmd_bounds(args) -> int:
    _topo, _trace, _demand, problem = _load_problem(args)
    cls = get_class(args.cls)
    task = BoundTask(
        problem=problem,
        properties=cls.properties,
        do_rounding=not args.no_rounding,
        backend=args.backend,
        diagnose=True,
        rounding_mode=args.rounding_mode,
        label=f"bound[{cls.name}]",
        audit=args.audit,
    )
    runner = _runner_for(args, "bounds")
    result = runner.map([task])[0]
    _finish_runner(args, runner)
    if isinstance(result, TaskFailure):
        if args.json:
            print(json.dumps({"class": cls.name, "failed": result.to_dict()}))
        else:
            print(str(result))
        return 1
    # A cache-served result may predate auditing; certify it now so
    # `bounds --audit` always reports a verdict.
    audit_report = getattr(result, "audit", None)
    if audit_report is None:
        audit_report = task.audit_cached(result)
    if args.json:
        print(
            json.dumps(
                {
                    "class": cls.name,
                    "feasible": result.feasible,
                    "lower_bound": result.lp_cost,
                    "feasible_cost": result.feasible_cost,
                    "gap": result.gap,
                    "reason": result.reason,
                    "solve_seconds": result.solve_seconds,
                    "backend_used": result.backend_used,
                    "audit": None if audit_report is None else audit_report.to_dict(),
                }
            )
        )
        if audit_report is not None and not audit_report.ok:
            return 1
    else:
        print(str(result))
        if audit_report is not None:
            print(audit_report.render())
            if not audit_report.ok:
                return 1
        if not result.feasible:
            return 1
    return 0


def _cmd_select(args) -> int:
    _topo, _trace, _demand, problem = _load_problem(args)
    runner = _runner_for(args, "select")
    report = select_heuristic(
        problem, classes=args.classes, do_rounding=not args.no_rounding, runner=runner
    )
    _finish_runner(args, runner)
    if args.json:
        print(
            json.dumps(
                {
                    "recommended": report.recommended,
                    "near_optimal": report.near_optimal,
                    "general_bound": report.general.lp_cost,
                    "bounds": {
                        name: report.bound(name) for name in report.results
                    },
                    "infeasible": report.infeasible,
                    "failed": sorted(report.failures),
                }
            )
        )
    else:
        print(report.render())
    return 0 if report.recommended else 1


def _cmd_deploy(args) -> int:
    topology, _trace, demand, problem = _load_problem(args)
    runner = _runner_for(args, "deploy")
    plan = plan_deployment(
        topology,
        demand,
        problem.goal,
        costs=problem.costs.with_zeta(args.zeta),
        max_nodes=args.max_nodes,
        warmup_intervals=args.warmup,
        do_rounding=False,
        runner=runner,
    )
    _finish_runner(args, runner)
    if args.json:
        print(
            json.dumps(
                {
                    "feasible": plan.feasible,
                    "open_nodes": plan.open_nodes,
                    "assignment": plan.assignment.tolist() if plan.assignment is not None else None,
                    "recommended": plan.recommended,
                    "reason": plan.reason,
                }
            )
        )
    else:
        print(plan.render())
    return 0 if plan.feasible else 1


def _cmd_simulate(args) -> int:
    from repro.simulator.metrics import availability_report

    topology, trace, _demand, _problem = _load_problem(args)
    period = args.period if args.period is not None else trace.duration_s / args.intervals
    spec = HeuristicSpec(
        name=args.heuristic,
        capacity=args.capacity,
        replicas=args.replicas,
        period_s=period,
        tlat_ms=args.tlat,
        heal=args.heal,
        heal_copies=args.heal_copies,
        heal_zones=args.heal_zones,
        heal_budget=args.heal_budget,
    )
    interval_s = trace.duration_s / args.intervals
    task = SimulateTask(
        topology=topology,
        trace=trace,
        heuristic=spec,
        tlat_ms=args.tlat,
        warmup_s=args.warmup * interval_s,
        cost_interval_s=interval_s,
        alpha=args.alpha,
        beta=args.beta,
        faults=args.faults or None,
        fault_seed=args.fault_seed,
        label=f"simulate[{args.heuristic}]",
        audit=args.audit,
    )
    runner = _runner_for(args, "simulate")
    result = runner.map([task])[0]
    _finish_runner(args, runner)
    if isinstance(result, TaskFailure):
        if args.json:
            print(json.dumps({"heuristic": args.heuristic, "failed": result.to_dict()}))
        else:
            print(str(result))
        return 1
    faults = args.faults or None
    if args.json:
        payload = {
            "heuristic": result.heuristic,
            "total_cost": result.total_cost,
            "storage_cost": result.storage_cost,
            "creation_cost": result.creation_cost,
            "qos": result.qos,
            "min_node_qos": result.min_node_qos,
            "meets_goal": result.meets(args.qos),
        }
        if faults is not None:
            payload.update(
                {
                    "availability": result.availability,
                    "unavailable_reads": result.unavailable_reads,
                    "node_downtime_s": result.node_downtime_s,
                    "repairs": result.repairs,
                    "mean_repair_time_s": result.mean_repair_time_s,
                    "healing_creations": result.healing_creations,
                    "healing_cost": result.healing_cost,
                }
            )
        print(json.dumps(payload))
    else:
        print(str(result))
        if faults is not None:
            print(availability_report(result))
        verdict = "meets" if result.meets(args.qos) else "MISSES"
        print(f"-> {verdict} the {args.qos:.3%} per-user goal")
    return 0 if result.meets(args.qos) else 1


def _cmd_continuous(args) -> int:
    from repro.errors import ValidationError
    from repro.runner import ContinuousTask

    topology = load_topology(args.topology)
    try:
        topology = _with_zones(topology, args.zones)
    except ValidationError as exc:
        print(f"continuous: bad --zones: {exc}", file=sys.stderr)
        return 2
    period = args.period if args.period is not None else args.epoch_length / 8.0
    spec = HeuristicSpec(
        name=args.heuristic,
        capacity=args.capacity,
        replicas=args.replicas,
        period_s=period,
        tlat_ms=args.tlat,
        heal=args.heal,
        heal_copies=args.heal_copies,
        heal_zones=args.heal_zones,
        heal_budget=args.heal_budget,
    )
    task = ContinuousTask(
        topology=topology,
        heuristic=spec,
        epochs=args.epochs,
        epoch_s=args.epoch_length,
        requests_per_epoch=args.requests,
        num_objects=args.objects,
        drift=args.drift,
        workload_seed=args.seed,
        workload=args.workload or None,
        tlat_ms=args.tlat,
        cost_interval_s=args.epoch_length,
        alpha=args.alpha,
        beta=args.beta,
        faults=args.faults or None,
        fault_seed=args.fault_seed,
        slo=args.slo,
        shed_capacity=args.shed_capacity,
        object_size_bytes=args.object_size,
        label=f"continuous[{args.heuristic}]",
        audit=args.audit,
    )
    runner = _runner_for(args, "continuous")
    # SIGTERM/SIGINT finish the current epoch, write the final manifest and
    # exit 3 — a partial-but-consistent result, not a stack trace.  The stop
    # flag is process-global (install_stop_check) because the task object
    # must stay picklable; with --jobs > 1 the workers cannot see it and a
    # signal falls back to the runner's normal teardown.
    import signal

    from repro.simulator.continuous import install_stop_check

    stop = {"requested": False}

    def _drain(signum, frame):
        if not stop["requested"]:
            print(
                "continuous: caught signal, finishing the current epoch ...",
                file=sys.stderr,
            )
        stop["requested"] = True

    old_handlers = {
        sig: signal.signal(sig, _drain) for sig in (signal.SIGTERM, signal.SIGINT)
    }
    install_stop_check(lambda: stop["requested"])
    try:
        result = runner.map([task])[0]
    except ValidationError as exc:
        runner.finalize()
        print(f"continuous: {exc}", file=sys.stderr)
        return 2
    finally:
        install_stop_check(None)
        for sig, handler in old_handlers.items():
            signal.signal(sig, handler)
    _finish_runner(args, runner)
    if isinstance(result, TaskFailure):
        if args.json:
            print(json.dumps({"heuristic": args.heuristic, "failed": result.to_dict()}))
        else:
            print(str(result))
        return 1
    violated = result.slo_target is not None and result.slo_violations > 0
    if args.json:
        print(
            json.dumps(
                {
                    "heuristic": result.heuristic,
                    "epochs": len(result.epochs),
                    "serve_cost": result.serve_cost,
                    "migration_bytes": result.migration_bytes,
                    "reads": result.reads,
                    "unavailable_reads": result.unavailable_reads,
                    "availability": result.availability,
                    "worst_epoch_availability": result.worst_epoch_availability,
                    "slo_target": result.slo_target,
                    "slo_violations": result.slo_violations,
                    "slo_violation_epochs": result.slo_violation_epochs,
                    "shed_replicas": result.shed_replicas,
                    "final_unique_zones": result.final_unique_zones,
                    "interrupted": result.interrupted,
                    "epoch_reports": [e.to_dict() for e in result.epochs],
                }
            )
        )
    else:
        print(str(result))
        for e in result.epochs:
            flag = "  SLO VIOLATED" if e.slo_violated else ""
            print(
                f"  epoch {e.index}: serve={e.serve_cost:.1f} "
                f"migrated={e.migration_bytes:.0f}B "
                f"avail={e.availability:.4f} reads={e.reads} "
                f"unavailable={e.unavailable_reads} shed={e.shed_replicas}{flag}"
            )
        if result.slo_target is not None:
            verdict = (
                f"VIOLATES in {result.slo_violations} epoch(s)"
                if violated
                else "meets in every epoch"
            )
            print(f"-> {verdict} the {result.slo_target:.3%} availability SLO")
    if result.interrupted:
        # Distinct from both success (0) and SLO violation (1): the run was
        # drained early and the epochs reported are a prefix, not the plan.
        return 3
    return 1 if violated else 0


def _cmd_serve(args) -> int:
    """Run the placement daemon + query front-end until done or signalled.

    Exit codes: 0 — all epochs completed (and, without --exit-when-done, a
    signal ended the serving phase afterwards); 3 — drained by SIGTERM/
    SIGINT before the final epoch (state checkpointed, restart resumes);
    1 — the supervisor exhausted its restarts; 2 — bad configuration.
    ``REPRO_SERVICE_CHAOS`` crashes exit with their own code (57).
    """
    import asyncio
    import os
    import signal
    import threading

    from repro.errors import ValidationError
    from repro.runner import ContinuousTask
    from repro.runner.artifacts import atomic_write_text
    from repro.service import (
        AdmissionQueue,
        CheckpointStore,
        CircuitBreaker,
        PlacementDaemon,
        PlacementService,
        Supervisor,
        parse_service_chaos,
    )

    topology = load_topology(args.topology)
    try:
        topology = _with_zones(topology, args.zones)
        chaos = parse_service_chaos(args.chaos) if args.chaos else parse_service_chaos()
    except (ValidationError, ValueError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    period = args.period if args.period is not None else args.epoch_length / 8.0
    spec = HeuristicSpec(
        name=args.heuristic,
        capacity=args.capacity,
        replicas=args.replicas,
        period_s=period,
        tlat_ms=args.tlat,
        heal=args.heal,
        heal_copies=args.heal_copies,
        heal_zones=args.heal_zones,
        heal_budget=args.heal_budget,
    )
    task = ContinuousTask(
        topology=topology,
        heuristic=spec,
        epochs=args.epochs,
        epoch_s=args.epoch_length,
        requests_per_epoch=args.requests,
        num_objects=args.objects,
        drift=args.drift,
        workload_seed=args.seed,
        workload=args.workload or None,
        tlat_ms=args.tlat,
        cost_interval_s=args.epoch_length,
        alpha=args.alpha,
        beta=args.beta,
        faults=args.faults or None,
        fault_seed=args.fault_seed,
        slo=args.slo,
        shed_capacity=args.shed_capacity,
        object_size_bytes=args.object_size,
        label=f"serve[{args.heuristic}]",
    )
    from pathlib import Path

    state_dir = Path(args.state_dir)
    store = CheckpointStore(state_dir, task.cache_key(), snapshot_every=args.snapshot_every)
    try:
        daemon = PlacementDaemon(
            task, store, chaos=chaos, epoch_interval_s=args.epoch_interval
        )
    except ValidationError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    resumed_at = daemon.recover()
    if resumed_at:
        print(f"serve: recovered checkpoint, resuming at epoch {resumed_at}", file=sys.stderr)
    supervisor = Supervisor(daemon, max_restarts=args.max_restarts)
    from repro.service import BrownoutController

    admission = AdmissionQueue(
        limit=args.admission_limit, retry_after_s=args.retry_after
    )
    try:
        brownout = BrownoutController(
            admission,
            brownout_depth=args.brownout_depth,
            stale_ttl_s=args.stale_ttl,
        )
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    service = PlacementService(
        daemon,
        admission=admission,
        breaker=CircuitBreaker(
            failure_threshold=args.breaker_failures, cooldown_s=args.breaker_cooldown
        ),
        supervisor=supervisor,
        chaos=chaos,
        brownout=brownout,
        solve_timeout_s=args.solve_timeout,
    )

    stop_event = threading.Event()
    loop_failure: List[BaseException] = []

    def _loop():
        try:
            supervisor.run(stop=stop_event.is_set)
        except BaseException as exc:  # noqa: BLE001 — reported by the watcher
            loop_failure.append(exc)

    async def _main() -> int:
        host, port = await service.start(args.host, args.port)
        atomic_write_text(
            state_dir / "endpoint.json",
            json.dumps({"host": host, "port": port, "pid": os.getpid()}),
        )
        print(f"serve: listening on {host}:{port} (state in {state_dir})", file=sys.stderr)
        aio_loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            aio_loop.add_signal_handler(sig, stop_event.set)
        worker = threading.Thread(target=_loop, name="placement-daemon", daemon=True)
        worker.start()
        announced_done = False
        while True:
            if stop_event.is_set():
                break
            if loop_failure:
                break
            if daemon.done and not announced_done:
                announced_done = True
                _write_result(interrupted=False)
                print("serve: all epochs complete", file=sys.stderr)
                if args.exit_when_done:
                    stop_event.set()
                    break
            await asyncio.sleep(0.05)
        stop_event.set()
        # Drain: the worker returns at the next epoch boundary; its state is
        # already durable (the loop journals before publishing).
        await aio_loop.run_in_executor(None, lambda: worker.join(timeout=600.0))
        await service.stop()
        if loop_failure:
            print(f"serve: daemon failed: {loop_failure[0]}", file=sys.stderr)
            return 1
        if not daemon.done:
            _write_result(interrupted=True)
            print(
                f"serve: drained at epoch {daemon.state.index}/{task.epochs}; "
                "state checkpointed, restart to resume",
                file=sys.stderr,
            )
            return 3
        _write_result(interrupted=False)
        return 0

    def _write_result(interrupted: bool) -> None:
        store.snapshot(daemon.state)
        atomic_write_text(
            state_dir / "result.json",
            json.dumps(daemon.result(interrupted=interrupted).to_dict(), indent=2),
        )

    try:
        code = asyncio.run(_main())
    except ValidationError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(
            json.dumps(
                {
                    "epochs_completed": daemon.state.index,
                    "epochs_total": task.epochs,
                    "done": daemon.done,
                    "recovered_from": daemon.recovered_from,
                    "restarts": supervisor.restarts,
                    "exit": code,
                }
            )
        )
    return code


def _cmd_chaos(args) -> int:
    """Run one fault campaign end-to-end and check its invariants.

    Exit codes: 0 — every invariant held; 1 — at least one invariant
    failed (details in <workdir>/report.json and the serve logs); 2 — the
    plan itself is malformed.
    """
    from repro.chaos import run_campaign
    from repro.errors import ValidationError

    try:
        report = run_campaign(
            args.plan,
            args.workdir,
            heuristic=args.heuristic,
            epochs=args.epochs,
            epoch_interval_s=args.epoch_interval,
            requests_per_epoch=args.requests,
            num_objects=args.objects,
            seed=args.seed,
            slo=args.slo,
            heal=not args.no_heal,
            max_restarts=args.max_restarts,
            admission_limit=args.admission_limit,
            load_workers=args.load_workers,
        )
    except ValidationError as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict()))
    else:
        print(report.render())
    return 0 if report.passed else 1


def _cmd_sweep(args) -> int:
    from pathlib import Path

    from repro.analysis.report import render_csv, render_sweep_table
    from repro.analysis.sweep import qos_sweep

    _topo, _trace, _demand, problem = _load_problem(args)
    runner = _runner_for(args, "sweep")
    sweep = qos_sweep(
        problem,
        levels=args.levels,
        classes=args.classes,
        do_rounding=args.rounding,
        rounding_mode=args.rounding_mode,
        runner=runner,
        audit=args.audit,
    )
    _finish_runner(args, runner)
    if args.json:
        print(
            json.dumps(
                {
                    "levels": sweep.levels,
                    "bounds": {
                        cls: sweep.series(cls) for cls in sweep.classes
                    },
                    "failed_cells": [
                        [cls, level] for cls, level in sweep.failed_cells()
                    ],
                }
            )
        )
    else:
        print(render_sweep_table(sweep, title="Lower bound per class vs QoS goal"))
    if args.csv:
        Path(args.csv).write_text(render_csv(sweep) + "\n")
        print(f"\nwrote CSV to {args.csv}")
    return 0


def _cmd_audit(args) -> int:
    from pathlib import Path

    from repro.audit import DEFAULT_EPS, audit_run_dir
    from repro.audit.posthoc import DEFAULT_SIM_EPS

    # A torn or truncated manifest is an artifact-integrity failure, not an
    # audit verdict: nothing in the run can be verified from it.  Diagnose
    # it up front and exit 2 (configuration/integrity) instead of letting
    # the audit report a wall of unverifiable cells.
    manifest = Path(args.run_dir) / "manifest.json"
    if manifest.is_file():
        try:
            json.loads(manifest.read_text())
        except (OSError, ValueError) as exc:
            print(
                f"audit: {manifest} is corrupt (torn or truncated write): {exc}\n"
                "audit: the run directory cannot be verified; re-run the "
                "experiment or restore the manifest from backup",
                file=sys.stderr,
            )
            return 2

    problem_factory = None
    if args.topology and args.workload:
        topology = load_topology(args.topology)
        trace = load_trace(args.workload)

        def problem_factory(meta):
            """Rebuild a bound cell's problem from its manifest metadata."""
            qos = meta.get("qos")
            if qos is None:
                return None
            try:
                demand = DemandMatrix.from_trace(
                    trace, num_intervals=int(meta.get("intervals", 8))
                )
                return MCPerfProblem(
                    topology=topology,
                    demand=demand,
                    goal=QoSGoal(
                        tlat_ms=float(meta.get("tlat_ms", 150.0)),
                        fraction=float(qos),
                        scope=GoalScope(meta.get("scope", GoalScope.PER_USER.value)),
                    ),
                    costs=CostModel(
                        alpha=float(meta.get("alpha", 1.0)),
                        beta=float(meta.get("beta", 1.0)),
                        gamma=float(meta.get("gamma", 0.0)),
                        delta=float(meta.get("delta", 0.0)),
                        zeta=float(meta.get("zeta", 0.0)),
                    ),
                    warmup_intervals=int(meta.get("warmup", 0)),
                )
            except (TypeError, ValueError, KeyError):
                return None
    elif args.topology or args.workload:
        print("audit: -t and -w must be given together", file=sys.stderr)
        return 2

    report = audit_run_dir(
        args.run_dir,
        problem_factory=problem_factory,
        eps=args.eps if args.eps is not None else DEFAULT_EPS,
        sim_eps=args.sim_eps if args.sim_eps is not None else DEFAULT_SIM_EPS,
    )
    if args.json:
        print(json.dumps(report.to_dict()))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_cache(args) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        stats = cache.stats()
        if args.json:
            print(json.dumps(stats))
        else:
            print(f"cache at {stats['root']}")
            print(
                f"  {stats['entries']} entr{'y' if stats['entries'] == 1 else 'ies'}, "
                f"{stats['bytes']} bytes, {stats['seconds']:.2f}s of solve time saved"
            )
            for kind, count in sorted(stats["kinds"].items()):
                print(f"  {kind}: {count}")
    else:
        removed = cache.clear()
        if args.json:
            print(json.dumps({"removed": removed}))
        else:
            print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'}")
    return 0


def _configure_logging(args) -> None:
    """Map -q/-v/-vv to a root log level; safe to call once per invocation."""
    if args.quiet:
        level = logging.ERROR
    elif args.verbose >= 2:
        level = logging.DEBUG
    elif args.verbose == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    logging.basicConfig(
        level=level, format="%(levelname)s %(name)s: %(message)s", stream=sys.stderr
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    _configure_logging(args)
    if getattr(args, "profile", False):
        # One command = one profile: drop anything accumulated at import
        # time or by a previous main() call in the same process.
        from repro.perf import PERF

        PERF.reset()
    handlers = {
        "topology": _cmd_topology,
        "workload": _cmd_workload,
        "bounds": _cmd_bounds,
        "select": _cmd_select,
        "deploy": _cmd_deploy,
        "simulate": _cmd_simulate,
        "continuous": _cmd_continuous,
        "serve": _cmd_serve,
        "chaos": _cmd_chaos,
        "sweep": _cmd_sweep,
        "audit": _cmd_audit,
        "cache": _cmd_cache,
        "classes": lambda a: (print(render_table3()), 0)[1],
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output was piped to a consumer that closed early (e.g. `| head`).
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
