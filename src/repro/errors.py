"""Shared exception types.

Kept dependency-free (no numpy, no package imports) so input-validation
call sites — topology/workload deserialization, CLI argument handling —
can raise a precise error class without pulling in heavier subsystems.
"""

from __future__ import annotations


class ValidationError(ValueError):
    """Invalid input data: rejected before it can poison a computation.

    Raised by the topology/trace loaders for non-finite latencies, NaN
    request times, non-positive counts and similar malformed inputs.  A
    subclass of :class:`ValueError` so existing ``except ValueError``
    call sites keep working.
    """
