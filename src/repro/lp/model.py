"""LP model container.

:class:`LinearProgram` holds variables (with bounds and objective
coefficients) and constraints (as sparse rows), and hands the assembled
matrices to a solver backend.  Three construction styles are supported:

* expression based — readable, for small/structural constraints::

      x = lp.var("x", ub=1.0, obj=2.0)
      lp.add(x.expr() + y.expr() <= 1, name="pick-one")

* array based — for moderate row counts::

      lp.add_row([ix, iy], [1.0, 1.0], "<=", 1.0, name="pick-one")

* block based — the fast path for MC-PERF's O(N*I*K) row families::

      lp.add_rows_bulk(indptr, flat_indices, flat_coeffs, "<=", rhs)

Variables are continuous; MC-PERF's integrality is recovered by the rounding
algorithm in :mod:`repro.core.rounding`, exactly as in the paper.

Assembled solver arrays are cached on the model and invalidated only by
structural edits (new variables or rows).  Numeric edits go through the
patch API — :meth:`~LinearProgram.fix_var`, :meth:`~LinearProgram.set_bound`,
:meth:`~LinearProgram.set_rhs` — which updates the cached arrays in place,
so re-solves after a patch are assembly-free.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass, field
from itertools import repeat as _repeat
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lp.expr import ConstraintSpec, LinExpr
from repro.lp.solution import LPSolution
from repro.perf import PERF

_np = None
_sparse = None


def _numpy():
    """Lazy module-level numpy handle (imported once per process)."""
    global _np
    if _np is None:
        import numpy

        _np = numpy
    return _np


def _scipy_sparse():
    """Lazy module-level scipy.sparse handle, or None when scipy is absent.

    The import outcome (module or failure) is cached once per process;
    without scipy the assembled cache carries RHS/bound vectors but no
    CSR matrices, which only the scipy backend itself would consume.
    """
    global _sparse
    if _sparse is None:
        try:
            from scipy import sparse
        except ImportError:
            _sparse = False
        else:
            _sparse = sparse
    return _sparse or None


class Sense(str, enum.Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="

    @staticmethod
    def parse(value: "Sense | str") -> "Sense":
        if isinstance(value, Sense):
            return value
        try:
            return Sense(value)
        except ValueError as exc:
            raise ValueError(f"unknown constraint sense: {value!r}") from exc


@dataclass
class Variable:
    """A model variable: bounds, objective coefficient and a debug name."""

    index: int
    name: str
    lower: float = 0.0
    upper: Optional[float] = None
    objective: float = 0.0

    def expr(self, coeff: float = 1.0) -> LinExpr:
        """The expression ``coeff * self``."""
        return LinExpr.term(self.index, coeff)


@dataclass
class Constraint:
    """A sparse constraint row ``sum(coeffs * x[indices]) sense rhs``."""

    name: str
    indices: Sequence[int]
    coeffs: Sequence[float]
    sense: Sense
    rhs: float

    def activity(self, values) -> float:
        return sum(c * float(values[i]) for i, c in zip(self.indices, self.coeffs))

    def satisfied(self, values, tol: float = 1e-6) -> bool:
        act = self.activity(values)
        if self.sense is Sense.LE:
            return act <= self.rhs + tol
        if self.sense is Sense.GE:
            return act >= self.rhs - tol
        return abs(act - self.rhs) <= tol


#: Compact sense encoding used by the columnar row storage (LE=0, GE=1, EQ=2).
_SENSE_CODE = {Sense.LE: 0, Sense.GE: 1, Sense.EQ: 2}
_CODE_SENSE = {0: Sense.LE, 1: Sense.GE, 2: Sense.EQ}


class _RowBlock:
    """A homogeneous family of rows stored columnar (no per-row objects).

    ``add_rows_bulk`` appends one of these per family: the CSR triple
    (``indptr``/``indices``/``coeffs``), a shared sense, per-row ``rhs``,
    and optional per-row names.  Individual :class:`Constraint` objects are
    materialized lazily only when somebody actually indexes or iterates the
    row (diagnostics, validation, the pure-Python simplex) — the hot
    assembly path reads the columnar arrays directly.
    """

    __slots__ = ("start", "indptr", "indices", "coeffs", "sense", "rhs", "names")

    def __init__(self, start, indptr, indices, coeffs, sense, rhs, names=None):
        self.start = start  # global row index of the block's first row
        self.indptr = indptr
        self.indices = indices
        self.coeffs = coeffs
        self.sense = sense
        self.rhs = rhs
        self.names = names

    def __len__(self) -> int:
        return len(self.indptr) - 1

    def materialize(self, offset: int) -> Constraint:
        """Build the :class:`Constraint` view for row ``start + offset``."""
        s = self.indptr[offset]
        e = self.indptr[offset + 1]
        name = self.names[offset] if self.names is not None else f"c{self.start + offset}"
        return Constraint(
            name=name,
            indices=self.indices[s:e],
            coeffs=self.coeffs[s:e],
            sense=self.sense,
            rhs=float(self.rhs[offset]),
        )


class ConstraintList:
    """Sequence of constraints mixing per-row objects and columnar blocks.

    Rows added one at a time (``add_row``/``add``) live as plain
    :class:`Constraint` objects; families added via ``add_rows_bulk`` live
    as :class:`_RowBlock` columns.  Indexing/iteration materialize block
    rows on demand (memoized, so patching a materialized row's RHS stays
    coherent); ``columnar()`` hands the assembly the flat arrays without
    creating any row objects.
    """

    __slots__ = ("_segs", "_starts", "_len", "_cache")

    def __init__(self, items=()):
        self._segs: list = []  # each: list[Constraint] | _RowBlock
        self._starts: List[int] = []  # global row index where each segment begins
        self._len = 0
        self._cache: Dict[int, Constraint] = {}
        for item in items:
            self.append(item)

    def __len__(self) -> int:
        return self._len

    def _locate(self, row: int):
        seg_i = bisect_right(self._starts, row) - 1
        return self._segs[seg_i], row - self._starts[seg_i]

    def __getitem__(self, row):
        if isinstance(row, slice):
            return [self[i] for i in range(*row.indices(self._len))]
        row = int(row)
        if row < 0:
            row += self._len
        if not 0 <= row < self._len:
            raise IndexError("constraint index out of range")
        seg, off = self._locate(row)
        if isinstance(seg, list):
            return seg[off]
        con = self._cache.get(row)
        if con is None:
            con = seg.materialize(off)
            self._cache[row] = con
        return con

    def __iter__(self):
        for start, seg in zip(self._starts, self._segs):
            if isinstance(seg, list):
                yield from seg
            else:
                cache = self._cache
                for off in range(len(seg)):
                    row = start + off
                    con = cache.get(row)
                    if con is None:
                        con = seg.materialize(off)
                        cache[row] = con
                    yield con

    def __eq__(self, other):
        if isinstance(other, (ConstraintList, list)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"ConstraintList(len={self._len}, segments={len(self._segs)})"

    def append(self, con: Constraint) -> None:
        if self._segs and isinstance(self._segs[-1], list):
            self._segs[-1].append(con)
        else:
            self._starts.append(self._len)
            self._segs.append([con])
        self._len += 1

    def append_block(self, block: _RowBlock) -> None:
        self._starts.append(self._len)
        self._segs.append(block)
        self._len += len(block)

    def set_rhs(self, row: int, rhs: float) -> None:
        """Patch one row's RHS without materializing it."""
        seg, off = self._locate(row)
        if isinstance(seg, list):
            seg[off].rhs = rhs
        else:
            seg.rhs[off] = rhs
            con = self._cache.get(row)
            if con is not None:
                con.rhs = rhs

    def columnar(self):
        """Flatten to ``(lengths, sense_codes, rhs, flat_idx, flat_cf)``.

        One concatenated view of every segment, block rows at zero per-row
        cost; object-segment rows are converted on the fly (they are the
        handful of goal/auxiliary rows, never the O(N·I·K) families).
        """
        np = _numpy()
        lengths_parts = []
        sense_parts = []
        rhs_parts = []
        idx_parts = []
        cf_parts = []
        for seg in self._segs:
            if isinstance(seg, list):
                n = len(seg)
                if not n:
                    continue
                lengths_parts.append(
                    np.fromiter((len(c.indices) for c in seg), dtype=np.int64, count=n)
                )
                sense_parts.append(
                    np.fromiter((_SENSE_CODE[c.sense] for c in seg), dtype=np.int8, count=n)
                )
                rhs_parts.append(
                    np.fromiter((c.rhs for c in seg), dtype=np.float64, count=n)
                )
                for c in seg:
                    if len(c.indices):
                        idx_parts.append(np.asarray(c.indices, dtype=np.int64))
                        cf_parts.append(np.asarray(c.coeffs, dtype=np.float64))
            else:
                lengths_parts.append(np.diff(seg.indptr))
                sense_parts.append(
                    np.full(len(seg), _SENSE_CODE[seg.sense], dtype=np.int8)
                )
                rhs_parts.append(seg.rhs)
                if len(seg.indices):
                    idx_parts.append(seg.indices)
                    cf_parts.append(seg.coeffs)
        empty_i = np.empty(0, dtype=np.int64)
        empty_f = np.empty(0, dtype=np.float64)
        return (
            np.concatenate(lengths_parts) if lengths_parts else empty_i,
            np.concatenate(sense_parts) if sense_parts else np.empty(0, dtype=np.int8),
            np.concatenate(rhs_parts) if rhs_parts else empty_f,
            np.concatenate(idx_parts) if idx_parts else empty_i,
            np.concatenate(cf_parts) if cf_parts else empty_f,
        )


class _ArrayCache:
    """Assembled solver arrays plus the row map the patch API needs.

    ``row_pos[r]`` is constraint ``r``'s row within its matrix (``a_eq`` when
    ``row_is_eq[r]`` else ``a_ub``); ``row_flip[r]`` marks ``>=`` rows that
    were negated into ``<=`` form, so an RHS patch knows to store ``-rhs``.

    Besides the scipy-shaped split matrices, the cache keeps the *unsplit*
    view the revised simplex engine reads: ``b_all`` (RHS in model row
    order, original signs) and ``lb``/``ub`` (dense bound arrays, ``+inf``
    for unbounded).  The patch API keeps both views in sync, so a warm
    re-solve sees every ``set_rhs``/``set_bound``/``fix_var`` without any
    reassembly.
    """

    __slots__ = (
        "c", "bounds", "a_ub", "b_ub", "a_eq", "b_eq",
        "row_pos", "row_is_eq", "row_flip", "nvars", "nrows",
        "b_all", "lb", "ub",
    )

    def __init__(self, c, bounds, a_ub, b_ub, a_eq, b_eq, row_pos, row_is_eq,
                 row_flip, b_all, lb, ub):
        self.c = c
        self.bounds = bounds
        self.a_ub = a_ub
        self.b_ub = b_ub
        self.a_eq = a_eq
        self.b_eq = b_eq
        self.row_pos = row_pos
        self.row_is_eq = row_is_eq
        self.row_flip = row_flip
        self.b_all = b_all
        self.lb = lb
        self.ub = ub
        self.nvars = len(bounds)
        self.nrows = len(row_pos)


class PatchLog:
    """Which rows/columns the patch API touched since the last drain.

    The warm-start machinery reads this to attribute counters and decide
    whether a cached basis is even worth re-certifying; it never affects
    correctness (the engine re-reads the patched arrays wholesale).
    """

    __slots__ = ("rows", "bounds", "objective")

    def __init__(self) -> None:
        self.rows: set = set()
        self.bounds: set = set()
        self.objective: set = set()

    def clear(self) -> None:
        self.rows.clear()
        self.bounds.clear()
        self.objective.clear()

    def __bool__(self) -> bool:
        return bool(self.rows or self.bounds or self.objective)

    def __repr__(self) -> str:
        return (
            f"PatchLog(rows={len(self.rows)}, bounds={len(self.bounds)}, "
            f"objective={len(self.objective)})"
        )


@dataclass
class LinearProgram:
    """A minimization LP over continuous bounded variables."""

    name: str = "lp"
    variables: List[Variable] = field(default_factory=list)
    constraints: "ConstraintList" = field(default_factory=ConstraintList)
    _names: Dict[str, int] = field(default_factory=dict)
    _arrays: Optional[_ArrayCache] = field(default=None, repr=False, compare=False)
    #: Patch-API change log (rows / bounds / objective indices touched).
    patch_log: PatchLog = field(default_factory=PatchLog, repr=False, compare=False)
    #: Cached revised-simplex engine (see :mod:`repro.lp.revised`); holds an
    #: LU factor, so it is dropped on pickling/deepcopy and rebuilt lazily.
    _engine: Optional[object] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        # Accept a plain list of Constraint objects (diagnostics build
        # filtered sub-models that way) and wrap it in the hybrid storage.
        if not isinstance(self.constraints, ConstraintList):
            self.constraints = ConstraintList(self.constraints)

    # -- variables ---------------------------------------------------------

    def var(
        self,
        name: str,
        lower: float = 0.0,
        upper: Optional[float] = None,
        obj: float = 0.0,
    ) -> Variable:
        """Add a variable and return its handle.

        Names must be unique; they exist for debugging and solution lookup.
        """
        if name in self._names:
            raise ValueError(f"duplicate variable name: {name!r}")
        if upper is not None and upper < lower:
            raise ValueError(f"variable {name!r}: upper {upper} < lower {lower}")
        v = Variable(index=len(self.variables), name=name, lower=lower, upper=upper, objective=obj)
        self.variables.append(v)
        self._names[name] = v.index
        self._arrays = None
        return v

    def var_block(
        self,
        prefix: str,
        count: int,
        lower: float = 0.0,
        upper: Optional[float] = None,
        obj: float = 0.0,
    ) -> range:
        """Add ``count`` homogeneous variables named ``prefix[j]``; return their index range."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return self.add_vars_bulk(
            [f"{prefix}[{j}]" for j in range(count)], lower=lower, upper=upper, obj=obj
        )

    def add_vars_bulk(
        self,
        names: Sequence[str],
        lower=0.0,
        upper=None,
        obj=0.0,
    ) -> range:
        """Append a block of variables; return their index range.

        ``lower``/``upper``/``obj`` may be scalars (applied to every
        variable) or per-variable sequences.  The bulk path for MC-PERF's
        store/create/covered blocks: one call per family instead of one
        ``var()`` call per cell.
        """
        count = len(names)
        start = len(self.variables)
        scalar_lo = not hasattr(lower, "__len__")
        scalar_up = upper is None or not hasattr(upper, "__len__")
        scalar_obj = not hasattr(obj, "__len__")
        if scalar_up and upper is not None and scalar_lo and upper < lower:
            raise ValueError(f"variable block: upper {upper} < lower {lower}")
        lo_seq = None if scalar_lo else [float(x) for x in lower]
        up_seq = None if scalar_up else [None if x is None else float(x) for x in upper]
        obj_seq = None if scalar_obj else [float(x) for x in obj]
        if not (scalar_lo and scalar_up):
            for j in range(count):
                lo = lower if scalar_lo else lo_seq[j]
                up = upper if scalar_up else up_seq[j]
                if up is not None and up < lo:
                    raise ValueError(f"variable {names[j]!r}: upper {up} < lower {lo}")
        # map() drives the construction loop in C — measurably faster than a
        # comprehension for the O(N*I*K) variable families.
        block = list(
            map(
                Variable,
                range(start, start + count),
                names,
                _repeat(lower) if scalar_lo else lo_seq,
                _repeat(upper) if scalar_up else up_seq,
                _repeat(obj) if scalar_obj else obj_seq,
            )
        )
        nametab = self._names
        nametab.update(zip(names, range(start, start + count)))
        if len(nametab) != start + count:
            # Roll back (self.variables is still pristine) and name the offender.
            self._names = {v.name: v.index for v in self.variables}
            seen = set(self._names)
            for name in names:
                if name in seen:
                    raise ValueError(f"duplicate variable name: {name!r}")
                seen.add(name)
            raise ValueError("duplicate variable name in bulk block")
        self.variables.extend(block)
        self._arrays = None
        return range(start, start + count)

    def variable_by_name(self, name: str) -> Variable:
        return self.variables[self._names[name]]

    def set_objective(self, index: int, coeff: float) -> None:
        self.variables[index].objective = float(coeff)
        if self._arrays is not None:
            self._arrays.c[index] = self.variables[index].objective
        self.patch_log.objective.add(index)

    def add_objective(self, index: int, coeff: float) -> None:
        self.variables[index].objective += float(coeff)
        if self._arrays is not None:
            self._arrays.c[index] = self.variables[index].objective
        self.patch_log.objective.add(index)

    def set_bounds(self, index: int, lower: float = 0.0, upper: Optional[float] = None) -> None:
        """Patch a variable's bounds, updating cached arrays in place."""
        if upper is not None and upper < lower:
            raise ValueError(f"variable {index}: upper {upper} < lower {lower}")
        v = self.variables[index]
        v.lower = lower
        v.upper = upper
        cache = self._arrays
        if cache is not None:
            cache.bounds[index] = (lower, upper)
            cache.lb[index] = lower
            cache.ub[index] = float("inf") if upper is None else upper
        self.patch_log.bounds.add(index)
        PERF.count("lp.patch.bound")

    # ``set_bound`` is the patch-API name from the performance layer;
    # ``set_bounds`` predates it.  Both patch in place.
    set_bound = set_bounds

    def fix_var(self, index: int, value: float) -> None:
        """Fix a variable to a constant without invalidating the assembly."""
        self.set_bounds(index, value, value)
        PERF.count("lp.patch.fix_var")

    def fix(self, index: int, value: float) -> None:
        """Fix a variable to a constant (used for Know/Hist/React fixings)."""
        self.fix_var(index, value)

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    # -- constraints -------------------------------------------------------

    def add(self, spec: ConstraintSpec, name: str = "") -> Constraint:
        """Add a constraint produced by comparing :class:`LinExpr` objects."""
        if not isinstance(spec, ConstraintSpec):
            raise TypeError(
                "add() expects a comparison of LinExpr objects, e.g. lp.add(x <= 1)"
            )
        indices = list(spec.expr.terms.keys())
        coeffs = [spec.expr.terms[i] for i in indices]
        return self.add_row(indices, coeffs, spec.sense, spec.rhs, name=name)

    def add_row(
        self,
        indices: Sequence[int],
        coeffs: Sequence[float],
        sense: "Sense | str",
        rhs: float,
        name: str = "",
    ) -> Constraint:
        """Add a sparse constraint row directly."""
        if len(indices) != len(coeffs):
            raise ValueError("indices and coeffs must have the same length")
        nvar = len(self.variables)
        for i in indices:
            if not 0 <= i < nvar:
                raise IndexError(f"constraint references unknown variable index {i}")
        con = Constraint(
            name=name or f"c{len(self.constraints)}",
            indices=list(indices),
            coeffs=[float(c) for c in coeffs],
            sense=Sense.parse(sense),
            rhs=float(rhs),
        )
        self.constraints.append(con)
        self._arrays = None
        return con

    def add_rows_bulk(
        self,
        indptr,
        indices,
        coeffs,
        sense: "Sense | str",
        rhs,
        names: Optional[Sequence[str]] = None,
    ) -> range:
        """Append a homogeneous block of sparse rows (fast path).

        ``indptr`` delimits rows within the flat ``indices``/``coeffs``
        arrays CSR-style (row ``r`` spans ``indptr[r]:indptr[r+1]``);
        ``sense`` applies to the whole block; ``rhs`` is per-row.  The
        block is stored columnar — no per-row objects are created, so a
        10k-row family costs one validation pass plus one ``_RowBlock``;
        :class:`Constraint` views materialize lazily only if somebody
        indexes into the family.

        Returns the block's row-index range.
        """
        np = _numpy()
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        coeffs = np.asarray(coeffs, dtype=np.float64)
        rhs = np.asarray(rhs, dtype=np.float64)
        nrows = len(indptr) - 1
        if nrows < 0:
            raise ValueError("indptr must have at least one entry")
        if len(rhs) != nrows:
            raise ValueError(f"rhs has {len(rhs)} entries for {nrows} rows")
        if names is not None and len(names) != nrows:
            raise ValueError(f"names has {len(names)} entries for {nrows} rows")
        if indptr[0] != 0 or (nrows and indptr[-1] != len(indices)):
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if len(indices) != len(coeffs):
            raise ValueError("indices and coeffs must have the same length")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(indices) and (indices.min() < 0 or indices.max() >= len(self.variables)):
            raise IndexError("constraint block references unknown variable index")

        parsed = Sense.parse(sense)
        start = len(self.constraints)
        block_names = None if names is None else list(names)
        self.constraints.append_block(
            _RowBlock(start, indptr, indices, coeffs, parsed, rhs, block_names)
        )
        self._arrays = None
        return range(start, start + nrows)

    def set_rhs(self, row: int, rhs: float) -> None:
        """Patch one constraint's RHS, updating cached arrays in place.

        ``>=`` rows live negated in ``A_ub``; the cache's flip map applies
        the matching sign to the patched value.
        """
        rhs = float(rhs)
        self.constraints.set_rhs(row, rhs)
        cache = self._arrays
        if cache is not None:
            pos = cache.row_pos[row]
            if cache.row_is_eq[row]:
                cache.b_eq[pos] = rhs
            else:
                cache.b_ub[pos] = -rhs if cache.row_flip[row] else rhs
            cache.b_all[row] = rhs
        self.patch_log.rows.add(row)
        PERF.count("lp.patch.rhs")

    # -- assembly ----------------------------------------------------------

    def _assemble(self) -> _ArrayCache:
        """Run the full vectorized assembly into a fresh cache.

        Reads the constraint store's columnar form — block families
        contribute their flat CSR arrays directly, so assembly cost scales
        with nnz, not with Python-level row objects.
        """
        np = _numpy()
        sparse = _scipy_sparse()
        n = len(self.variables)
        c = np.fromiter((v.objective for v in self.variables), dtype=np.float64, count=n)
        bounds: List[Tuple[float, Optional[float]]] = [
            (v.lower, v.upper) for v in self.variables
        ]
        lb = np.fromiter((v.lower for v in self.variables), dtype=np.float64, count=n)
        ub = np.fromiter(
            (np.inf if v.upper is None else v.upper for v in self.variables),
            dtype=np.float64,
            count=n,
        )
        lengths, sense_codes, rhs_all, flat_idx, flat_cf = self.constraints.columnar()
        b_all = np.array(rhs_all, dtype=np.float64)  # own copy; patched in place
        row_is_eq = sense_codes == _SENSE_CODE[Sense.EQ]
        row_flip = sense_codes == _SENSE_CODE[Sense.GE]
        row_pos = np.where(
            row_is_eq,
            np.cumsum(row_is_eq) - 1,
            np.cumsum(~row_is_eq) - 1,
        ).astype(np.int64)

        def build(lens, col, data, rhs, flip):
            if not len(lens):
                return None, None
            if flip is not None and flip.any():
                data = np.where(np.repeat(flip, lens), -data, data)
                rhs = np.where(flip, -rhs, rhs)
            if sparse is None:
                # No scipy: the revised simplex keeps its own CSC triple,
                # so only the (never-reachable) scipy backend misses these.
                return None, rhs
            indptr = np.zeros(len(lens) + 1, dtype=np.int64)
            np.cumsum(lens, out=indptr[1:])
            mat = sparse.csr_matrix((data, col, indptr), shape=(len(lens), n))
            return mat, rhs

        if not row_is_eq.any():
            # Common case (MC-PERF has no equality rows): no boolean split.
            a_ub, b_ub = build(lengths, flat_idx, flat_cf, rhs_all, row_flip)
            a_eq, b_eq = None, None
        elif row_is_eq.all():
            a_ub, b_ub = None, None
            a_eq, b_eq = build(lengths, flat_idx, flat_cf, rhs_all, None)
        else:
            nnz_eq = np.repeat(row_is_eq, lengths)
            a_ub, b_ub = build(
                lengths[~row_is_eq],
                flat_idx[~nnz_eq],
                flat_cf[~nnz_eq],
                rhs_all[~row_is_eq],
                row_flip[~row_is_eq],
            )
            a_eq, b_eq = build(
                lengths[row_is_eq],
                flat_idx[nnz_eq],
                flat_cf[nnz_eq],
                rhs_all[row_is_eq],
                None,
            )
        return _ArrayCache(
            c, bounds, a_ub, b_ub, a_eq, b_eq, row_pos, row_is_eq, row_flip,
            b_all, lb, ub,
        )

    def to_arrays(self):
        """Assemble ``(c, A_ub, b_ub, A_eq, b_eq, bounds)`` as scipy-ready data.

        ``A_ub``/``A_eq`` are ``scipy.sparse.csr_matrix`` (or None when there
        are no rows of that kind); ``>=`` rows are negated into ``<=`` form.

        The assembled arrays are cached on the model: structural edits (new
        variables/rows) invalidate the cache, numeric edits via the patch
        API update it in place, so repeated ``solve()`` calls skip assembly.
        Callers must not mutate the returned arrays directly.
        """
        cache = self._arrays
        if (
            cache is not None
            and cache.nvars == len(self.variables)
            and cache.nrows == len(self.constraints)
        ):
            PERF.count("lp.assembly.reuse")
        else:
            with PERF.timer("lp.assembly"):
                cache = self._assemble()
            self._arrays = cache
            PERF.count("lp.assembly.rebuild")
        return cache.c, cache.a_ub, cache.b_ub, cache.a_eq, cache.b_eq, cache.bounds

    # -- solving -----------------------------------------------------------

    def solve(self, backend: str = "auto", **kwargs) -> LPSolution:
        """Solve the LP with the chosen backend.

        Backends are looked up in the :mod:`repro.solvers.registry`:
        ``"scipy"`` uses scipy/HiGHS, ``"simplex"`` the pure-Python
        fallback.  ``"auto"`` (default) tries scipy and falls back to the
        simplex — with a warning — when scipy is missing or its solve
        raises, so bounds still compute on scipy-less installs.
        """
        PERF.count("lp.solve")
        with PERF.timer("lp.solve"):
            return self._solve(backend, **kwargs)

    def _solve(self, backend: str, **kwargs) -> LPSolution:
        from repro.solvers.registry import solve_lp

        return solve_lp(self, backend, **kwargs)

    def __getstate__(self):
        """Drop the engine on pickle/deepcopy: it holds an LU factor.

        The assembled arrays travel (they are plain numpy/scipy data); the
        engine rebuilds lazily on the first solve in the new process.
        """
        state = self.__dict__.copy()
        state["_engine"] = None
        return state

    def __repr__(self) -> str:
        return (
            f"LinearProgram(name={self.name!r}, vars={len(self.variables)}, "
            f"constraints={len(self.constraints)})"
        )
