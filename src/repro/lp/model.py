"""LP model container.

:class:`LinearProgram` holds variables (with bounds and objective
coefficients) and constraints (as sparse rows), and hands the assembled
matrices to a solver backend.  Two construction styles are supported:

* expression based — readable, for small/structural constraints::

      x = lp.var("x", ub=1.0, obj=2.0)
      lp.add(x.expr() + y.expr() <= 1, name="pick-one")

* array based — fast, for the bulk of MC-PERF's O(N*I*K) rows::

      lp.add_row([ix, iy], [1.0, 1.0], "<=", 1.0, name="pick-one")

Variables are continuous; MC-PERF's integrality is recovered by the rounding
algorithm in :mod:`repro.core.rounding`, exactly as in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.lp.expr import ConstraintSpec, LinExpr
from repro.lp.solution import LPSolution


class Sense(str, enum.Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="

    @staticmethod
    def parse(value: "Sense | str") -> "Sense":
        if isinstance(value, Sense):
            return value
        try:
            return Sense(value)
        except ValueError as exc:
            raise ValueError(f"unknown constraint sense: {value!r}") from exc


@dataclass
class Variable:
    """A model variable: bounds, objective coefficient and a debug name."""

    index: int
    name: str
    lower: float = 0.0
    upper: Optional[float] = None
    objective: float = 0.0

    def expr(self, coeff: float = 1.0) -> LinExpr:
        """The expression ``coeff * self``."""
        return LinExpr.term(self.index, coeff)


@dataclass
class Constraint:
    """A sparse constraint row ``sum(coeffs * x[indices]) sense rhs``."""

    name: str
    indices: Sequence[int]
    coeffs: Sequence[float]
    sense: Sense
    rhs: float

    def activity(self, values) -> float:
        return sum(c * float(values[i]) for i, c in zip(self.indices, self.coeffs))

    def satisfied(self, values, tol: float = 1e-6) -> bool:
        act = self.activity(values)
        if self.sense is Sense.LE:
            return act <= self.rhs + tol
        if self.sense is Sense.GE:
            return act >= self.rhs - tol
        return abs(act - self.rhs) <= tol


@dataclass
class LinearProgram:
    """A minimization LP over continuous bounded variables."""

    name: str = "lp"
    variables: List[Variable] = field(default_factory=list)
    constraints: List[Constraint] = field(default_factory=list)
    _names: Dict[str, int] = field(default_factory=dict)

    # -- variables ---------------------------------------------------------

    def var(
        self,
        name: str,
        lower: float = 0.0,
        upper: Optional[float] = None,
        obj: float = 0.0,
    ) -> Variable:
        """Add a variable and return its handle.

        Names must be unique; they exist for debugging and solution lookup.
        """
        if name in self._names:
            raise ValueError(f"duplicate variable name: {name!r}")
        if upper is not None and upper < lower:
            raise ValueError(f"variable {name!r}: upper {upper} < lower {lower}")
        v = Variable(index=len(self.variables), name=name, lower=lower, upper=upper, objective=obj)
        self.variables.append(v)
        self._names[name] = v.index
        return v

    def var_block(
        self,
        prefix: str,
        count: int,
        lower: float = 0.0,
        upper: Optional[float] = None,
        obj: float = 0.0,
    ) -> range:
        """Add ``count`` homogeneous variables named ``prefix[j]``; return their index range.

        The bulk path for MC-PERF's store/create/covered blocks.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        start = len(self.variables)
        for j in range(count):
            name = f"{prefix}[{j}]"
            if name in self._names:
                raise ValueError(f"duplicate variable name: {name!r}")
            v = Variable(index=start + j, name=name, lower=lower, upper=upper, objective=obj)
            self.variables.append(v)
            self._names[name] = v.index
        return range(start, start + count)

    def variable_by_name(self, name: str) -> Variable:
        return self.variables[self._names[name]]

    def set_objective(self, index: int, coeff: float) -> None:
        self.variables[index].objective = float(coeff)

    def add_objective(self, index: int, coeff: float) -> None:
        self.variables[index].objective += float(coeff)

    def set_bounds(self, index: int, lower: float = 0.0, upper: Optional[float] = None) -> None:
        if upper is not None and upper < lower:
            raise ValueError(f"variable {index}: upper {upper} < lower {lower}")
        v = self.variables[index]
        v.lower = lower
        v.upper = upper

    def fix(self, index: int, value: float) -> None:
        """Fix a variable to a constant (used for Know/Hist/React fixings)."""
        self.set_bounds(index, value, value)

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    # -- constraints -------------------------------------------------------

    def add(self, spec: ConstraintSpec, name: str = "") -> Constraint:
        """Add a constraint produced by comparing :class:`LinExpr` objects."""
        if not isinstance(spec, ConstraintSpec):
            raise TypeError(
                "add() expects a comparison of LinExpr objects, e.g. lp.add(x <= 1)"
            )
        indices = list(spec.expr.terms.keys())
        coeffs = [spec.expr.terms[i] for i in indices]
        return self.add_row(indices, coeffs, spec.sense, spec.rhs, name=name)

    def add_row(
        self,
        indices: Sequence[int],
        coeffs: Sequence[float],
        sense: "Sense | str",
        rhs: float,
        name: str = "",
    ) -> Constraint:
        """Add a sparse constraint row directly (fast path)."""
        if len(indices) != len(coeffs):
            raise ValueError("indices and coeffs must have the same length")
        nvar = len(self.variables)
        for i in indices:
            if not 0 <= i < nvar:
                raise IndexError(f"constraint references unknown variable index {i}")
        con = Constraint(
            name=name or f"c{len(self.constraints)}",
            indices=list(indices),
            coeffs=[float(c) for c in coeffs],
            sense=Sense.parse(sense),
            rhs=float(rhs),
        )
        self.constraints.append(con)
        return con

    # -- assembly ----------------------------------------------------------

    def to_arrays(self):
        """Assemble ``(c, A_ub, b_ub, A_eq, b_eq, bounds)`` as scipy-ready data.

        ``A_ub``/``A_eq`` are returned as ``scipy.sparse.csr_matrix`` (or None
        when there are no rows of that kind).  ``>=`` rows are negated into
        ``<=`` form.
        """
        import numpy as np
        from scipy import sparse

        n = len(self.variables)
        c = np.array([v.objective for v in self.variables], dtype=float)
        bounds = [(v.lower, v.upper) for v in self.variables]

        ub_rows, eq_rows = [], []
        for con in self.constraints:
            if con.sense is Sense.EQ:
                eq_rows.append(con)
            else:
                ub_rows.append(con)

        def build(rows, flip_ge: bool):
            if not rows:
                return None, None
            data, indices, indptr, rhs = [], [], [0], []
            for con in rows:
                flip = flip_ge and con.sense is Sense.GE
                for i, coeff in zip(con.indices, con.coeffs):
                    indices.append(i)
                    data.append(-coeff if flip else coeff)
                indptr.append(len(data))
                rhs.append(-con.rhs if flip else con.rhs)
            mat = sparse.csr_matrix(
                (np.array(data, dtype=float), np.array(indices), np.array(indptr)),
                shape=(len(rows), n),
            )
            return mat, np.array(rhs, dtype=float)

        a_ub, b_ub = build(ub_rows, flip_ge=True)
        a_eq, b_eq = build(eq_rows, flip_ge=False)
        return c, a_ub, b_ub, a_eq, b_eq, bounds

    # -- solving -----------------------------------------------------------

    def solve(self, backend: str = "auto", **kwargs) -> LPSolution:
        """Solve the LP with the chosen backend.

        ``"scipy"`` uses scipy/HiGHS, ``"simplex"`` the pure-Python
        fallback.  ``"auto"`` (default) tries scipy and falls back to the
        simplex — with a warning — when scipy is missing or its solve
        raises, so bounds still compute on scipy-less installs.
        """
        if backend == "auto":
            try:
                from repro.lp.scipy_backend import solve_with_scipy

                return solve_with_scipy(self, **kwargs)
            except Exception as exc:  # ImportError or a solver crash
                import warnings

                from repro.lp.simplex import solve_with_simplex

                warnings.warn(
                    f"scipy LP backend unavailable ({exc!r}); falling back to "
                    "the pure-Python simplex (slow for large models)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return solve_with_simplex(self)
        if backend == "scipy":
            from repro.lp.scipy_backend import solve_with_scipy

            return solve_with_scipy(self, **kwargs)
        if backend == "simplex":
            from repro.lp.simplex import solve_with_simplex

            return solve_with_simplex(self, **kwargs)
        raise ValueError(f"unknown LP backend: {backend!r}")

    def __repr__(self) -> str:
        return (
            f"LinearProgram(name={self.name!r}, vars={len(self.variables)}, "
            f"constraints={len(self.constraints)})"
        )
