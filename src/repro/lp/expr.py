"""Sparse linear expressions.

A :class:`LinExpr` is an immutable-ish mapping from variable index to
coefficient, plus a constant term.  It supports the arithmetic needed to
write constraints naturally::

    expr = 2 * x + y - 3        # x, y are LinExpr terms from LinearProgram.var
    model.add(expr <= 10, name="cap")

Expressions are deliberately lightweight: the MC-PERF formulation builds most
of its constraints through the fast array interface in
:class:`repro.lp.model.LinearProgram`, and uses ``LinExpr`` for the smaller,
structurally interesting constraints (QoS rows, storage/replica coupling).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple, Union

Number = Union[int, float]


class LinExpr:
    """A sparse linear expression ``sum(coeff[j] * x_j) + constant``.

    Parameters
    ----------
    terms:
        Mapping from variable index to coefficient.  Zero coefficients are
        dropped.
    constant:
        Additive constant term.
    """

    __slots__ = ("terms", "constant")

    def __init__(self, terms: Mapping[int, float] | None = None, constant: float = 0.0):
        cleaned: Dict[int, float] = {}
        if terms:
            for idx, coeff in terms.items():
                if coeff != 0.0:
                    cleaned[int(idx)] = float(coeff)
        self.terms: Dict[int, float] = cleaned
        self.constant: float = float(constant)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def term(index: int, coeff: float = 1.0) -> "LinExpr":
        """A single-variable expression ``coeff * x_index``."""
        return LinExpr({index: coeff})

    @staticmethod
    def sum_of(pairs: Iterable[Tuple[int, float]]) -> "LinExpr":
        """Build an expression from ``(index, coeff)`` pairs, merging duplicates."""
        terms: Dict[int, float] = {}
        for idx, coeff in pairs:
            terms[idx] = terms.get(idx, 0.0) + coeff
        return LinExpr(terms)

    # -- arithmetic --------------------------------------------------------

    def copy(self) -> "LinExpr":
        out = LinExpr.__new__(LinExpr)
        out.terms = dict(self.terms)
        out.constant = self.constant
        return out

    def __add__(self, other: Union["LinExpr", Number]) -> "LinExpr":
        out = self.copy()
        if isinstance(other, LinExpr):
            for idx, coeff in other.terms.items():
                new = out.terms.get(idx, 0.0) + coeff
                if new == 0.0:
                    out.terms.pop(idx, None)
                else:
                    out.terms[idx] = new
            out.constant += other.constant
        else:
            out.constant += float(other)
        return out

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({idx: -c for idx, c in self.terms.items()}, -self.constant)

    def __sub__(self, other: Union["LinExpr", Number]) -> "LinExpr":
        if isinstance(other, LinExpr):
            return self + (-other)
        return self + (-float(other))

    def __rsub__(self, other: Number) -> "LinExpr":
        return (-self) + float(other)

    def __mul__(self, factor: Number) -> "LinExpr":
        factor = float(factor)
        if factor == 0.0:
            return LinExpr()
        return LinExpr(
            {idx: c * factor for idx, c in self.terms.items()}, self.constant * factor
        )

    __rmul__ = __mul__

    def __truediv__(self, divisor: Number) -> "LinExpr":
        return self * (1.0 / float(divisor))

    # -- comparisons build constraint triples ------------------------------
    # A comparison yields (expr_without_constant, sense, rhs) consumed by
    # LinearProgram.add().

    def __le__(self, rhs: Union["LinExpr", Number]):
        return _normalize(self, rhs, "<=")

    def __ge__(self, rhs: Union["LinExpr", Number]):
        return _normalize(self, rhs, ">=")

    def __eq__(self, rhs):  # type: ignore[override]
        if isinstance(rhs, (LinExpr, int, float)):
            return _normalize(self, rhs, "==")
        return NotImplemented

    def __hash__(self):  # LinExpr is used in dict-free contexts only
        return id(self)

    # -- evaluation --------------------------------------------------------

    def value(self, assignment) -> float:
        """Evaluate the expression against ``assignment`` (indexable by var index)."""
        total = self.constant
        for idx, coeff in self.terms.items():
            total += coeff * float(assignment[idx])
        return total

    def __repr__(self) -> str:
        parts = [f"{c:+g}*x{i}" for i, c in sorted(self.terms.items())]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"


class ConstraintSpec:
    """The result of comparing a :class:`LinExpr` — a pending constraint.

    Holds the left-hand side with the constant folded into ``rhs``.
    """

    __slots__ = ("expr", "sense", "rhs")

    def __init__(self, expr: LinExpr, sense: str, rhs: float):
        self.expr = expr
        self.sense = sense
        self.rhs = rhs

    def __repr__(self) -> str:
        return f"ConstraintSpec({self.expr!r} {self.sense} {self.rhs:g})"


def _normalize(lhs: LinExpr, rhs: Union[LinExpr, Number], sense: str) -> ConstraintSpec:
    if isinstance(rhs, LinExpr):
        diff = lhs - rhs
    else:
        diff = lhs - float(rhs)
    constant = diff.constant
    diff.constant = 0.0
    return ConstraintSpec(diff, sense, -constant)
