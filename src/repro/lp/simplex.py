"""Pure-Python two-phase dense simplex.

This backend exists for two reasons:

1. **Differential testing** — tests solve small instances with both this
   solver and the scipy/HiGHS backend and require matching optima, guarding
   against mis-assembled constraint matrices.
2. **Portability** — environments without scipy can still solve toy models.

It is a textbook tableau implementation with Bland's anti-cycling rule, and is
only intended for problems with at most a few hundred variables; the MC-PERF
driver always uses the scipy backend.

Problem form solved::

    minimize    c^T x
    subject to  A_ub x <= b_ub
                A_eq x == b_eq
                lower <= x <= upper  (upper may be None = +inf)

Bounds are normalized away: each variable is shifted so its lower bound is 0,
and finite upper bounds become additional ``<=`` rows.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lp.solution import LPSolution, SolveStatus

_EPS = 1e-9


class SimplexError(RuntimeError):
    """Raised on internal simplex failures (cycling beyond the safety cap)."""


def solve_with_simplex(model, max_iterations: int = 100_000) -> LPSolution:
    """Solve a :class:`repro.lp.model.LinearProgram` with the fallback simplex."""
    from repro.lp.model import Sense

    nvar = model.num_variables
    lowers = [v.lower for v in model.variables]
    uppers = [v.upper for v in model.variables]
    cost = [v.objective for v in model.variables]

    # Shift x = lower + y so every y >= 0; record the constant objective shift.
    obj_shift = sum(c * l for c, l in zip(cost, lowers))

    rows: List[List[float]] = []
    rhs: List[float] = []
    senses: List[str] = []

    for con in model.constraints:
        row = [0.0] * nvar
        shift = 0.0
        for idx, coeff in zip(con.indices, con.coeffs):
            row[idx] += coeff
            shift += coeff * lowers[idx]
        rows.append(row)
        rhs.append(con.rhs - shift)
        senses.append(con.sense.value if isinstance(con.sense, Sense) else str(con.sense))

    for j, (lo, up) in enumerate(zip(lowers, uppers)):
        if up is not None:
            row = [0.0] * nvar
            row[j] = 1.0
            rows.append(row)
            rhs.append(up - lo)
            senses.append("<=")

    y = _two_phase(rows, rhs, senses, cost, nvar, max_iterations)
    if y is None:
        return LPSolution(status=SolveStatus.INFEASIBLE, backend="simplex")
    if y == "unbounded":
        return LPSolution(status=SolveStatus.UNBOUNDED, backend="simplex")

    values = [lo + yj for lo, yj in zip(lowers, y)]
    objective = obj_shift + sum(c * yj for c, yj in zip(cost, y))
    return LPSolution(
        status=SolveStatus.OPTIMAL,
        objective=objective,
        values=values,
        backend="simplex",
    )


def _two_phase(rows, rhs, senses, cost, nvar, max_iterations):
    """Run two-phase simplex; return the y vector, None (infeasible) or 'unbounded'."""
    m = len(rows)
    # Normalize to equalities with slack/surplus, ensuring rhs >= 0.
    # Column layout: [y (nvar)] [slacks (one per <=/>= row)] [artificials].
    slack_cols: List[Optional[int]] = []
    num_slacks = sum(1 for s in senses if s in ("<=", ">="))
    total = nvar + num_slacks
    table: List[List[float]] = []
    basis: List[int] = []
    art_cols: List[int] = []

    slack_at = 0
    for i in range(m):
        row = list(rows[i]) + [0.0] * num_slacks
        b = rhs[i]
        sense = senses[i]
        if sense == "<=":
            row[nvar + slack_at] = 1.0
            slack_cols.append(nvar + slack_at)
            slack_at += 1
        elif sense == ">=":
            row[nvar + slack_at] = -1.0
            slack_cols.append(nvar + slack_at)
            slack_at += 1
        elif sense == "==":
            slack_cols.append(None)
        else:
            raise ValueError(f"bad sense {sense!r}")
        if b < 0:
            row = [-c for c in row]
            b = -b
        table.append(row + [b])

    # Choose initial basis: positive slack if available, else artificial.
    for i in range(m):
        sc = slack_cols[i]
        if sc is not None and table[i][sc] == 1.0:
            basis.append(sc)
        else:
            col = total + len(art_cols)
            art_cols.append(col)
            basis.append(col)

    width = total + len(art_cols)
    art_offset = total
    for i, row in enumerate(table):
        b = row.pop()
        row.extend([0.0] * len(art_cols))
        if basis[i] >= art_offset:
            row[basis[i]] = 1.0
        row.append(b)

    if art_cols:
        phase1 = [0.0] * width + [0.0]
        for col in art_cols:
            phase1[col] = 1.0
        _price_out(phase1, table, basis)
        status = _iterate(table, basis, phase1, width, max_iterations)
        if status == "unbounded":
            raise SimplexError("phase-1 objective unbounded (internal error)")
        if phase1[-1] < -_EPS:  # reduced objective value is -(artificial sum)
            return None
        _drive_out_artificials(table, basis, art_offset, width)

    phase2 = [0.0] * width + [0.0]
    for j in range(nvar):
        phase2[j] = cost[j]
    # Zero objective on artificial columns; forbid them from re-entering by
    # leaving their reduced costs at 0 and skipping them in pricing.
    _price_out(phase2, table, basis)
    status = _iterate(table, basis, phase2, total, max_iterations)
    if status == "unbounded":
        return "unbounded"

    y = [0.0] * nvar
    for i, bcol in enumerate(basis):
        if bcol < nvar:
            y[bcol] = table[i][-1]
    return y


def _price_out(obj_row, table, basis):
    """Make the objective row consistent with the current basis."""
    for i, bcol in enumerate(basis):
        coeff = obj_row[bcol]
        if abs(coeff) > _EPS:
            row = table[i]
            for j in range(len(obj_row)):
                obj_row[j] -= coeff * row[j]


def _iterate(table, basis, obj_row, price_limit, max_iterations):
    """Primal simplex iterations with Bland's rule over columns < price_limit."""
    m = len(table)
    for _ in range(max_iterations):
        enter = -1
        for j in range(price_limit):
            if obj_row[j] < -_EPS:
                enter = j
                break
        if enter < 0:
            return "optimal"
        # Ratio test (Bland: smallest basis index breaks ties).
        leave = -1
        best = float("inf")
        for i in range(m):
            a = table[i][enter]
            if a > _EPS:
                ratio = table[i][-1] / a
                if ratio < best - _EPS or (
                    abs(ratio - best) <= _EPS and (leave < 0 or basis[i] < basis[leave])
                ):
                    best = ratio
                    leave = i
        if leave < 0:
            return "unbounded"
        _pivot(table, basis, obj_row, leave, enter)
    raise SimplexError("simplex iteration limit exceeded")


def _pivot(table, basis, obj_row, leave, enter):
    prow = table[leave]
    piv = prow[enter]
    inv = 1.0 / piv
    for j in range(len(prow)):
        prow[j] *= inv
    for i, row in enumerate(table):
        if i == leave:
            continue
        factor = row[enter]
        if abs(factor) > _EPS:
            for j in range(len(row)):
                row[j] -= factor * prow[j]
    factor = obj_row[enter]
    if abs(factor) > _EPS:
        for j in range(len(obj_row)):
            obj_row[j] -= factor * prow[j]
    basis[leave] = enter


def _drive_out_artificials(table, basis, art_offset, width):
    """Pivot artificial variables out of the basis where possible."""
    m = len(table)
    for i in range(m):
        if basis[i] >= art_offset:
            row = table[i]
            pivot_col = -1
            for j in range(art_offset):
                if abs(row[j]) > _EPS:
                    pivot_col = j
                    break
            if pivot_col >= 0:
                dummy = [0.0] * (width + 1)
                _pivot(table, basis, dummy, i, pivot_col)
            # Otherwise the row is redundant (all-zero over real columns);
            # the artificial stays basic at value 0, which is harmless.
