"""Scipy-free simplex backend — now the revised simplex (ISSUE 9).

This backend exists for two reasons:

1. **Differential testing** — tests solve small instances with both this
   solver and the scipy/HiGHS backend and require matching optima, guarding
   against mis-assembled constraint matrices.
2. **Portability** — environments without scipy can still solve toy models.

Historically it was a dense two-phase tableau; it is now a thin wrapper
over :mod:`repro.lp.revised` — a revised simplex over sparse columns with
product-form basis updates.  The pivot logic shares *nothing* with
scipy/HiGHS (only the LU factorization uses ``scipy.sparse.linalg.splu``
when scipy happens to be importable; a numpy dense-inverse kernel covers
scipy-less installs), so the differential-testing value is preserved while
the same engine powers warm-started re-solves for every backend.

Problem form solved::

    minimize    c^T x
    subject to  A_ub x <= b_ub
                A_eq x == b_eq
                lower <= x <= upper  (upper may be None = +inf)

Unlike the old tableau, bounds are handled natively (no shifting, no extra
rows) and the solution carries duals and a reusable
:class:`~repro.lp.basis.Basis` handle.
"""

from __future__ import annotations

from typing import Optional

# Re-exported: the historical public names of this module.
from repro.lp.revised import SimplexError, solve_revised
from repro.lp.solution import LPSolution

__all__ = ["SimplexError", "solve_with_simplex"]


def solve_with_simplex(
    model,
    max_iterations: int = 100_000,
    warm_start: Optional[object] = None,
) -> LPSolution:
    """Solve a :class:`repro.lp.model.LinearProgram` with the fallback simplex.

    ``warm_start`` may be a :class:`~repro.lp.basis.Basis` or an
    :class:`~repro.lp.solution.LPSolution` carrying one; an unusable basis
    degrades to a cold solve here (the registry's warm dispatch does its
    own degrading — this path is for direct ``backend="simplex"`` callers).
    """
    basis = _coerce_basis(model, warm_start)
    if basis is not None:
        from repro.lp.revised import _SingularBasis

        try:
            return solve_revised(model, warm_basis=basis, max_iterations=max_iterations)
        except _SingularBasis:
            pass  # fall through to the cold solve
    return solve_revised(model, max_iterations=max_iterations)


def _coerce_basis(model, warm_start):
    """Extract a shape-compatible Basis from a warm-start argument, or None."""
    if warm_start is None:
        return None
    from repro.lp.basis import Basis

    basis = warm_start if isinstance(warm_start, Basis) else getattr(warm_start, "basis", None)
    if isinstance(basis, Basis) and basis.matches(
        model.num_variables, model.num_constraints
    ):
        return basis
    return None
