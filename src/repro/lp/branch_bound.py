"""Exact 0/1 integer solving by LP-based branch and bound.

The paper (§5): "an IP problem can be solved exactly with an IP solver,
resulting in a tight lower bound.  However, such an approach is feasible
only at a very small scale."  This module provides that exact mode for
small-to-medium MC-PERF instances: best-first branch and bound over a
declared set of binary variables, with the scipy/HiGHS LP relaxation as the
node bound.

Designed for correctness and observability rather than raw speed — node
and time limits make partial runs useful (they still return a valid lower
bound and, usually, an incumbent).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.lp.model import LinearProgram
from repro.lp.solution import LPSolution, SolveStatus

_INT_TOL = 1e-6


@dataclass
class IPResult:
    """Outcome of a branch-and-bound run.

    Attributes
    ----------
    status:
        ``"optimal"`` — incumbent proven optimal; ``"infeasible"`` — no
        integral solution exists; ``"node-limit"`` / ``"time-limit"`` —
        search truncated (``best_bound`` still lower-bounds the optimum and
        ``incumbent`` upper-bounds it, when present).
    objective:
        Incumbent objective (None without an incumbent).
    values:
        Incumbent variable values.
    best_bound:
        Proven lower bound on the integral optimum.
    nodes:
        LP relaxations solved.
    """

    status: str
    objective: Optional[float] = None
    values: Optional[np.ndarray] = None
    best_bound: float = float("-inf")
    nodes: int = 0

    @property
    def gap(self) -> Optional[float]:
        if self.objective is None or self.best_bound == float("-inf"):
            return None
        if abs(self.objective) < 1e-12:
            return 0.0 if abs(self.objective - self.best_bound) < 1e-9 else None
        return (self.objective - self.best_bound) / abs(self.objective)


def solve_integer(
    model: LinearProgram,
    integer_vars: Sequence[int],
    node_limit: int = 5_000,
    time_limit_s: Optional[float] = None,
    incumbent: Optional[Tuple[float, np.ndarray]] = None,
    tol: float = 1e-9,
) -> IPResult:
    """Minimize the model with the given variables restricted to {0, 1}.

    Parameters
    ----------
    model:
        The LP; bounds of ``integer_vars`` must lie within [0, 1].
    integer_vars:
        Indices required to be binary at the optimum.
    incumbent:
        Optional ``(objective, values)`` warm start (e.g. a rounded
        solution) used to prune from the first node; ``values`` may be
        None when only the objective is known — the result then reports
        that objective without a value vector unless the search improves
        on it.
    """
    integer_vars = [int(j) for j in integer_vars]
    for j in integer_vars:
        v = model.variables[j]
        if v.lower < -tol or (v.upper is not None and v.upper > 1 + tol):
            raise ValueError(f"integer variable {v.name} must be within [0, 1]")

    deadline = time.perf_counter() + time_limit_s if time_limit_s else None
    best_obj: Optional[float] = None
    best_values: Optional[np.ndarray] = None
    if incumbent is not None:
        best_obj = float(incumbent[0])
        if incumbent[1] is not None:
            best_values = np.asarray(incumbent[1], dtype=float)

    # A node is a set of variable fixings {index: 0 or 1}.
    counter = itertools.count()  # FIFO tie-break for equal bounds
    root_solution = _solve_with_fixings(model, {})
    nodes = 1
    if root_solution.status is SolveStatus.INFEASIBLE:
        return IPResult(status="infeasible", nodes=nodes)
    if root_solution.status is not SolveStatus.OPTIMAL:
        raise RuntimeError(f"root LP failed: {root_solution.message}")

    heap: List[Tuple[float, int, Dict[int, float], LPSolution]] = []
    heapq.heappush(heap, (root_solution.objective, next(counter), {}, root_solution))
    proven_bound = root_solution.objective
    status = "optimal"

    while heap:
        bound, _tie, fixings, solution = heapq.heappop(heap)
        proven_bound = bound
        if best_obj is not None and bound >= best_obj - tol:
            # Everything remaining is no better than the incumbent.
            proven_bound = best_obj
            break
        if nodes >= node_limit:
            status = "node-limit"
            break
        if deadline is not None and time.perf_counter() > deadline:
            status = "time-limit"
            break

        branch_var = _most_fractional(solution.values, integer_vars)
        if branch_var is None:
            # Integral solution: candidate incumbent.
            if best_obj is None or solution.objective < best_obj - tol:
                best_obj = solution.objective
                best_values = np.asarray(solution.values, dtype=float)
            continue

        for value in (0.0, 1.0):
            child_fix = dict(fixings)
            child_fix[branch_var] = value
            child = _solve_with_fixings(model, child_fix, warm=solution)
            nodes += 1
            if child.status is not SolveStatus.OPTIMAL:
                continue  # infeasible branch (or numerically dead)
            if best_obj is not None and child.objective >= best_obj - tol:
                continue  # pruned by bound
            heapq.heappush(
                heap, (child.objective, next(counter), child_fix, child)
            )

    if not heap and status == "optimal":
        proven_bound = best_obj if best_obj is not None else proven_bound

    if best_obj is None:
        if status == "optimal":
            return IPResult(status="infeasible", nodes=nodes, best_bound=proven_bound)
        return IPResult(status=status, nodes=nodes, best_bound=proven_bound)
    return IPResult(
        status=status,
        objective=best_obj,
        values=best_values,
        best_bound=min(proven_bound, best_obj),
        nodes=nodes,
    )


def _solve_with_fixings(
    model: LinearProgram,
    fixings: Dict[int, float],
    warm: Optional[LPSolution] = None,
) -> LPSolution:
    """Solve the LP with temporary variable fixings (bounds restored after).

    Fixings go through the model's patch API so the cached solver arrays
    stay in sync and every node re-solve is assembly-free.  ``warm`` is the
    parent node's relaxation: a child differs from its parent by one
    bound fixing, so the parent basis stays dual feasible and the dual
    simplex usually re-certifies it in a few pivots.
    """
    saved = []
    try:
        for j, value in fixings.items():
            v = model.variables[j]
            saved.append((j, v.lower, v.upper))
            model.fix_var(j, value)
        return model.solve(backend="scipy", warm_start=warm)
    finally:
        for j, lower, upper in saved:
            model.set_bound(j, lower, upper)


def _most_fractional(values, integer_vars: Sequence[int]) -> Optional[int]:
    """The integer variable farthest from integrality (None if all integral)."""
    best = None
    best_frac = _INT_TOL
    for j in integer_vars:
        x = float(values[j])
        frac = min(x - np.floor(x), np.ceil(x) - x)
        if frac > best_frac:
            best_frac = frac
            best = j
    return best
