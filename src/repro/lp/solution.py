"""Solved-LP result object."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence


class SolveStatus(str, enum.Enum):
    """Outcome of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass
class LPSolution:
    """Values and metadata from a solver backend.

    Attributes
    ----------
    status:
        Terminal status of the solve.
    objective:
        Objective value at the returned point (only meaningful when
        :attr:`status` is :data:`SolveStatus.OPTIMAL`).
    values:
        Variable values in model index order (numpy array or list).
    backend:
        Which backend produced the solution (``"scipy"`` / ``"simplex"``).
    message:
        Backend-specific diagnostic text.
    """

    status: SolveStatus
    objective: float = float("nan")
    values: Sequence[float] = field(default_factory=list)
    backend: str = ""
    message: str = ""
    #: Per-constraint dual values (model row order; d objective / d rhs).
    #: None when the backend does not provide duals.
    duals: Optional[Sequence[float]] = None
    #: Opaque simplex basis handle (:class:`repro.lp.basis.Basis`) for
    #: warm-started re-solves; None when the backend exposes no basis
    #: (scipy/HiGHS) or the payload was produced before warm starts existed.
    basis: Optional[object] = None
    _name_index: Optional[Dict[str, int]] = None

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    def value(self, index: int) -> float:
        return float(self.values[index])

    def by_name(self, model, name: str) -> float:
        """Look a value up by variable name (convenience for tests/examples)."""
        return float(self.values[model.variable_by_name(name).index])

    def require_optimal(self) -> "LPSolution":
        """Raise if the solve did not reach optimality; return self otherwise."""
        if not self.is_optimal:
            raise RuntimeError(
                f"LP solve failed: status={self.status.value} message={self.message!r}"
            )
        return self

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe encoding for the runner's cache/artifact layer."""
        return {
            "status": self.status.value,
            "objective": float(self.objective),
            "values": [float(v) for v in self.values],
            "backend": self.backend,
            "message": self.message,
            "duals": None if self.duals is None else [float(d) for d in self.duals],
            "basis": None if self.basis is None else self.basis.to_dict(),
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "LPSolution":
        """Inverse of :meth:`to_dict`.

        The basis handle is decoded tolerantly: an absent, stale or
        corrupted payload yields ``basis=None``, which downstream means
        "cold solve" — a cache hit must never error over its warm-start
        metadata.
        """
        from repro.lp.basis import Basis

        return LPSolution(
            status=SolveStatus(payload["status"]),
            objective=float(payload["objective"]),
            values=list(payload["values"]),
            backend=str(payload.get("backend", "")),
            message=str(payload.get("message", "")),
            duals=None if payload.get("duals") is None else list(payload["duals"]),
            basis=Basis.from_dict(payload.get("basis")),
        )

    def __repr__(self) -> str:
        obj = f"{self.objective:.6g}" if self.is_optimal else "n/a"
        return (
            f"LPSolution(status={self.status.value}, objective={obj}, "
            f"nvars={len(self.values)}, backend={self.backend!r})"
        )
