"""Opaque simplex basis handle for warm-started re-solves.

A simplex basis over the standard form ``A x + s = b`` (one slack per
constraint row) is fully described by a status per column — structural
variables first, then the row slacks:

* ``BASIC`` — the column is in the basis; its value comes from
  ``B^-1 (b - A_N x_N)``.
* ``AT_LOWER`` / ``AT_UPPER`` — nonbasic at the named bound.
* ``NB_FREE`` — nonbasic free variable, held at zero.

The handle is deliberately *opaque* to every caller: ``lp/branch_bound``,
``core/bounds`` sweeps, the decomposition master and the placement service
only move it from one :class:`~repro.lp.solution.LPSolution` to the next
``solve(warm_start=...)`` call.  Validation happens at the point of use
(:func:`repro.lp.revised.solve_revised`): a handle whose shape no longer
matches the model — stale cache entries, structurally edited models —
degrades to a cold solve instead of erroring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

#: Column status codes (int8 in the statuses array).
BASIC = 0
AT_LOWER = 1
AT_UPPER = 2
NB_FREE = 3

_VALID_STATUSES = frozenset((BASIC, AT_LOWER, AT_UPPER, NB_FREE))


@dataclass(frozen=True)
class Basis:
    """One simplex basis: per-column statuses plus the shape it belongs to.

    ``statuses`` has ``nvars + nrows`` entries (structural columns, then one
    slack per row).  The handle is immutable and picklable — it travels
    through the runner's process pool and the service's in-memory caches.
    """

    statuses: np.ndarray  # int8, length nvars + nrows
    nvars: int
    nrows: int

    def __post_init__(self) -> None:
        arr = np.asarray(self.statuses, dtype=np.int8)
        object.__setattr__(self, "statuses", arr)

    def matches(self, nvars: int, nrows: int) -> bool:
        """Does this basis describe a model of the given shape?"""
        return (
            self.nvars == nvars
            and self.nrows == nrows
            and len(self.statuses) == nvars + nrows
        )

    def is_wellformed(self) -> bool:
        """Structurally valid: right length, known codes, exactly m basics."""
        if len(self.statuses) != self.nvars + self.nrows:
            return False
        if not np.isin(self.statuses, list(_VALID_STATUSES)).all():
            return False
        return int(np.count_nonzero(self.statuses == BASIC)) == self.nrows

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe encoding (round-tripped by ``LPSolution.to_dict``)."""
        return {
            "statuses": [int(s) for s in self.statuses],
            "nvars": int(self.nvars),
            "nrows": int(self.nrows),
        }

    @staticmethod
    def from_dict(payload: object) -> Optional["Basis"]:
        """Inverse of :meth:`to_dict`; returns None on any malformed payload.

        Tolerant by design: a stale or corrupted basis in a cached artifact
        must degrade the next solve to a cold start, never crash the load.
        """
        if not isinstance(payload, dict):
            return None
        try:
            basis = Basis(
                statuses=np.asarray(payload["statuses"], dtype=np.int8),
                nvars=int(payload["nvars"]),
                nrows=int(payload["nrows"]),
            )
        except (KeyError, TypeError, ValueError, OverflowError):
            return None
        return basis if basis.is_wellformed() else None

    def __repr__(self) -> str:
        return f"Basis(nvars={self.nvars}, nrows={self.nrows})"
