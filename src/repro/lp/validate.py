"""Independent feasibility checking for LP/IP solutions.

Used by tests (to validate both backends against the model), and by the
rounding algorithm's self-checks (a rounded MC-PERF solution must satisfy the
original integer model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.lp.model import LinearProgram, Sense


@dataclass
class Violation:
    """One violated constraint or bound."""

    kind: str  # "constraint" | "lower" | "upper"
    name: str
    amount: float

    def __str__(self) -> str:
        return f"{self.kind} {self.name}: violated by {self.amount:.3g}"


@dataclass
class ValidationReport:
    """Outcome of checking a point against a model."""

    feasible: bool
    objective: float
    violations: List[Violation] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.feasible


def check_solution(model: LinearProgram, values, tol: float = 1e-6) -> ValidationReport:
    """Check ``values`` against every bound and constraint of ``model``.

    Returns a :class:`ValidationReport`; ``report.feasible`` is True when all
    bounds and constraints hold within ``tol``.
    """
    if len(values) != model.num_variables:
        raise ValueError(
            f"value vector has length {len(values)}, model has {model.num_variables} variables"
        )
    violations: List[Violation] = []

    for v in model.variables:
        x = float(values[v.index])
        if x < v.lower - tol:
            violations.append(Violation("lower", v.name, v.lower - x))
        if v.upper is not None and x > v.upper + tol:
            violations.append(Violation("upper", v.name, x - v.upper))

    for con in model.constraints:
        act = con.activity(values)
        if con.sense is Sense.LE and act > con.rhs + tol:
            violations.append(Violation("constraint", con.name, act - con.rhs))
        elif con.sense is Sense.GE and act < con.rhs - tol:
            violations.append(Violation("constraint", con.name, con.rhs - act))
        elif con.sense is Sense.EQ and abs(act - con.rhs) > tol:
            violations.append(Violation("constraint", con.name, abs(act - con.rhs)))

    objective = sum(v.objective * float(values[v.index]) for v in model.variables)
    return ValidationReport(feasible=not violations, objective=objective, violations=violations)
