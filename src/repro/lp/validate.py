"""Independent feasibility checking for LP/IP solutions (compatibility shim).

.. deprecated::
    The implementation moved to :mod:`repro.audit.certificates` so the
    audit subsystem is the one source of truth for "is this result
    trustworthy".  This module re-exports the historical names
    (:func:`check_solution`, :class:`ValidationReport`, :class:`Violation`)
    unchanged; existing imports keep working.  New code should import from
    :mod:`repro.audit` — see docs/AUDIT.md for the migration note.
"""

from __future__ import annotations

from repro.audit.certificates import ValidationReport, Violation, check_solution

__all__ = ["ValidationReport", "Violation", "check_solution"]
