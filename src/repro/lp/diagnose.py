"""Infeasibility diagnostics for assembled LPs.

When an MC-PERF relaxation comes back infeasible, "the class cannot meet
the goal" is true but unhelpful: *which* requirement broke it?  The rows
built by :mod:`repro.core.formulation` carry family-prefixed names
(``qos[...]``, ``sc[...]``, ``rc[...]``, ``cover[...]``, ``avg[...]``,
``route-one[...]``; auto-named ``c<n>`` rows are the store/create coupling
structure).  :func:`diagnose_infeasibility` relaxes one family at a time and
re-solves: a family whose removal restores feasibility is *binding* — the
conflict runs through it.

This is the classic deletion-filter step of IIS isolation, coarsened to
constraint families so the answer reads as "the replica constraint conflicts
with the QoS goal" instead of a list of 400 row names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.lp.model import LinearProgram
from repro.lp.solution import SolveStatus


def constraint_family(name: str) -> str:
    """The family prefix of a constraint name (text before the first ``[``).

    Auto-generated names (``c0``, ``c17``, ...) collapse to ``"coupling"`` —
    in MC-PERF models every unnamed row is store/create coupling structure.
    """
    prefix = name.split("[", 1)[0]
    if prefix.startswith("c") and prefix[1:].isdigit():
        return "coupling"
    return prefix or "coupling"


@dataclass
class InfeasibilityDiagnosis:
    """Which constraint families participate in an infeasibility.

    Attributes
    ----------
    binding:
        Families whose removal (alone) makes the model feasible — the
        conflict necessarily runs through each of them.
    families:
        Row count per family, for scale context in reports.
    isolated:
        False when no single family's removal restores feasibility (the
        conflict spans bound constraints or multiple families at once).
    """

    binding: List[str] = field(default_factory=list)
    families: Dict[str, int] = field(default_factory=dict)
    isolated: bool = True

    def render(self) -> str:
        if not self.families:
            return "no constraints to diagnose"
        if not self.binding:
            return (
                "no single constraint family is binding on its own "
                "(conflict spans variable bounds or several families)"
            )
        parts = [f"{name} ({self.families[name]} rows)" for name in self.binding]
        return "binding constraint families: " + ", ".join(parts)


def diagnose_infeasibility(
    model: LinearProgram, backend: str = "auto"
) -> InfeasibilityDiagnosis:
    """Find the constraint families a conflict runs through.

    Solves one relaxation per family present in ``model`` (families are few
    — this is a handful of extra LP solves, not per-row work).  Intended for
    models already known infeasible; on a feasible model every family comes
    back non-binding.
    """
    families: Dict[str, int] = {}
    for con in model.constraints:
        fam = constraint_family(con.name)
        families[fam] = families.get(fam, 0) + 1

    diagnosis = InfeasibilityDiagnosis(families=families)
    for fam in sorted(families):
        relaxed = LinearProgram(
            name=f"{model.name}/without-{fam}",
            variables=model.variables,
            constraints=[
                con for con in model.constraints if constraint_family(con.name) != fam
            ],
            _names=model._names,
        )
        solution = relaxed.solve(backend=backend)
        if solution.status is not SolveStatus.INFEASIBLE:
            diagnosis.binding.append(fam)
    diagnosis.isolated = bool(diagnosis.binding)
    return diagnosis
