"""Production LP backend built on ``scipy.optimize.linprog`` (HiGHS).

The paper solved its LP relaxations with CPLEX.  HiGHS is likewise an exact
(to tolerance) simplex/interior-point solver, so the computed lower bounds are
identical up to numerical tolerance — the substitution is documented in
DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.lp.solution import LPSolution, SolveStatus

_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.ERROR,  # iteration limit
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


def solve_with_scipy(model, method: str = "highs", **options) -> LPSolution:
    """Solve a :class:`repro.lp.model.LinearProgram` with scipy/HiGHS.

    Parameters
    ----------
    model:
        The LP to solve (minimization).
    method:
        scipy ``linprog`` method; ``"highs"`` picks the best HiGHS variant.
    options:
        Extra options forwarded to ``linprog`` (e.g. ``presolve=False``).
    """
    # Imported here (not at module top) so ``import repro.lp`` works on
    # scipy-less installs and the "auto" backend can catch the failure.
    from scipy.optimize import linprog

    c, a_ub, b_ub, a_eq, b_eq, bounds = model.to_arrays()
    if len(c) == 0:
        return LPSolution(
            status=SolveStatus.OPTIMAL, objective=0.0, values=np.zeros(0), backend="scipy"
        )
    result = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method=method,
        options=options or None,
    )
    status = _STATUS_MAP.get(result.status, SolveStatus.ERROR)
    values = result.x if result.x is not None else np.zeros(len(c))
    duals = _extract_duals(model, result) if status is SolveStatus.OPTIMAL else None
    return LPSolution(
        status=status,
        objective=float(result.fun) if result.fun is not None else float("nan"),
        values=np.asarray(values, dtype=float),
        backend="scipy",
        message=str(result.message),
        duals=duals,
    )


def _extract_duals(model, result) -> "np.ndarray | None":
    """Map HiGHS marginals back to model row order.

    ``to_arrays`` splits rows into inequality/equality groups (negating
    ``>=`` rows into ``<=`` form); the duals are re-interleaved here and
    sign-corrected so every entry means d objective / d rhs of the
    *original* row.
    """
    ineq = getattr(result, "ineqlin", None)
    eq = getattr(result, "eqlin", None)
    ineq_marg = getattr(ineq, "marginals", None) if ineq is not None else None
    eq_marg = getattr(eq, "marginals", None) if eq is not None else None
    # to_arrays() just ran, so the cache's row maps describe exactly the
    # matrices scipy saw; scatter each marginals group back to model row
    # order in one shot instead of walking the constraints.
    cache = model._arrays
    row_is_eq = cache.row_is_eq
    duals = np.zeros(cache.nrows)
    if row_is_eq.any():
        if eq_marg is None:
            return None
        duals[row_is_eq] = eq_marg
    if not row_is_eq.all():
        if ineq_marg is None:
            return None
        duals[~row_is_eq] = ineq_marg
    # A >= row was negated into <= form: rhs' = -rhs, so the sensitivity to
    # the original rhs flips sign.  scipy reports d fun / d b_ub with
    # marginals <= 0 for binding <= rows; after the GE flip, duals of >=
    # rows are >= 0 (more requirement costs more), matching the
    # shadow-price convention used by callers.
    if cache.row_flip.any():
        duals[cache.row_flip] = -duals[cache.row_flip]
    return duals
