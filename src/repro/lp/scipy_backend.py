"""Production LP backend built on ``scipy.optimize.linprog`` (HiGHS).

The paper solved its LP relaxations with CPLEX.  HiGHS is likewise an exact
(to tolerance) simplex/interior-point solver, so the computed lower bounds are
identical up to numerical tolerance — the substitution is documented in
DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.lp.solution import LPSolution, SolveStatus

_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.ERROR,  # iteration limit
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


def solve_with_scipy(model, method: str = "highs", **options) -> LPSolution:
    """Solve a :class:`repro.lp.model.LinearProgram` with scipy/HiGHS.

    Parameters
    ----------
    model:
        The LP to solve (minimization).
    method:
        scipy ``linprog`` method; ``"highs"`` picks the best HiGHS variant.
    options:
        Extra options forwarded to ``linprog`` (e.g. ``presolve=False``).
    """
    # Imported here (not at module top) so ``import repro.lp`` works on
    # scipy-less installs and the "auto" backend can catch the failure.
    from scipy.optimize import linprog

    c, a_ub, b_ub, a_eq, b_eq, bounds = model.to_arrays()
    if len(c) == 0:
        return LPSolution(
            status=SolveStatus.OPTIMAL, objective=0.0, values=np.zeros(0), backend="scipy"
        )
    result = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method=method,
        options=options or None,
    )
    status = _STATUS_MAP.get(result.status, SolveStatus.ERROR)
    values = result.x if result.x is not None else np.zeros(len(c))
    duals = _extract_duals(model, result) if status is SolveStatus.OPTIMAL else None
    return LPSolution(
        status=status,
        objective=float(result.fun) if result.fun is not None else float("nan"),
        values=np.asarray(values, dtype=float),
        backend="scipy",
        message=str(result.message),
        duals=duals,
    )


def _extract_duals(model, result) -> "np.ndarray | None":
    """Map HiGHS marginals back to model row order.

    ``to_arrays`` splits rows into inequality/equality groups (negating
    ``>=`` rows into ``<=`` form); the duals are re-interleaved here and
    sign-corrected so every entry means d objective / d rhs of the
    *original* row.
    """
    from repro.lp.model import Sense

    ineq = getattr(result, "ineqlin", None)
    eq = getattr(result, "eqlin", None)
    ineq_marg = getattr(ineq, "marginals", None) if ineq is not None else None
    eq_marg = getattr(eq, "marginals", None) if eq is not None else None
    duals = np.zeros(len(model.constraints))
    ub_at = 0
    eq_at = 0
    for row, con in enumerate(model.constraints):
        if con.sense is Sense.EQ:
            if eq_marg is None:
                return None
            duals[row] = float(eq_marg[eq_at])
            eq_at += 1
        else:
            if ineq_marg is None:
                return None
            value = float(ineq_marg[ub_at])
            ub_at += 1
            # A >= row was negated into <= form: rhs' = -rhs, so the
            # sensitivity to the original rhs flips sign.
            duals[row] = -value if con.sense is Sense.GE else value
    # scipy reports d fun / d b_ub with marginals <= 0 for binding <= rows;
    # after the GE flip, duals of >= rows are >= 0 (more requirement costs
    # more), matching the shadow-price convention used by callers.
    return duals
