"""Linear-programming substrate.

A small, self-contained LP modeling layer used by the MC-PERF formulation in
:mod:`repro.core`.  It provides:

* :class:`~repro.lp.expr.LinExpr` — sparse linear expressions with operator
  overloading, for ergonomic model building.
* :class:`~repro.lp.model.LinearProgram` — a named-variable LP model with both
  an expression-based and a fast array-based constraint interface.
* :class:`~repro.lp.solution.LPSolution` — solved values, objective and status.
* :func:`~repro.lp.scipy_backend.solve_with_scipy` — the production backend,
  built on ``scipy.optimize.linprog`` (HiGHS).
* :func:`~repro.lp.simplex.solve_with_simplex` — the scipy-free simplex used
  for differential testing and for environments without scipy; since ISSUE 9
  it is a revised simplex over sparse columns (:mod:`repro.lp.revised`) whose
  :class:`~repro.lp.basis.Basis` handles warm-start every backend's re-solves.
* :func:`~repro.audit.certificates.check_solution` — an independent
  feasibility checker used by tests and by the rounding algorithm
  (re-exported here; it lives in the audit subsystem).
* :func:`~repro.lp.diagnose.diagnose_infeasibility` — constraint-family
  deletion filter that names what an infeasibility runs through.

The paper used CPLEX; any exact LP solver produces the same optimum, so the
choice of backend does not affect the reproduced results (see DESIGN.md).
``LinearProgram.solve`` defaults to backend ``"auto"``: scipy/HiGHS when
available, the pure-Python simplex (with a warning) otherwise.
"""

from repro.lp.expr import LinExpr
from repro.lp.model import Constraint, LinearProgram, Sense, Variable
from repro.lp.solution import LPSolution, SolveStatus
from repro.lp.basis import Basis
from repro.lp.scipy_backend import solve_with_scipy
from repro.lp.simplex import SimplexError, solve_with_simplex
from repro.lp.branch_bound import IPResult, solve_integer
from repro.audit.certificates import ValidationReport, check_solution
from repro.lp.diagnose import InfeasibilityDiagnosis, diagnose_infeasibility

__all__ = [
    "LinExpr",
    "LinearProgram",
    "Variable",
    "Constraint",
    "Sense",
    "LPSolution",
    "SolveStatus",
    "Basis",
    "solve_with_scipy",
    "solve_with_simplex",
    "SimplexError",
    "check_solution",
    "ValidationReport",
    "IPResult",
    "solve_integer",
    "InfeasibilityDiagnosis",
    "diagnose_infeasibility",
]
