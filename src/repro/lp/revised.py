"""Revised simplex over sparse columns with basis reuse (ISSUE 9).

This is the engine behind the ``"simplex"`` backend *and* the warm-start
path every other backend can hand a basis to.  It replaces the dense
two-phase tableau: instead of carrying an m×(n+m) tableau through every
pivot, it keeps the constraint matrix in sparse column form and represents
the basis inverse as a **product-form factorization** — a periodically
rebuilt LU factor plus an eta file of rank-one pivot updates.

Standard form
-------------

The model ``min c^T x,  A x {<=,>=,==} b,  l <= x <= u`` becomes::

    min c^T x   s.t.   A x + s = b

with one slack per row, bounded by the row sense (``<=``: ``s in [0, inf)``,
``>=``: ``s in (-inf, 0]``, ``==``: ``s == 0``).  A basis is m columns of
``[A | I]``; the nonbasic columns sit at a bound (or at zero for free
variables).  That status vector is the opaque :class:`~repro.lp.basis.Basis`
handle callers thread between solves.

Warm starts
-----------

``solve_revised(model, warm_basis=...)`` re-certifies the given basis
against the *current* (possibly patched) arrays:

* RHS/bound patches (``set_rhs``/``fix_var``/``set_bound``) keep the old
  basis **dual feasible** — the dual simplex restores primal feasibility,
  typically in a handful of pivots.
* Objective patches keep it **primal feasible** — the primal simplex
  finishes the job.
* Neither (or a singular/ill-shaped basis) — the caller falls back to a
  cold solve; nothing here guesses.

The engine is cached on the model and survives across patched re-solves
(patches never change matrix *values*), so the sweep fast path pays zero
refactorizations when consecutive solves share a basis.

Kernels
-------

Factorization uses ``scipy.sparse.linalg.splu`` when scipy is importable
and a dense-inverse numpy kernel otherwise, preserving the historical
no-scipy degrade path (toy sizes only).  All matrix-vector products run on
numpy arrays either way, so the two kernels share every pivot rule.

Anti-cycling: Dantzig pricing normally; after :data:`BLAND_AFTER`
consecutive degenerate pivots the loops switch to Bland's smallest-index
rule (entering and leaving) until progress resumes.

Perf counters: ``lp.simplex.iterations`` (pivots), ``lp.simplex.warm_starts``
(solves that ran from an installed caller basis), and
``lp.simplex.refactorizations`` (LU rebuilds, including the initial one).
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

import numpy as np

from repro.lp.basis import AT_LOWER, AT_UPPER, BASIC, NB_FREE, Basis
from repro.lp.solution import LPSolution, SolveStatus
from repro.perf import PERF

#: Primal feasibility tolerance (absolute, on variable bounds).
PRIMAL_TOL = 1e-7
#: Dual feasibility tolerance (on reduced costs).
DUAL_TOL = 1e-7
#: Pivot elements smaller than this are rejected (refactor, then ban).
PIVOT_TOL = 1e-9
#: Ratio-test tie window.
TIE_TOL = 1e-9
#: Rebuild the LU factor after this many eta updates.
REFACTOR_EVERY = 64
#: Switch to Bland's rule after this many consecutive degenerate pivots.
BLAND_AFTER = 30

_SENSE_LE = 0
_SENSE_GE = 1
_SENSE_EQ = 2


class SimplexError(RuntimeError):
    """Internal simplex failure: iteration cap, numerically dead pivots."""


class _SingularBasis(Exception):
    """The requested basis matrix is singular (warm path degrades to cold)."""


def _pure_forced() -> bool:
    return os.environ.get("REPRO_LP_PURE", "") not in ("", "0")


def _scipy_modules():
    """(sparse, splu) or None — scipy is optional for this engine."""
    if _pure_forced():
        return None
    try:
        from scipy import sparse
        from scipy.sparse.linalg import splu
    except Exception:
        return None
    return sparse, splu


def _gather_ranges(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[i], starts[i] + lens[i])`` for all i."""
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offs = np.repeat(np.cumsum(lens) - lens, lens)
    return np.repeat(starts, lens) + (np.arange(total, dtype=np.int64) - offs)


class _Budget:
    """Shared iteration budget across the phases of one solve."""

    __slots__ = ("limit", "used")

    def __init__(self, limit: int) -> None:
        self.limit = int(limit)
        self.used = 0

    def spend(self) -> None:
        self.used += 1
        if self.used > self.limit:
            raise SimplexError(
                f"simplex iteration limit exceeded ({self.limit})"
            )


class RevisedSimplexEngine:
    """Revised simplex bound to one model's cached arrays.

    The engine snapshots the *structure* (sparsity pattern, senses) at
    construction and reads the *numbers* (``c``/``b_all``/``lb``/``ub``)
    from the model's array cache at every solve, so in-place patches are
    picked up without any rebuild.  A structural edit replaces the array
    cache, which orphans the engine (``valid_for`` fails) — the model then
    constructs a fresh one.
    """

    def __init__(self, model) -> None:
        model.to_arrays()  # make sure the array cache exists
        cache = model._arrays
        self._cache = cache
        n = cache.nvars
        lengths, sense_codes, _rhs, flat_idx, flat_cf = model.constraints.columnar()
        m = len(lengths)
        self._n = n
        self._m = m
        self._flat_idx = flat_idx
        self._flat_cf = flat_cf
        self._row_of_entry = np.repeat(np.arange(m, dtype=np.int64), lengths)

        # CSC triple of A (model row order, unflipped) for column extraction.
        order = np.argsort(flat_idx, kind="stable")
        self._csc_rows = self._row_of_entry[order]
        self._csc_vals = flat_cf[order]
        counts = np.bincount(flat_idx, minlength=n) if len(flat_idx) else np.zeros(n, dtype=np.int64)
        ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        self._csc_ptr = ptr

        # Slack bounds by sense.
        inf = np.inf
        self._slack_lb = np.where(sense_codes == _SENSE_GE, -inf, 0.0)
        self._slack_ub = np.where(sense_codes == _SENSE_LE, inf, 0.0)

        mods = _scipy_modules()
        if mods is not None:
            sparse, splu = mods
            indptr = np.zeros(m + 1, dtype=np.int64)
            np.cumsum(lengths, out=indptr[1:])
            self._A_csr = sparse.csr_matrix((flat_cf, flat_idx, indptr), shape=(m, n))
            self._A_csc = self._A_csr.tocsc()
            self._sparse = sparse
            self._splu = splu
        else:
            self._A_csr = None
            self._sparse = None
            self._splu = None

        # Basis state (populated by _install_*).
        self._statuses: Optional[np.ndarray] = None
        self._basis_cols: Optional[np.ndarray] = None
        self._basis_pos = np.full(n + m, -1, dtype=np.int64)
        self._xB: Optional[np.ndarray] = None
        self._factor = None  # splu object or dense inverse
        self._etas: List[Tuple[int, np.ndarray, float]] = []
        self._banned: set = set()

    # -- structure helpers -------------------------------------------------

    def valid_for(self, model) -> bool:
        """Still bound to the model's current array cache?"""
        return model._arrays is self._cache

    def _Atv(self, y: np.ndarray) -> np.ndarray:
        """``A^T y`` (length n)."""
        if self._A_csr is not None:
            return self._A_csr.T.dot(y)
        if not len(self._flat_idx):
            return np.zeros(self._n)
        return np.bincount(
            self._flat_idx,
            weights=self._flat_cf * y[self._row_of_entry],
            minlength=self._n,
        )

    def _Av(self, x: np.ndarray) -> np.ndarray:
        """``A x`` (length m) for a structural vector x."""
        if self._A_csr is not None:
            return self._A_csr.dot(x)
        if not len(self._flat_idx):
            return np.zeros(self._m)
        return np.bincount(
            self._row_of_entry,
            weights=self._flat_cf * x[self._flat_idx],
            minlength=self._m,
        )

    def _col_dense(self, j: int) -> np.ndarray:
        """Column j of ``[A | I]`` as a dense m-vector."""
        v = np.zeros(self._m)
        if j < self._n:
            s, e = self._csc_ptr[j], self._csc_ptr[j + 1]
            np.add.at(v, self._csc_rows[s:e], self._csc_vals[s:e])
        else:
            v[j - self._n] = 1.0
        return v

    # -- factorization -----------------------------------------------------

    def _factorize(self) -> None:
        """Rebuild the LU factor of the current basis; clears the eta file."""
        m, n = self._m, self._n
        cols = self._basis_cols
        PERF.count("lp.simplex.refactorizations")
        self._etas = []
        if m == 0:
            self._factor = ()
            return
        is_slack = cols >= n
        t_cols = cols[~is_slack]
        t_pos = np.flatnonzero(~is_slack)
        starts = self._csc_ptr[t_cols]
        lens = self._csc_ptr[t_cols + 1] - starts
        g = _gather_ranges(starts, lens)
        rows = np.concatenate([self._csc_rows[g], cols[is_slack] - n])
        posn = np.concatenate([np.repeat(t_pos, lens), np.flatnonzero(is_slack)])
        vals = np.concatenate([self._csc_vals[g], np.ones(int(is_slack.sum()))])
        if self._sparse is not None:
            B = self._sparse.csc_matrix((vals, (rows, posn)), shape=(m, m))
            try:
                self._factor = self._splu(B)
            except Exception as exc:  # RuntimeError: exactly singular
                self._factor = None
                raise _SingularBasis(str(exc)) from None
        else:
            Bd = np.zeros((m, m))
            np.add.at(Bd, (rows, posn), vals)
            try:
                self._factor = np.linalg.inv(Bd)
            except np.linalg.LinAlgError as exc:
                self._factor = None
                raise _SingularBasis(str(exc)) from None

    def _factor_ftran(self, v: np.ndarray) -> np.ndarray:
        if self._m == 0:
            return v
        if self._sparse is not None:
            return self._factor.solve(v)
        return self._factor.dot(v)

    def _factor_btran(self, v: np.ndarray) -> np.ndarray:
        if self._m == 0:
            return v
        if self._sparse is not None:
            return self._factor.solve(v, trans="T")
        return self._factor.T.dot(v)

    def _ftran(self, v: np.ndarray) -> np.ndarray:
        """``B^-1 v`` through the factor plus the eta file (chronological)."""
        x = self._factor_ftran(v)
        for p, w, wp in self._etas:
            xp = x[p] / wp
            if xp != 0.0:
                x -= xp * w
            x[p] = xp
        return x

    def _btran(self, v: np.ndarray) -> np.ndarray:
        """``B^-T v`` — eta transposes in reverse order, then the factor."""
        y = v
        for p, w, wp in reversed(self._etas):
            y[p] = (y[p] - (w @ y - y[p] * wp)) / wp
        return self._factor_btran(y)

    # -- basis installation ------------------------------------------------

    def _sanitize_statuses(self, statuses: np.ndarray, lb, ub) -> np.ndarray:
        """Repair nonbasic statuses that point at bounds that no longer exist."""
        st = statuses.astype(np.int8, copy=True)
        nonbasic = st != BASIC
        lo_inf = np.isneginf(lb)
        up_inf = np.isposinf(ub)
        bad_lo = nonbasic & (st == AT_LOWER) & lo_inf
        st[bad_lo & ~up_inf] = AT_UPPER
        st[bad_lo & up_inf] = NB_FREE
        bad_up = nonbasic & (st == AT_UPPER) & up_inf
        st[bad_up & ~lo_inf] = AT_LOWER
        st[bad_up & lo_inf] = NB_FREE
        bad_free = nonbasic & (st == NB_FREE) & ~(lo_inf & up_inf)
        st[bad_free & ~lo_inf] = AT_LOWER
        st[bad_free & lo_inf & ~up_inf] = AT_UPPER
        return st

    def _install_basis(self, basis: Basis, lb, ub) -> bool:
        """Adopt a caller basis; False when it cannot seed this model."""
        n, m = self._n, self._m
        if not basis.matches(n, m) or not basis.is_wellformed():
            return False
        st = self._sanitize_statuses(basis.statuses, lb, ub)
        if (
            self._factor is not None
            and self._statuses is not None
            and np.array_equal(st, self._statuses)
        ):
            return True  # same basis the engine already holds — keep the factor
        basis_cols = np.flatnonzero(st == BASIC).astype(np.int64)
        old = (self._statuses, self._basis_cols, self._factor, self._etas)
        self._statuses = st
        self._basis_cols = basis_cols
        self._basis_pos.fill(-1)
        self._basis_pos[basis_cols] = np.arange(m)
        try:
            self._factorize()
        except _SingularBasis:
            self._statuses, self._basis_cols, self._factor, self._etas = old
            if self._basis_cols is not None:
                self._basis_pos.fill(-1)
                self._basis_pos[self._basis_cols] = np.arange(m)
            return False
        return True

    def _install_cold(self, lb, ub) -> None:
        """All-slack basis; structural variables at their nearest bound."""
        n, m = self._n, self._m
        st = np.empty(n + m, dtype=np.int8)
        s_lb, s_ub = lb[:n], ub[:n]
        st[:n] = np.where(
            np.isfinite(s_lb), AT_LOWER, np.where(np.isfinite(s_ub), AT_UPPER, NB_FREE)
        )
        st[n:] = BASIC
        self._statuses = st
        self._basis_cols = (n + np.arange(m)).astype(np.int64)
        self._basis_pos.fill(-1)
        self._basis_pos[self._basis_cols] = np.arange(m)
        self._factorize()

    # -- state recomputation ----------------------------------------------

    def _nonbasic_values(self, lb, ub) -> np.ndarray:
        """Full-length value vector with basics at zero."""
        st = self._statuses
        x = np.zeros(self._n + self._m)
        at_lo = st == AT_LOWER
        x[at_lo] = lb[at_lo]
        at_up = st == AT_UPPER
        x[at_up] = ub[at_up]
        return x

    def _recompute_xB(self, b, lb, ub) -> None:
        xN = self._nonbasic_values(lb, ub)
        r = b - self._Av(xN[: self._n]) - xN[self._n:]
        self._xB = self._ftran(r)

    def _fresh_duals(self, c_all) -> Tuple[np.ndarray, np.ndarray]:
        """Recompute ``y`` (row duals) and reduced costs ``d`` from scratch."""
        cB = c_all[self._basis_cols].copy()
        y = self._btran(cB)
        d = c_all - np.concatenate([self._Atv(y), y])
        d[self._basis_cols] = 0.0
        return y, d

    def _entering_mask(self, d, lb, ub, tol_scale: float = 1.0) -> np.ndarray:
        """Nonbasic columns whose reduced cost can improve the objective."""
        st = self._statuses
        tol = DUAL_TOL * tol_scale
        movable = (ub - lb) > 0
        return (
            ((st == AT_LOWER) & (d < -tol) & movable)
            | ((st == AT_UPPER) & (d > tol) & movable)
            | ((st == NB_FREE) & (np.abs(d) > tol))
        )

    def _primal_feasible(self, lb, ub, tol_scale: float = 1.0) -> bool:
        blb = lb[self._basis_cols]
        bub = ub[self._basis_cols]
        tol = PRIMAL_TOL * tol_scale
        return bool(
            (self._xB >= blb - tol).all() and (self._xB <= bub + tol).all()
        )

    # -- pivot mechanics ---------------------------------------------------

    def _apply_pivot(self, p: int, q: int, new_value: float, leave_to: int,
                     w: np.ndarray, b, lb, ub) -> None:
        """Swap column q into row-position p; leaving column r goes to a bound."""
        r = int(self._basis_cols[p])
        self._statuses[r] = leave_to
        self._statuses[q] = BASIC
        self._basis_pos[r] = -1
        self._basis_pos[q] = p
        self._basis_cols[p] = q
        self._xB[p] = new_value
        self._etas.append((p, w.copy(), float(w[p])))
        self._banned.clear()
        if len(self._etas) >= REFACTOR_EVERY:
            self._factorize()
            self._recompute_xB(b, lb, ub)

    def _choose_pivot_row(self, theta_arr, theta, g, bland: bool) -> int:
        ties = np.flatnonzero(theta_arr <= theta + TIE_TOL)
        if bland:
            return int(ties[np.argmin(self._basis_cols[ties])])
        return int(ties[np.argmax(np.abs(g[ties]))])

    # -- primal simplex (serves as phase 1 and phase 2) --------------------

    def _primal_loop(self, c_all, b, lb, ub, budget: _Budget, phase1: bool) -> str:
        """Bounded-variable primal simplex.

        ``phase1=True`` minimizes the total bound infeasibility of the
        basic variables (costs recomputed every iteration as violations
        come and go); the ratio test stops basics at the *first* bound in
        their path, which covers both the feasible-side block and an
        infeasible basic reaching its violated bound.  The same ratio code
        runs phase 2, where no violations exist and it reduces to the
        classic nearest-bound test.
        """
        n, m = self._n, self._m
        degen_streak = 0
        bland = False
        while True:
            basis_cols = self._basis_cols
            blb = lb[basis_cols]
            bub = ub[basis_cols]
            xB = self._xB
            if phase1:
                above = xB > bub + PRIMAL_TOL
                below = xB < blb - PRIMAL_TOL
                if not above.any() and not below.any():
                    return "feasible"
                cB = above.astype(np.float64) - below.astype(np.float64)
                y = self._btran(cB)
                d = -np.concatenate([self._Atv(y), y])
                d[basis_cols] = 0.0
            else:
                _y, d = self._fresh_duals(c_all)
            elig = self._entering_mask(d, lb, ub)
            if self._banned:
                elig[list(self._banned)] = False
            cand = np.flatnonzero(elig)
            if not len(cand):
                if self._banned:
                    # Only numerically dead columns remain.
                    raise SimplexError("no usable entering column (numerical)")
                return "infeasible" if phase1 else "optimal"
            if bland:
                q = int(cand[0])
            else:
                q = int(cand[np.argmax(np.abs(d[cand]))])
            st_q = self._statuses[q]
            t = 1.0 if (st_q == AT_LOWER or (st_q == NB_FREE and d[q] < 0)) else -1.0
            w = self._ftran(self._col_dense(q))
            g = t * w
            budget.spend()

            # Blocking bound per basic: decreasing basics stop at their
            # violated upper bound (phase 1) else their lower bound;
            # increasing basics symmetric.  Infinite targets yield theta=inf.
            with np.errstate(divide="ignore", invalid="ignore"):
                theta_arr = np.full(m, np.inf)
                to_status = np.full(m, AT_LOWER, dtype=np.int8)
                pos = g > PIVOT_TOL
                if pos.any():
                    hit_up = pos & (xB > bub + PRIMAL_TOL)
                    target = np.where(hit_up, bub, blb)
                    theta_arr[pos] = (xB[pos] - target[pos]) / g[pos]
                    to_status[hit_up] = AT_UPPER
                neg = g < -PIVOT_TOL
                if neg.any():
                    hit_lo = neg & (xB < blb - PRIMAL_TOL)
                    target = np.where(hit_lo, blb, bub)
                    theta_arr[neg] = (xB[neg] - target[neg]) / g[neg]
                    to_status[neg & ~hit_lo] = AT_UPPER
            np.maximum(theta_arr, 0.0, out=theta_arr)
            theta_arr[np.isnan(theta_arr)] = np.inf
            theta_own = ub[q] - lb[q]  # inf for free/one-sided columns
            theta_block = float(theta_arr.min()) if m else np.inf

            if theta_own <= theta_block:
                if not np.isfinite(theta_own):
                    if phase1:
                        raise SimplexError("phase-1 ray (numerical)")
                    return "unbounded"
                # Bound flip: no basis change.
                self._xB = xB - theta_own * g
                self._statuses[q] = AT_UPPER if st_q == AT_LOWER else AT_LOWER
                degen_streak, bland = self._track_degeneracy(
                    theta_own, degen_streak, bland
                )
                continue
            if not np.isfinite(theta_block):
                if phase1:
                    raise SimplexError("phase-1 ray (numerical)")
                return "unbounded"
            p = self._choose_pivot_row(theta_arr, theta_block, g, bland)
            if abs(w[p]) < PIVOT_TOL:
                self._handle_dead_pivot(q, b, lb, ub)
                continue
            theta = float(theta_arr[p])
            nb_val = lb[q] if st_q == AT_LOWER else (ub[q] if st_q == AT_UPPER else 0.0)
            self._xB = xB - theta * g
            self._apply_pivot(p, q, nb_val + t * theta, int(to_status[p]), w, b, lb, ub)
            degen_streak, bland = self._track_degeneracy(theta, degen_streak, bland)

    def _track_degeneracy(self, step: float, streak: int, bland: bool):
        if step <= TIE_TOL:
            streak += 1
            if streak >= BLAND_AFTER:
                bland = True
        else:
            streak = 0
            bland = False
        return streak, bland

    def _handle_dead_pivot(self, q: int, b, lb, ub) -> None:
        """Pivot element vanished: refactorize once, then ban the column."""
        if self._etas:
            self._factorize()
            self._recompute_xB(b, lb, ub)
        else:
            self._banned.add(int(q))

    # -- dual simplex (the warm re-certification path) ---------------------

    def _dual_loop(self, c_all, b, lb, ub, budget: _Budget) -> str:
        """Bounded-variable dual simplex from a dual-feasible basis.

        Reduced costs are updated incrementally (the pivot row is computed
        anyway for the ratio test) and recomputed from scratch after each
        refactorization, so a k-pivot warm re-solve costs k BTRAN/FTRAN
        pairs — not k full d recomputations.
        """
        n, m = self._n, self._m
        _y, d = self._fresh_duals(c_all)
        degen_streak = 0
        bland = False
        while True:
            basis_cols = self._basis_cols
            blb = lb[basis_cols]
            bub = ub[basis_cols]
            xB = self._xB
            below = xB < blb - PRIMAL_TOL
            above = xB > bub + PRIMAL_TOL
            viol = below | above
            if not viol.any():
                return "optimal"
            budget.spend()
            viol_idx = np.flatnonzero(viol)
            if bland:
                p = int(viol_idx[np.argmin(basis_cols[viol_idx])])
            else:
                amounts = np.where(
                    below[viol_idx],
                    blb[viol_idx] - xB[viol_idx],
                    xB[viol_idx] - bub[viol_idx],
                )
                p = int(viol_idx[np.argmax(amounts)])
            is_above = bool(above[p])

            e_p = np.zeros(m)
            e_p[p] = 1.0
            rho = self._btran(e_p)
            alpha = np.concatenate([self._Atv(rho), rho])
            alpha[basis_cols] = 0.0

            st = self._statuses
            movable = (ub - lb) > 0
            if is_above:
                elig = (
                    ((st == AT_LOWER) & (alpha > PIVOT_TOL) & movable)
                    | ((st == AT_UPPER) & (alpha < -PIVOT_TOL) & movable)
                    | ((st == NB_FREE) & (np.abs(alpha) > PIVOT_TOL))
                )
            else:
                elig = (
                    ((st == AT_LOWER) & (alpha < -PIVOT_TOL) & movable)
                    | ((st == AT_UPPER) & (alpha > PIVOT_TOL) & movable)
                    | ((st == NB_FREE) & (np.abs(alpha) > PIVOT_TOL))
                )
            if self._banned:
                elig[list(self._banned)] = False
            cand = np.flatnonzero(elig)
            if not len(cand):
                if self._banned:
                    raise SimplexError("no usable dual pivot (numerical)")
                return "infeasible"
            ratios = np.abs(d[cand]) / np.abs(alpha[cand])
            best = float(ratios.min())
            ties = cand[ratios <= best + TIE_TOL]
            if bland:
                q = int(ties.min())
            else:
                q = int(ties[np.argmax(np.abs(alpha[ties]))])

            w = self._ftran(self._col_dense(q))
            if abs(w[p]) < PIVOT_TOL:
                self._handle_dead_pivot(q, b, lb, ub)
                _y, d = self._fresh_duals(c_all)
                continue
            bound_val = bub[p] if is_above else blb[p]
            delta = float(xB[p] - bound_val)
            step = delta / float(w[p])
            st_q = st[q]
            nb_val = lb[q] if st_q == AT_LOWER else (ub[q] if st_q == AT_UPPER else 0.0)
            r = int(basis_cols[p])
            beta = float(d[q] / w[p])
            self._xB = xB - step * w
            self._apply_pivot(
                p, q, nb_val + step, AT_UPPER if is_above else AT_LOWER, w, b, lb, ub
            )
            if self._etas:
                # Incremental dual update; alpha already in hand.
                d = d - beta * alpha
                d[r] = -beta
                d[self._basis_cols] = 0.0
            else:
                # A refactorization just ran inside _apply_pivot.
                _y, d = self._fresh_duals(c_all)
            degen_streak, bland = self._track_degeneracy(
                abs(beta), degen_streak, bland
            )

    # -- driver ------------------------------------------------------------

    def solve(
        self,
        warm_basis: Optional[Basis] = None,
        max_iterations: int = 100_000,
    ) -> LPSolution:
        cache = self._cache
        n, m = self._n, self._m
        c_all = np.concatenate([cache.c, np.zeros(m)])
        lb = np.concatenate([cache.lb, self._slack_lb])
        ub = np.concatenate([cache.ub, self._slack_ub])
        b = cache.b_all
        budget = _Budget(max_iterations)
        self._banned.clear()

        warm = warm_basis is not None and self._install_basis(warm_basis, lb, ub)
        if not warm:
            if warm_basis is not None:
                raise _SingularBasis("warm basis rejected")
            self._install_cold(lb, ub)
        self._recompute_xB(b, lb, ub)

        outcome: Optional[str] = None
        if warm:
            PERF.count("lp.simplex.warm_starts")
            _y, d = self._fresh_duals(c_all)
            if not self._entering_mask(d, lb, ub).any():
                outcome = self._dual_loop(c_all, b, lb, ub, budget)
        if outcome is None:
            if not self._primal_feasible(lb, ub):
                r = self._primal_loop(c_all, b, lb, ub, budget, phase1=True)
                if r == "infeasible":
                    outcome = "infeasible"
            if outcome is None:
                outcome = self._primal_loop(c_all, b, lb, ub, budget, phase1=False)

        # Terminal verification: recompute the basic values and reduced
        # costs through the (cheap) factored representation; numerical
        # drift triggers one refactorize-and-polish round.
        if outcome == "optimal":
            for _attempt in range(2):
                self._recompute_xB(b, lb, ub)
                primal_ok = self._primal_feasible(lb, ub, tol_scale=10.0)
                _y, d = self._fresh_duals(c_all)
                dual_ok = not self._entering_mask(d, lb, ub, tol_scale=10.0).any()
                if primal_ok and dual_ok:
                    break
                self._factorize()
                self._recompute_xB(b, lb, ub)
                if not self._primal_feasible(lb, ub):
                    r = self._primal_loop(c_all, b, lb, ub, budget, phase1=True)
                    if r == "infeasible":
                        outcome = "infeasible"
                        break
                outcome = self._primal_loop(c_all, b, lb, ub, budget, phase1=False)
                if outcome != "optimal":
                    break

        PERF.count("lp.simplex.iterations", budget.used)
        if outcome == "infeasible":
            return LPSolution(status=SolveStatus.INFEASIBLE, backend="simplex")
        if outcome == "unbounded":
            return LPSolution(status=SolveStatus.UNBOUNDED, backend="simplex")

        x = self._nonbasic_values(lb, ub)
        x[self._basis_cols] = np.clip(
            self._xB, lb[self._basis_cols], ub[self._basis_cols]
        )
        values = x[:n].copy()
        objective = float(cache.c @ values)
        y, _d = self._fresh_duals(c_all)
        return LPSolution(
            status=SolveStatus.OPTIMAL,
            objective=objective,
            values=values,
            backend="simplex",
            duals=y.copy(),
            basis=Basis(self._statuses.copy(), n, m),
        )


# -- module-level entry points ---------------------------------------------


def get_engine(model) -> RevisedSimplexEngine:
    """The model's cached engine, rebuilt if structural edits orphaned it."""
    engine = getattr(model, "_engine", None)
    if engine is None or not engine.valid_for(model):
        engine = RevisedSimplexEngine(model)
        model._engine = engine
    return engine


def solve_revised(
    model,
    warm_basis: Optional[Basis] = None,
    max_iterations: int = 100_000,
) -> LPSolution:
    """Solve ``model`` with the revised simplex (cold, or from a basis).

    Raises :class:`SimplexError` on the iteration cap and
    :class:`_SingularBasis` (internal) when a warm basis cannot seed the
    model — callers in the registry catch both and degrade to a cold solve.
    """
    return get_engine(model).solve(
        warm_basis=warm_basis, max_iterations=max_iterations
    )


def _match_binding_rows(candidates, binding, ptr, rows, vals, m):
    """Maximum bipartite matching of binding rows onto candidate columns.

    Returns ``(matched_columns, matched_rows)`` (parallel global-index
    arrays) or None when scipy is unavailable — the caller then falls back
    to the pure-Python greedy.  Entries below ``PIVOT_TOL`` are dropped so
    a match is always numerically usable as a pivot.
    """
    try:
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import maximum_bipartite_matching
    except Exception:
        return None
    binding_idx = np.flatnonzero(binding)
    if len(binding_idx) == 0 or len(candidates) == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    row_local = np.full(m, -1, dtype=np.int64)
    row_local[binding_idx] = np.arange(len(binding_idx))
    lengths = ptr[candidates + 1] - ptr[candidates]
    gather = np.concatenate(
        [np.arange(ptr[j], ptr[j + 1]) for j in candidates]
    )
    entry_rows = rows[gather]
    keep = binding[entry_rows] & (np.abs(vals[gather]) > PIVOT_TOL)
    col_local = np.repeat(np.arange(len(candidates)), lengths)[keep]
    graph = csr_matrix(
        (
            np.ones(int(keep.sum())),
            (row_local[entry_rows[keep]], col_local),
        ),
        shape=(len(binding_idx), len(candidates)),
    )
    match = maximum_bipartite_matching(graph, perm_type="column")
    hit = match >= 0
    cols = candidates[match[hit]]
    prow = binding_idx[hit]

    # A perfect transversal fixes a nonzero diagonal but the block can
    # still cancel numerically.  Lower-triangularizability removes that
    # risk: matched pair i must come after every pair whose pivot row its
    # column touches, so any cycle in that precedence graph blocks a
    # triangular ordering.  Cycles live inside strongly connected
    # components; keeping one representative per component leaves the
    # precedence graph acyclic (a surviving cycle would need two nodes of
    # the same component) at the cost of a few uncovered rows.
    from scipy.sparse.csgraph import connected_components

    loc = np.full(m, -1, dtype=np.int64)
    loc[prow] = np.arange(len(prow))
    lengths2 = ptr[cols + 1] - ptr[cols]
    gather2 = np.concatenate([np.arange(ptr[j], ptr[j + 1]) for j in cols])
    dst = loc[rows[gather2]]
    src = np.repeat(np.arange(len(cols)), lengths2)
    edge = (dst >= 0) & (dst != src)
    prec = csr_matrix(
        (np.ones(int(edge.sum())), (src[edge], dst[edge])),
        shape=(len(cols), len(cols)),
    )
    ncomp, labels = connected_components(prec, directed=True, connection="strong")
    sizes = np.bincount(labels, minlength=ncomp)
    keep = sizes[labels] == 1
    _, first_idx = np.unique(labels, return_index=True)
    keep[first_idx] = True
    return cols[keep], prow[keep]


def crash_basis_from_values(model, values, duals=None, strict=False) -> Optional[Basis]:
    """Crash a starting basis from an (optimal) point with no basis attached.

    scipy/HiGHS does not expose its basis, so a warm start from a cached
    scipy solution reconstructs one.  Two constructions:

    * **Complementarity crash** (``duals`` given, the default path): by
      complementary slackness the rows with a nonzero dual have nonbasic
      slacks, and basic structural columns have zero reduced cost — a
      criterion that still identifies *degenerate* basics sitting exactly
      at a bound, which interiority alone cannot see.  Zero-reduced-cost
      columns are accepted greedily when their binding-row support is
      disjoint from earlier picks (interior columns first), slacks cover
      every row without a pivot; the same ``[[D, 0], [X, I]]`` argument as
      below makes the result nonsingular by construction.
    * **Triangular crash** (``strict=True`` or no duals): interior
      structural columns are accepted greedily only when their nonzero
      rows are disjoint from every previously accepted column's rows, and
      every remaining row contributes its slack.  After a permutation the
      basis matrix is ``[[D, 0], [X, I]]`` with nonzero diagonal ``D`` —
      nonsingular by construction, never just by luck.
    """
    model.to_arrays()
    cache = model._arrays
    engine = get_engine(model)
    n, m = engine._n, engine._m
    x = np.asarray(values, dtype=float)
    if len(x) != n:
        return None
    s = cache.b_all - engine._Av(x)
    x_all = np.concatenate([x, s])
    lb = np.concatenate([cache.lb, engine._slack_lb])
    ub = np.concatenate([cache.ub, engine._slack_ub])
    tol = 1e-7
    dist_lo = x_all - lb
    dist_hi = ub - x_all

    # Everything starts at its nearest finite bound (free columns at 0).
    statuses = np.where(dist_lo <= dist_hi, AT_LOWER, AT_UPPER).astype(np.int8)
    statuses[(statuses == AT_LOWER) & np.isneginf(lb)] = NB_FREE
    statuses[(statuses == AT_UPPER) & np.isposinf(ub)] = NB_FREE

    interior = (dist_lo[:n] > tol) & (dist_hi[:n] > tol)

    if duals is not None and not strict and len(duals) == m:
        # Complementarity: rows with a nonzero dual have nonbasic slacks,
        # and the structural basics covering them have zero reduced cost.
        # Degenerate optima hide basics *at* their bounds, so candidacy is
        # decided by reduced cost, not by interiority alone.  The goal is
        # to pivot *every* binding row on a zero-reduced-cost column: if
        # that succeeds, the duals implied by the crashed basis are exactly
        # the ones handed in (slack-basic rows all carry a zero dual), and
        # the warm re-solve starts dual feasible — every binding row left
        # to its slack instead forces that dual to zero and leaks repair
        # pivots.  Maximum bipartite matching between binding rows and
        # candidate columns maximizes coverage; it guarantees a nonzero
        # diagonal but not triangularity, so a numerically singular pick
        # is possible — the caller's ``strict=True`` retry covers that.
        y = np.asarray(duals, dtype=float)
        binding = np.abs(y) > tol
        d = cache.c - engine._Atv(y)
        candidates = np.flatnonzero(np.abs(d) <= 1e-6)
        ptr, rows, vals_all = engine._csc_ptr, engine._csc_rows, engine._csc_vals
        pivot_rows = np.zeros(m, dtype=bool)
        matched = _match_binding_rows(
            candidates, binding, ptr, rows, vals_all, m
        )
        if matched is not None:
            cols, row_idx = matched
            statuses[cols] = BASIC
            pivot_rows[row_idx] = True
        else:
            # No scipy: greedy triangular fallback.  A candidate is
            # accepted when none of its binding rows is already a pivot
            # row, then claims one as its pivot; in acceptance order every
            # column is zero at all earlier pivot rows, so the permuted
            # basis is lower triangular with nonzero diagonal.
            order = np.lexsort(
                (
                    -np.minimum(dist_lo[candidates], dist_hi[candidates]),
                    ~interior[candidates],
                )
            )
            for j in candidates[order]:
                span = rows[ptr[j] : ptr[j + 1]]
                hot = span[binding[span]]
                if len(hot) == 0 or pivot_rows[hot].any():
                    continue
                statuses[j] = BASIC
                vals = vals_all[ptr[j] : ptr[j + 1]][binding[span]]
                pivot_rows[hot[np.argmax(np.abs(vals))]] = True
        statuses[n:][~pivot_rows] = BASIC
        if int(np.count_nonzero(statuses == BASIC)) != m:
            return None
        PERF.count("lp.simplex.basis_crash")
        return Basis(statuses.copy(), n, m)

    candidates = np.flatnonzero(interior)
    # Most interior first: those are the variables most clearly basic at
    # the optimum, and the ones costliest to misplace at a bound.
    interiority = np.minimum(dist_lo[candidates], dist_hi[candidates])
    candidates = candidates[np.argsort(-interiority, kind="stable")]

    ptr, rows = engine._csc_ptr, engine._csc_rows
    row_taken = np.zeros(m, dtype=bool)
    taken = 0
    for j in candidates:
        if taken == m:
            break
        span = rows[ptr[j] : ptr[j + 1]]
        if len(span) == 0 or row_taken[span].any():
            continue
        statuses[j] = BASIC
        row_taken[span] = True
        taken += 1
    # Slacks cover every row without an accepted structural column.  A
    # structural column may own several rows; slacks of its non-pivot rows
    # stay basic too, so counts still add up to m below.
    pivot_rows = np.zeros(m, dtype=bool)
    basics = np.flatnonzero(statuses[:n] == BASIC)
    for j in basics:
        span = rows[ptr[j] : ptr[j + 1]]
        vals = engine._csc_vals[ptr[j] : ptr[j + 1]]
        pivot_rows[span[np.argmax(np.abs(vals))]] = True
    statuses[n:][~pivot_rows] = BASIC

    if int(np.count_nonzero(statuses == BASIC)) != m:
        return None
    PERF.count("lp.simplex.basis_crash")
    return Basis(statuses, n, m)
