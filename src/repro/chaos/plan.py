"""The unified chaos-plan grammar and its per-layer routing.

Fault injection historically lived in three ad-hoc hooks that could not be
composed into one reproducible scenario:

* ``REPRO_CHAOS`` (``fail=<p>,seed=<n>``) — injected task-attempt failures
  in the runner scheduler (:mod:`repro.runner.resilience`);
* ``REPRO_SERVICE_CHAOS`` (``drop=…,slow=…,crash_at_epoch=…``) — dropped
  connections, slow solves and injected crashes in the placement service
  (:mod:`repro.service.chaos`);
* ``--faults`` — seeded topology fault schedules
  (:mod:`repro.faults.spec`).

A :class:`ChaosPlan` subsumes all three.  One spec string — semicolon-
separated ``kind:key=value,…`` clauses, with ``kind=value`` shorthand for
the clause's primary parameter — parses once and routes each clause to the
layer that injects it:

==================  =========================================================
layer               clauses
==================  =========================================================
runner scheduler    ``crash:p=<prob>[,seed=<n>]`` — probabilistic
                    :class:`~repro.runner.resilience.ChaosError` per task
                    attempt (the old ``REPRO_CHAOS fail=``).
service front-end   ``drop:p=…``, ``slow:p=…[,ms=…]`` (optionally windowed
                    with ``epochs=a-b``), ``crash:epoch=<n>`` (die
                    mid-epoch), ``crash:checkpoint=<n>`` (die between
                    journal append and snapshot).
checkpoint store    ``corrupt_checkpoint:at=<n>[,mode=tail|snapshot]`` —
                    garble the just-written journal record (torn append)
                    or the snapshot file.
fault schedule      every :func:`repro.faults.spec.parse_faults` clause —
                    ``zoneout:…``, ``zonepart:…``, ``poisson:…``,
                    ``outage:…``, ``crash:node=…`` (the ``node=`` key is
                    what routes a ``crash`` clause here), …
workload emulator   every :func:`repro.workload.emulate.parse_emulation`
                    clause — ``flashcrowd:…``, ``diurnal:…``, ``burst:…``,
                    ``writes:…``, ``clock_skew:ms=…``.
==================  =========================================================

Every probabilistic draw is a SHA-256 of ``(seed, site, counter)`` — the
idiom both legacy hooks already used — so a fixed-seed plan injects the
same faults every run.  Parsing failures raise
:class:`~repro.errors.ValidationError` naming the offending clause.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ValidationError

#: Clause kinds owned by the workload emulator (see repro.workload.emulate).
WORKLOAD_KINDS = ("flashcrowd", "diurnal", "burst", "writes", "clock_skew")

#: Clause kinds owned by the topology fault layer (repro.faults.spec).
#: ``crash`` is deliberately absent: a ``crash`` clause routes here only
#: when it carries a ``node=`` key (see :func:`parse_plan`).
FAULT_KINDS = (
    "poisson",
    "flaky",
    "degrade",
    "outage",
    "loss",
    "lossrate",
    "zoneout",
    "zonepart",
)


def chaos_draw(seed: int, site: str, counter) -> float:
    """The shared deterministic injection draw in ``[0, 1)``.

    Both legacy hooks computed exactly this; centralizing it here makes
    "same seed → same faults" a property of the engine, not a convention.
    """
    token = f"{seed}:{site}:{counter}".encode()
    return int.from_bytes(hashlib.sha256(token).digest()[:4], "big") / 2**32


@dataclass(frozen=True)
class TaskChaos:
    """Runner-scheduler injector: probabilistic per-attempt task failures."""

    fail: float = 0.0
    seed: int = 0

    def should_fail(self, identity: str, attempt: int) -> bool:
        if self.fail <= 0.0:
            return False
        return chaos_draw(self.seed, identity, attempt) < self.fail


def _bad(clause: str, why: str = "") -> ValidationError:
    detail = f": {why}" if why else ""
    return ValidationError(f"bad chaos clause {clause!r}{detail}")


def _parse_window(raw: str, clause: str) -> Tuple[int, int]:
    """``a-b`` (inclusive) or a single epoch ``a`` → ``(a, b)``."""
    lo, sep, hi = raw.partition("-")
    try:
        start = int(lo)
        end = int(hi) if sep else start
    except ValueError:
        raise _bad(clause, f"epochs window {raw!r} is not 'a-b'") from None
    if start < 0 or end < start:
        raise _bad(clause, f"epochs window {raw!r} must satisfy 0 <= a <= b")
    return start, end


def _parse_float(params: Dict[str, str], key: str, clause: str) -> float:
    raw = params.pop(key)
    try:
        return float(raw)
    except ValueError:
        raise _bad(clause, f"{key}={raw!r} is not a number") from None


def _parse_int(params: Dict[str, str], key: str, clause: str) -> int:
    raw = params.pop(key)
    try:
        return int(raw)
    except ValueError:
        raise _bad(clause, f"{key}={raw!r} is not an integer") from None


def _split_params(body: str, clause: str) -> Dict[str, str]:
    params: Dict[str, str] = {}
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep or not key.strip() or not value.strip():
            raise _bad(clause, f"malformed key=value pair {item!r}")
        params[key.strip().lower()] = value.strip()
    return params


@dataclass(frozen=True)
class ChaosPlan:
    """One parsed campaign plan, routable to every injection layer.

    The layer accessors are cheap projections; a plan with no clauses for
    a layer projects to ``None`` there, so callers can thread one plan
    everywhere and let each layer ignore what is not addressed to it.
    """

    #: The clauses verbatim, for reports and round-tripping.
    clauses: Tuple[str, ...] = ()
    #: Runner-scheduler injection (``crash:p=…``).
    task_fail: float = 0.0
    task_seed: int = 0
    #: Service front-end injection.
    drop: float = 0.0
    drop_window: Optional[Tuple[int, int]] = None
    slow: float = 0.0
    slow_ms: float = 100.0
    slow_window: Optional[Tuple[int, int]] = None
    crash_at_epoch: int = -1
    crash_checkpoint_at: int = -1
    service_seed: int = 0
    #: Checkpoint-store injection.
    corrupt_at: int = -1
    corrupt_mode: str = "tail"
    #: Verbatim clause strings for the fault-schedule layer.
    fault_clauses: Tuple[str, ...] = ()
    #: Verbatim clause strings for the workload emulator.
    workload_clauses: Tuple[str, ...] = ()

    # -- layer projections ---------------------------------------------------

    def task_chaos(self) -> Optional[TaskChaos]:
        """The runner-scheduler injector, or None when unaddressed."""
        if self.task_fail <= 0.0:
            return None
        return TaskChaos(fail=self.task_fail, seed=self.task_seed)

    def service_chaos(self):
        """The service front-end injector, or None when unaddressed.

        Imported lazily: the runner layer parses plans without dragging
        the service stack in.
        """
        if not self.has_service_clauses():
            return None
        from repro.service.chaos import ServiceChaos

        return ServiceChaos(
            drop=self.drop,
            slow=self.slow,
            slow_ms=self.slow_ms,
            crash_at_epoch=self.crash_at_epoch,
            crash_checkpoint_at=self.crash_checkpoint_at,
            corrupt_checkpoint_at=self.corrupt_at,
            corrupt_mode=self.corrupt_mode,
            drop_window=self.drop_window,
            slow_window=self.slow_window,
            seed=self.service_seed,
        )

    def has_service_clauses(self) -> bool:
        return (
            self.drop > 0.0
            or self.slow > 0.0
            or self.crash_at_epoch >= 0
            or self.crash_checkpoint_at >= 0
            or self.corrupt_at >= 0
        )

    def fault_spec(self) -> Optional[str]:
        """The topology-fault clauses as a ``--faults`` spec string."""
        return ";".join(self.fault_clauses) or None

    def workload_spec(self) -> Optional[str]:
        """The emulator clauses as a ``repro.workload.emulate`` spec string."""
        return ";".join(self.workload_clauses) or None

    def service_spec(self) -> Optional[str]:
        """The service/checkpoint clauses as a plan string for ``--chaos``."""
        kept = [c for c in self.clauses if _clause_layer(c) in ("service", "checkpoint")]
        return ";".join(kept) or None

    def without_one_shots(self) -> "ChaosPlan":
        """The plan minus its one-shot faults (crashes, corruption).

        A supervised restart replays the epoch the crash interrupted; with
        the deterministic crash clause still armed it would die at the same
        spot forever.  One-shot faults fire once per campaign — restarts
        carry only the probabilistic clauses.
        """
        kept = tuple(
            c for c in self.clauses
            if _clause_layer(c) != "checkpoint" and not _is_crash_clause(c)
        )
        return parse_plan(";".join(kept)) if kept else ChaosPlan()

    def describe(self) -> Dict[str, object]:
        """JSON-safe summary for campaign reports."""
        return {
            "clauses": list(self.clauses),
            "task": {"fail": self.task_fail, "seed": self.task_seed},
            "service": {
                "drop": self.drop,
                "slow": self.slow,
                "slow_ms": self.slow_ms,
                "crash_at_epoch": self.crash_at_epoch,
                "crash_checkpoint_at": self.crash_checkpoint_at,
                "corrupt_at": self.corrupt_at,
                "corrupt_mode": self.corrupt_mode,
                "seed": self.service_seed,
            },
            "faults": self.fault_spec(),
            "workload": self.workload_spec(),
        }


def _clause_layer(clause: str) -> str:
    kind, _, body = clause.partition(":")
    kind = kind.strip().lower()
    if kind in WORKLOAD_KINDS:
        return "workload"
    if kind == "corrupt_checkpoint":
        return "checkpoint"
    if kind in FAULT_KINDS:
        return "faults"
    if kind == "crash" and "node=" in body.replace(" ", ""):
        return "faults"
    if kind in ("crash", "drop", "slow"):
        return "service" if kind != "crash" or "p=" not in body.replace(" ", "") else "task"
    raise _bad(clause, "unknown clause kind")


def _is_crash_clause(clause: str) -> bool:
    """True for the one-shot daemon crashes (epoch=/checkpoint= targeted)."""
    kind, _, body = clause.partition(":")
    if kind.strip().lower() != "crash":
        return False
    body = body.replace(" ", "")
    return "epoch=" in body or "checkpoint=" in body


#: ``kind=value`` shorthand → the clause's primary parameter.
_SHORTHAND_KEY = {
    "crash": "p",
    "drop": "p",
    "slow": "p",
    "flashcrowd": "mult",
    "diurnal": "amp",
    "burst": "mult",
    "writes": "fraction",
    "clock_skew": "ms",
    "corrupt_checkpoint": "at",
}


def _normalize_clause(raw: str) -> str:
    """Expand ``kind=value`` shorthand into ``kind:primary=value``."""
    clause = raw.strip()
    if ":" in clause:
        return clause
    kind, sep, value = clause.partition("=")
    kind = kind.strip().lower()
    if not sep:
        raise _bad(raw, "expected 'kind:key=value,…' or 'kind=value'")
    try:
        primary = _SHORTHAND_KEY[kind]
    except KeyError:
        raise _bad(raw, "unknown clause kind") from None
    return f"{kind}:{primary}={value.strip()}"


def parse_plan(spec: str) -> ChaosPlan:
    """Parse a chaos-plan spec string into a :class:`ChaosPlan`.

    Raises :class:`~repro.errors.ValidationError` naming the offending
    clause on any grammar error; an empty spec is an error too (an empty
    *plan* is spelled by not passing one).
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ValidationError("empty chaos plan")
    clauses: List[str] = []
    fields: Dict[str, object] = {}
    fault_clauses: List[str] = []
    workload_clauses: List[str] = []
    for raw in spec.split(";"):
        if not raw.strip():
            continue
        clause = _normalize_clause(raw)
        clauses.append(clause)
        layer = _clause_layer(clause)
        if layer == "workload":
            # Validated by the emulator's own parser at materialize time;
            # validate eagerly here so a bad plan fails at parse, not mid-run.
            from repro.workload.emulate import parse_emulation

            try:
                parse_emulation(clause)
            except ValidationError:
                raise
            except Exception as exc:
                raise _bad(clause, str(exc)) from None
            workload_clauses.append(clause)
            continue
        if layer == "faults":
            # Grammar-checked by parse_faults at materialize time (it needs
            # the topology); here only the kind routing was checked.
            fault_clauses.append(clause)
            continue
        kind, _, body = clause.partition(":")
        kind = kind.strip().lower()
        params = _split_params(body, clause)
        if layer == "checkpoint":
            fields["corrupt_at"] = _parse_int(params, "at", clause)
            mode = params.pop("mode", "tail")
            if mode not in ("tail", "snapshot"):
                raise _bad(clause, "mode must be 'tail' or 'snapshot'")
            fields["corrupt_mode"] = mode
        elif kind == "crash":
            if "p" in params:
                fail = _parse_float(params, "p", clause)
                if not 0.0 <= fail <= 1.0:
                    raise _bad(clause, "p must be in [0, 1]")
                fields["task_fail"] = fail
                if "seed" in params:
                    fields["task_seed"] = _parse_int(params, "seed", clause)
            elif "epoch" in params:
                fields["crash_at_epoch"] = _parse_int(params, "epoch", clause)
            elif "checkpoint" in params:
                fields["crash_checkpoint_at"] = _parse_int(params, "checkpoint", clause)
            else:
                raise _bad(
                    clause,
                    "crash needs p= (task failures), epoch=/checkpoint= "
                    "(daemon crash) or node= (topology fault)",
                )
        elif kind in ("drop", "slow"):
            p = _parse_float(params, "p", clause) if "p" in params else None
            if p is None:
                raise _bad(clause, "missing required key 'p'")
            if not 0.0 <= p <= 1.0:
                raise _bad(clause, "p must be in [0, 1]")
            fields[kind] = p
            if kind == "slow" and "ms" in params:
                fields["slow_ms"] = _parse_float(params, "ms", clause)
            if "epochs" in params:
                fields[f"{kind}_window"] = _parse_window(params.pop("epochs"), clause)
            if "seed" in params:
                fields["service_seed"] = _parse_int(params, "seed", clause)
        if params:
            raise _bad(clause, f"unknown keys {sorted(params)}")
    if not clauses:
        raise ValidationError("empty chaos plan")
    return ChaosPlan(
        clauses=tuple(clauses),
        fault_clauses=tuple(fault_clauses),
        workload_clauses=tuple(workload_clauses),
        **fields,
    )


# -- legacy-grammar shims ----------------------------------------------------


def plan_from_task_env(raw: str) -> ChaosPlan:
    """``REPRO_CHAOS`` shim: legacy ``fail=<p>,seed=<n>`` or a plan string.

    The legacy comma grammar re-routes through the unified plan (a
    ``crash:p=…`` clause); a spec containing ``:`` or ``;`` is parsed as a
    full plan, of which only runner-layer clauses make sense here.
    """
    raw = raw.strip()
    if ":" in raw or ";" in raw:
        return parse_plan(raw)
    fields = {"fail": 0.0, "seed": 0.0}
    for clause in raw.split(","):
        name, sep, value = clause.partition("=")
        name = name.strip()
        if name not in fields or not sep or not value.strip():
            raise ValidationError(f"bad REPRO_CHAOS clause: {clause!r}")
        try:
            fields[name] = float(value)
        except ValueError:
            raise ValidationError(f"bad REPRO_CHAOS clause: {clause!r}") from None
    if not 0.0 <= fields["fail"] <= 1.0:
        raise ValidationError(f"bad REPRO_CHAOS clause: fail={fields['fail']:g}")
    clause = f"crash:p={fields['fail']:g},seed={int(fields['seed'])}"
    return parse_plan(clause) if fields["fail"] > 0 else ChaosPlan(clauses=(clause,))


def plan_from_service_env(raw: str) -> ChaosPlan:
    """``REPRO_SERVICE_CHAOS`` shim: the legacy comma grammar or a plan string.

    Legacy clauses (``drop=…,slow=…,slow_ms=…,crash_at_epoch=…,
    crash_checkpoint_at=…,seed=…``) map onto plan clauses one-for-one; a
    spec containing ``:`` or ``;`` is parsed as a plan directly, restricted
    to service/checkpoint-layer clauses (topology faults and workload
    shaping belong to ``--faults`` / ``--workload`` / ``repro chaos``).
    """
    raw = raw.strip()
    if ":" in raw or ";" in raw:
        plan = parse_plan(raw)
        for clause in plan.clauses:
            if _clause_layer(clause) not in ("service", "checkpoint"):
                raise ValidationError(
                    f"chaos clause {clause!r} is not a service-layer clause; "
                    "use 'repro chaos', --faults or --workload for it"
                )
        return plan
    fields = {
        "drop": 0.0,
        "slow": 0.0,
        "slow_ms": 100.0,
        "crash_at_epoch": -1.0,
        "crash_checkpoint_at": -1.0,
        "seed": 0.0,
    }
    for clause in raw.split(","):
        name, sep, value = clause.partition("=")
        name = name.strip()
        if name not in fields or not sep or not value.strip():
            raise ValidationError(f"bad REPRO_SERVICE_CHAOS clause: {clause!r}")
        try:
            fields[name] = float(value)
        except ValueError:
            raise ValidationError(
                f"bad REPRO_SERVICE_CHAOS clause: {clause!r}"
            ) from None
    translated: List[str] = []
    seed = int(fields["seed"])
    if fields["drop"] > 0:
        translated.append(f"drop:p={fields['drop']:g},seed={seed}")
    if fields["slow"] > 0:
        translated.append(
            f"slow:p={fields['slow']:g},ms={fields['slow_ms']:g},seed={seed}"
        )
    if fields["crash_at_epoch"] >= 0:
        translated.append(f"crash:epoch={int(fields['crash_at_epoch'])}")
    if fields["crash_checkpoint_at"] >= 0:
        translated.append(f"crash:checkpoint={int(fields['crash_checkpoint_at'])}")
    if not translated:
        return ChaosPlan()
    return parse_plan(";".join(translated))
