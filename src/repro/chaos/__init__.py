"""The seeded fault-campaign engine.

One :class:`~repro.chaos.plan.ChaosPlan` — parsed from a composable clause
grammar (``crash``, ``slow``, ``drop``, ``zoneout``, ``flashcrowd``,
``corrupt_checkpoint``, ``clock_skew``, …) — routes deterministic fault
injection to every layer that can fail:

* the runner scheduler (injected task-attempt failures),
* the service front-end (dropped connections, slow solves, crashes),
* the checkpoint store (torn journal records, garbled snapshots),
* the topology fault schedule (zone outages/partitions, node crashes),
* the workload emulator (flash crowds, diurnal cycles, clock skew).

The legacy ``REPRO_CHAOS`` / ``REPRO_SERVICE_CHAOS`` env grammars parse
through the same plan (:func:`~repro.chaos.plan.plan_from_task_env`,
:func:`~repro.chaos.plan.plan_from_service_env`), so old specs keep
working while new code composes scenarios the old hooks could not.

:mod:`repro.chaos.campaign` executes a plan end-to-end — baseline run,
supervised chaos run under closed-loop load, invariant checks, report
artifact — behind ``repro chaos <plan>``.  Grammar reference:
``docs/CHAOS.md``.
"""

from repro.chaos.campaign import CampaignReport, run_campaign
from repro.chaos.plan import (
    ChaosPlan,
    TaskChaos,
    chaos_draw,
    parse_plan,
    plan_from_service_env,
    plan_from_task_env,
)

__all__ = [
    "CampaignReport",
    "ChaosPlan",
    "TaskChaos",
    "chaos_draw",
    "parse_plan",
    "plan_from_service_env",
    "plan_from_task_env",
    "run_campaign",
]
