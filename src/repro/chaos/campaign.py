"""End-to-end execution of one chaos plan: ``repro chaos <plan>``.

A campaign answers the question the individual injectors cannot: *does the
whole system keep its promises while everything in the plan goes wrong at
once?*  It runs one deterministic scenario twice —

1. **Baseline** — the campaign's :class:`~repro.runner.tasks.ContinuousTask`
   (same topology, workload-emulation spec and fault schedule the plan
   prescribes) runs in-process, uninterrupted.  This is the ground truth.
2. **Chaos** — the same task runs as a real ``repro serve`` subprocess with
   the plan's service/checkpoint clauses injected, while a closed-loop load
   generator hammers the query endpoints.  Injected crashes (exit 57) are
   supervised: the process is relaunched against the same state directory
   with the plan's one-shot clauses stripped
   (:meth:`~repro.chaos.plan.ChaosPlan.without_one_shots`), so recovery —
   not a rerun — produces the final result.

Then the invariants are checked, each one a promise another module makes:

``no_silent_loss``
    Every load-generator request is accounted (ok / shed / stale / error /
    connection error / timeout) — :attr:`LoadReport.lost` is zero even
    across injected crashes and dropped connections.
``byte_identical_recovery``
    The recovered run's ``result.json`` equals the baseline's result under
    canonical JSON — crashes, torn journal records and garbled snapshots
    included, recovery converges exactly.
``slo_met``
    The (healed) plan meets its availability SLO in every epoch.
``audit_clean``
    The recovered artifact passes
    :func:`~repro.audit.certificates.audit_continuous_result`.
``overload_adaptation``
    The brownout ladder actually engaged under load — approximate solves,
    TTL-bounded stale answers or accounted hard sheds
    (``service.brownout.*`` counters), never silent degradation.
``service_completed``
    The final launch exited 0 within the restart budget.

The report is written to ``<workdir>/report.json`` (plus per-launch
``serve-N.log`` files) so CI failures are diagnosable from artifacts alone.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.chaos.plan import ChaosPlan, parse_plan
from repro.errors import ValidationError

#: Exit status of an injected service crash (repro.service.chaos).
CHAOS_EXIT = 57

#: Bound-heavy query mix: enough concurrent solver work to push the
#: admission queue past the brownout threshold, with cheap lookups mixed in
#: so the cheap path's availability under pressure is exercised too.
CAMPAIGN_MIX: Sequence[Dict[str, object]] = tuple(
    [{"kind": "placement"}, {"kind": "cost"}]
    + [
        {"kind": "bound", "class": "general", "qos": round(0.50 + 0.05 * i, 2)}
        for i in range(10)
    ]
)


def _digest(payload: Dict[str, object]) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


@dataclass
class CampaignReport:
    """Everything one campaign run learned, JSON-serializable."""

    spec: str
    plan: Dict[str, object] = field(default_factory=dict)
    invariants: Dict[str, Dict[str, object]] = field(default_factory=dict)
    launches: List[Dict[str, object]] = field(default_factory=list)
    restarts: int = 0
    load: Dict[str, object] = field(default_factory=dict)
    brownout: Dict[str, int] = field(default_factory=dict)
    baseline_digest: str = ""
    recovered_digest: str = ""
    duration_s: float = 0.0

    @property
    def passed(self) -> bool:
        return bool(self.invariants) and all(
            entry["ok"] for entry in self.invariants.values()
        )

    def check(self, name: str, ok: bool, detail: str = "") -> bool:
        self.invariants[name] = {"ok": bool(ok), "detail": detail}
        return bool(ok)

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec,
            "plan": self.plan,
            "passed": self.passed,
            "invariants": self.invariants,
            "launches": self.launches,
            "restarts": self.restarts,
            "load": self.load,
            "brownout": self.brownout,
            "baseline_digest": self.baseline_digest,
            "recovered_digest": self.recovered_digest,
            "duration_s": self.duration_s,
        }

    def render(self) -> str:
        lines = [f"chaos campaign: {self.spec}"]
        for name, entry in self.invariants.items():
            mark = "PASS" if entry["ok"] else "FAIL"
            detail = f"  ({entry['detail']})" if entry["detail"] else ""
            lines.append(f"  [{mark}] {name}{detail}")
        lines.append(
            f"  launches={len(self.launches)} restarts={self.restarts} "
            f"load_issued={self.load.get('issued', 0)} "
            f"lost={self.load.get('lost', 0)} "
            f"brownout={self.brownout}"
        )
        verdict = "PASSED" if self.passed else "FAILED"
        lines.append(f"-> campaign {verdict} in {self.duration_s:.1f}s")
        return "\n".join(lines)


def _campaign_topology(num_nodes: int, num_zones: int):
    """The campaign's fixed scenario: a zoned line (a tree, so every solver
    backend — including the brownout ``structure`` path — has its exact
    regime available)."""
    from repro.topology.generators import line_topology
    from repro.topology.graph import Topology

    base = line_topology(num_nodes=num_nodes, hop_latency_ms=40.0)
    zones = np.asarray([i * num_zones // num_nodes for i in range(num_nodes)])
    return Topology(
        latency=base.latency,
        origin=base.origin,
        populations=base.populations,
        zones=zones,
    )


def run_campaign(
    spec: Union[str, ChaosPlan],
    workdir: Union[str, Path],
    *,
    heuristic: str = "qiu",
    epochs: int = 6,
    epoch_s: float = 1800.0,
    epoch_interval_s: float = 0.25,
    requests_per_epoch: int = 300,
    num_objects: int = 12,
    seed: int = 3,
    tlat_ms: float = 80.0,
    capacity: int = 10,
    replicas: int = 1,
    period_s: float = 600.0,
    slo: Optional[float] = 0.9,
    heal: bool = True,
    heal_copies: int = 2,
    heal_zones: int = 2,
    snapshot_every: int = 2,
    admission_limit: int = 2,
    max_restarts: int = 5,
    load_workers: int = 6,
    load_burst_s: float = 0.6,
    num_nodes: int = 6,
    num_zones: int = 3,
    launch_timeout_s: float = 180.0,
    python: str = sys.executable,
) -> CampaignReport:
    """Execute one chaos plan end-to-end; never raises past plan validation.

    Raises :class:`~repro.errors.ValidationError` for a malformed plan (the
    caller's error); every *runtime* failure lands in the report as a failed
    invariant instead, so CI gets artifacts rather than stack traces.
    """
    from repro.runner.tasks import ContinuousTask, HeuristicSpec
    from repro.topology.io import load_topology, save_topology

    plan = spec if isinstance(spec, ChaosPlan) else parse_plan(spec)
    report = CampaignReport(
        spec=";".join(plan.clauses), plan=plan.describe()
    )
    t_start = time.monotonic()

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    state_dir = workdir / "state"

    # The topology round-trips through disk for BOTH phases: the baseline
    # and the serve subprocess must hash the exact same task.
    topo_path = workdir / "topology.json"
    save_topology(_campaign_topology(num_nodes, num_zones), topo_path)
    topology = load_topology(topo_path)

    task = ContinuousTask(
        topology=topology,
        heuristic=HeuristicSpec(
            name=heuristic,
            capacity=capacity,
            replicas=replicas,
            period_s=period_s,
            tlat_ms=tlat_ms,
            heal=heal,
            heal_copies=heal_copies,
            heal_zones=heal_zones,
        ),
        epochs=epochs,
        epoch_s=epoch_s,
        requests_per_epoch=requests_per_epoch,
        num_objects=num_objects,
        workload_seed=seed,
        workload=plan.workload_spec(),
        tlat_ms=tlat_ms,
        cost_interval_s=epoch_s,
        faults=plan.fault_spec(),
        slo=slo,
        label=f"chaos[{heuristic}]",
    )

    # -- phase 1: the uninterrupted baseline ---------------------------------
    try:
        baseline = task.run()
    except ValidationError:
        raise
    except Exception as exc:
        report.check("service_completed", False, f"baseline run failed: {exc}")
        report.duration_s = time.monotonic() - t_start
        _write_report(workdir, report)
        return report
    baseline_payload = baseline.to_dict()
    report.baseline_digest = _digest(baseline_payload)

    # -- phase 2: the supervised chaos run under load ------------------------
    from repro.service.loadgen import LoadReport, run_load

    serve_argv = [
        python, "-m", "repro", "serve",
        "-t", str(topo_path),
        "--heuristic", heuristic,
        "--state-dir", str(state_dir),
        "--epochs", str(epochs),
        "--epoch-length", str(epoch_s),
        "--epoch-interval", str(epoch_interval_s),
        "--requests", str(requests_per_epoch),
        "--objects", str(num_objects),
        "--seed", str(seed),
        "--tlat", str(tlat_ms),
        "--capacity", str(capacity),
        "--replicas", str(replicas),
        "--period", str(period_s),
        "--snapshot-every", str(snapshot_every),
        "--admission-limit", str(admission_limit),
        "--exit-when-done",
    ]
    if slo is not None:
        serve_argv += ["--slo", str(slo)]
    if heal:
        serve_argv += [
            "--heal",
            "--heal-copies", str(heal_copies),
            "--heal-zones", str(heal_zones),
        ]
    if plan.fault_spec():
        serve_argv += ["--faults", plan.fault_spec()]
    if plan.workload_spec():
        serve_argv += ["--workload", plan.workload_spec()]

    # The subprocess must see only the plan's clauses — ambient chaos env
    # vars would make the campaign non-reproducible.
    child_env = {
        k: v
        for k, v in os.environ.items()
        if k not in ("REPRO_CHAOS", "REPRO_SERVICE_CHAOS")
    }

    total_load = LoadReport()
    brownout_totals: Dict[str, int] = {
        "approx_served": 0, "stale_served": 0, "shed_hard": 0
    }
    chaos_spec = plan.service_spec()
    final_code: Optional[int] = None
    failure_detail = ""
    while True:
        launch_no = len(report.launches) + 1
        if launch_no > max_restarts + 1:
            failure_detail = (
                f"{report.restarts} injected-crash restarts exceeded the "
                f"budget of {max_restarts}"
            )
            break
        endpoint_path = state_dir / "endpoint.json"
        try:
            endpoint_path.unlink()
        except OSError:
            pass
        log_path = workdir / f"serve-{launch_no}.log"
        argv = list(serve_argv)
        if chaos_spec:
            argv += ["--chaos", chaos_spec]
        with open(log_path, "wb") as log:
            proc = subprocess.Popen(
                argv, stdout=log, stderr=subprocess.STDOUT, env=child_env
            )
        last_stats: Optional[Dict[str, object]] = None
        endpoint: Optional[Dict[str, object]] = None
        deadline = time.monotonic() + launch_timeout_s
        try:
            while time.monotonic() < deadline and proc.poll() is None:
                if endpoint_path.exists():
                    try:
                        endpoint = json.loads(endpoint_path.read_text())
                        break
                    except (OSError, json.JSONDecodeError):
                        pass
                time.sleep(0.05)
            while proc.poll() is None and time.monotonic() < deadline:
                if endpoint is None:
                    time.sleep(0.05)
                    continue
                burst = run_load(
                    str(endpoint["host"]),
                    int(endpoint["port"]),
                    duration_s=load_burst_s,
                    workers=load_workers,
                    mix=CAMPAIGN_MIX,
                    timeout_s=5.0,
                    seed=seed + 1000 * launch_no,
                )
                total_load.merge(burst)
                total_load.duration_s += burst.duration_s
                last_stats = _try_stats(endpoint) or last_stats
        finally:
            if proc.poll() is None:
                proc.kill()
            code = proc.wait()
        report.launches.append(
            {
                "exit": code,
                "chaos": chaos_spec,
                "log": str(log_path),
                "stats": last_stats,
            }
        )
        if last_stats:
            for key in brownout_totals:
                brownout_totals[key] += int(
                    (last_stats.get("brownout") or {}).get(key, 0)
                )
        if code == CHAOS_EXIT:
            # An injected crash: supervise.  Restarts run the plan minus
            # its one-shot clauses — a deterministic crash would otherwise
            # re-fire at the same epoch forever.
            report.restarts += 1
            chaos_spec = plan.without_one_shots().service_spec()
            continue
        final_code = code
        break
    report.load = total_load.to_dict()
    report.brownout = brownout_totals

    # -- invariants ----------------------------------------------------------
    report.check(
        "service_completed",
        final_code == 0,
        failure_detail
        or (f"final exit {final_code}" if final_code != 0 else
            f"{len(report.launches)} launch(es), {report.restarts} restart(s)"),
    )
    report.check(
        "no_silent_loss",
        total_load.lost == 0 and total_load.issued > 0,
        f"issued={total_load.issued} lost={total_load.lost}",
    )
    recovered = _load_result(state_dir)
    if recovered is None:
        report.check("byte_identical_recovery", False, "no result.json artifact")
        report.check("slo_met", False, "no result.json artifact")
        report.check("audit_clean", False, "no result.json artifact")
    else:
        report.recovered_digest = _digest(recovered)
        report.check(
            "byte_identical_recovery",
            report.recovered_digest == report.baseline_digest,
            f"baseline={report.baseline_digest[:12]} "
            f"recovered={report.recovered_digest[:12]}",
        )
        _check_result_invariants(report, task, recovered, slo)
    report.check(
        "overload_adaptation",
        sum(brownout_totals.values()) > 0,
        f"brownout counters {brownout_totals}",
    )
    report.duration_s = time.monotonic() - t_start
    _write_report(workdir, report)
    return report


def _try_stats(endpoint: Dict[str, object]) -> Optional[Dict[str, object]]:
    from repro.service.client import ServiceClient

    try:
        response = ServiceClient(
            str(endpoint["host"]), int(endpoint["port"]), timeout_s=5.0
        ).stats()
    except Exception:
        return None
    return response.payload if response.ok else None


def _load_result(state_dir: Path) -> Optional[Dict[str, object]]:
    try:
        return json.loads((state_dir / "result.json").read_text())
    except (OSError, json.JSONDecodeError):
        return None


def _check_result_invariants(
    report: CampaignReport,
    task,
    recovered: Dict[str, object],
    slo: Optional[float],
) -> None:
    from repro.audit import audit_continuous_result

    try:
        result = task.decode(recovered)
    except Exception as exc:
        report.check("slo_met", False, f"undecodable result.json: {exc}")
        report.check("audit_clean", False, f"undecodable result.json: {exc}")
        return
    if slo is None:
        report.check("slo_met", True, "no SLO configured (skipped)")
    else:
        report.check(
            "slo_met",
            result.slo_violations == 0,
            f"violations={result.slo_violations} "
            f"worst_epoch={result.worst_epoch_availability:.4f} target={slo}",
        )
    audit = audit_continuous_result(result, mode="fast", subject="chaos-campaign")
    report.check(
        "audit_clean",
        audit.ok,
        "; ".join(str(v) for v in audit.violations) or
        f"checks={','.join(audit.checks)}",
    )


def _write_report(workdir: Path, report: CampaignReport) -> None:
    from repro.runner.artifacts import atomic_write_text

    atomic_write_text(
        workdir / "report.json", json.dumps(report.to_dict(), indent=2)
    )
