"""MC-PERF core — the paper's contribution.

Formulates the *minimal replication cost for performance* problem as an
LP/IP, constrains it per heuristic class, derives per-class lower bounds
(LP relaxation) and close-to-tight feasible costs (greedy rounding), and
wraps the two methodologies of §6: heuristic selection for an existing
infrastructure and two-phase infrastructure deployment.
"""

from repro.core.costs import CostModel
from repro.core.goals import AverageLatencyGoal, GoalScope, QoSGoal
from repro.core.problem import MCPerfProblem, PlacementInstance
from repro.core.properties import (
    HeuristicProperties,
    Knowledge,
    ReplicaConstraint,
    Routing,
    StorageConstraint,
)
from repro.core.formulation import Formulation, build_formulation, compute_allowed_create
from repro.core.evaluate import (
    CostBreakdown,
    average_latency_by_scope,
    coverage_matrix,
    creations_from_store,
    meets_goal,
    qos_by_scope,
    solution_cost,
)
from repro.core.rounding import RoundingResult, round_solution
from repro.core.rounding_avg import round_average_latency
from repro.audit.certificates import PlacementReport, verify_placement
from repro.core.bounds import LowerBoundResult, compute_lower_bound
from repro.core.exact import ExactBoundResult, compute_exact_bound
from repro.core.classes import (
    FIGURE1_CLASSES,
    STANDARD_CLASSES,
    HeuristicClass,
    get_class,
    render_table3,
    table3,
)
from repro.core.intervals import (
    IntervalPlan,
    bound_applies,
    interaction_matrix,
    interval_for_period,
    per_access_interval,
    plan_intervals,
)
from repro.core.selection import SelectionReport, select_heuristic
from repro.core.deployment import DeploymentPlan, plan_deployment
from repro.core.adaptive import (
    AdaptivePlacement,
    TimelinePoint,
    default_factories,
    selection_timeline,
)

__all__ = [
    "CostModel",
    "QoSGoal",
    "AverageLatencyGoal",
    "GoalScope",
    "MCPerfProblem",
    "PlacementInstance",
    "HeuristicProperties",
    "StorageConstraint",
    "ReplicaConstraint",
    "Routing",
    "Knowledge",
    "Formulation",
    "build_formulation",
    "compute_allowed_create",
    "CostBreakdown",
    "coverage_matrix",
    "creations_from_store",
    "qos_by_scope",
    "average_latency_by_scope",
    "meets_goal",
    "solution_cost",
    "RoundingResult",
    "round_solution",
    "round_average_latency",
    "PlacementReport",
    "verify_placement",
    "LowerBoundResult",
    "compute_lower_bound",
    "ExactBoundResult",
    "compute_exact_bound",
    "HeuristicClass",
    "STANDARD_CLASSES",
    "FIGURE1_CLASSES",
    "get_class",
    "table3",
    "render_table3",
    "IntervalPlan",
    "bound_applies",
    "interval_for_period",
    "interaction_matrix",
    "per_access_interval",
    "plan_intervals",
    "SelectionReport",
    "select_heuristic",
    "DeploymentPlan",
    "plan_deployment",
    "AdaptivePlacement",
    "TimelinePoint",
    "default_factories",
    "selection_timeline",
]
