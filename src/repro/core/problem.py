"""The MC-PERF problem specification (§3).

:class:`MCPerfProblem` bundles a topology, a demand matrix, a performance
goal and a cost model.  For each heuristic class (its routing/knowledge
properties), :meth:`MCPerfProblem.instance` lowers the specification into a
:class:`PlacementInstance` — the rectangular demanders×storers view the
formulation, the rounding algorithm and the evaluators all consume:

* *demanders* are topology sites with users (always all sites);
* *storers* are the sites replicas may be placed on — all sites except the
  origin by default, or an explicit subset in the deployment scenario
  (§6.2), where each user site is *assigned* to one open node and all its
  accesses route through that node.

The origin (headquarters) permanently stores every object: it serves misses,
covers demanders within the latency threshold for free, and is excluded from
placement cost (``origin_free=True``, the paper's case-study setting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.costs import CostModel
from repro.core.goals import AverageLatencyGoal, PerformanceGoal, QoSGoal
from repro.core.properties import HeuristicProperties, Routing, knowledge_matrix
from repro.topology.graph import Topology
from repro.workload.demand import DemandMatrix


@dataclass
class PlacementInstance:
    """The lowered demanders×storers instance consumed by the formulation.

    Attributes
    ----------
    reads / writes:
        ``(Nd, I, K)`` demand counts (demanders are topology sites).
    reach:
        ``(Nd, Ns)`` binary: demander nd is served within Tlat by a replica
        on storer ns, under the class's routing knowledge
        (``serve & (latency <= tlat)``).
    serve:
        ``(Nd, Ns)`` binary fetch matrix without the latency threshold:
        which storers may serve nd at all (routing knowledge (18)/(19)).
        The average-latency goal routes over this matrix.
    origin_covers:
        ``(Nd,)`` binary: the origin alone serves nd within Tlat (free
        coverage).
    latency:
        ``(Nd, Ns)`` effective access latency (ms) from demander to storer —
        used by the average-latency goal and the gamma penalty.
    origin_latency:
        ``(Nd,)`` effective latency to the origin (miss path).
    know:
        ``(Ns, Nd)`` sphere-of-knowledge matrix for the create fixing.
    storer_ids:
        Topology node ids of the storers (length Ns).
    initial_store:
        Optional ``(Ns, K)`` binary initial placement (constraint (4)
        default: empty).
    interval_s:
        Evaluation-interval length in seconds.
    """

    reads: np.ndarray
    writes: np.ndarray
    reach: np.ndarray
    serve: np.ndarray
    origin_covers: np.ndarray
    latency: np.ndarray
    origin_latency: np.ndarray
    know: np.ndarray
    storer_ids: np.ndarray
    interval_s: float
    initial_store: Optional[np.ndarray] = None
    warmup_intervals: int = 0

    def qos_reads(self) -> np.ndarray:
        """Reads that count toward the performance goal (warm-up excluded).

        Warm-up reads still drive activity history and knowledge — they are
        only excluded from the goal's numerator and denominator.
        """
        if self.warmup_intervals <= 0:
            return self.reads
        masked = self.reads.copy()
        masked[:, : self.warmup_intervals, :] = 0.0
        return masked

    @property
    def num_demanders(self) -> int:
        return self.reads.shape[0]

    @property
    def num_intervals(self) -> int:
        return self.reads.shape[1]

    @property
    def num_objects(self) -> int:
        return self.reads.shape[2]

    @property
    def num_storers(self) -> int:
        return int(self.reach.shape[1])

    def reads_per_demander(self) -> np.ndarray:
        return self.reads.sum(axis=(1, 2))


@dataclass
class MCPerfProblem:
    """System + workload + performance goal + cost model.

    Attributes
    ----------
    topology:
        The wide-area system; ``topology.origin`` is the headquarters.
    demand:
        Per-(site, interval, object) read/write counts.
    goal:
        :class:`~repro.core.goals.QoSGoal` or
        :class:`~repro.core.goals.AverageLatencyGoal`.
    costs:
        Unit costs (paper defaults: alpha = beta = 1, rest 0).
    origin_free:
        When True (paper case study) the origin stores all objects at no
        cost and is not a placement site.
    storage_nodes:
        Restrict placement to these topology nodes (deployment scenario
        phase 2); default: every node.
    assignment:
        Per-site assigned access node (topology ids).  When set, every
        access from site ``s`` routes through ``assignment[s]`` — the §6.2
        semantics.  Requires ``storage_nodes`` to contain every assigned
        node.
    initial_placement:
        Optional ``(N, K)`` binary initial replica placement (relaxes
        constraint (4)).
    warmup_intervals:
        Exclude reads in the first intervals from the performance goal's
        accounting (they still warm activity history).  An extension over
        the paper: at a coarse evaluation interval, reactive classes are
        otherwise capped by cold-start misses in interval 0 (nothing may be
        placed before the first access), hiding the cost differences the
        figures study.  Storage/creation cost is still charged from
        interval 0.
    """

    topology: Topology
    demand: DemandMatrix
    goal: PerformanceGoal
    costs: CostModel = field(default_factory=CostModel.paper_defaults)
    origin_free: bool = True
    storage_nodes: Optional[Sequence[int]] = None
    assignment: Optional[np.ndarray] = None
    initial_placement: Optional[np.ndarray] = None
    warmup_intervals: int = 0

    def __post_init__(self) -> None:
        n = self.topology.num_nodes
        if self.demand.num_nodes != n:
            raise ValueError(
                f"demand has {self.demand.num_nodes} nodes, topology has {n}"
            )
        if not isinstance(self.goal, (QoSGoal, AverageLatencyGoal)):
            raise TypeError("goal must be a QoSGoal or AverageLatencyGoal")
        if self.storage_nodes is not None:
            self.storage_nodes = [int(s) for s in self.storage_nodes]
            for s in self.storage_nodes:
                if not 0 <= s < n:
                    raise ValueError(f"storage node {s} out of range")
            if len(set(self.storage_nodes)) != len(self.storage_nodes):
                raise ValueError("storage_nodes contains duplicates")
        if self.assignment is not None:
            self.assignment = np.asarray(self.assignment, dtype=np.int64)
            if self.assignment.shape != (n,):
                raise ValueError("assignment must map every topology node")
            allowed = set(
                self.storage_nodes if self.storage_nodes is not None else range(n)
            )
            if self.origin_free:
                # Users may also be assigned directly to the headquarters.
                allowed.add(self.topology.origin)
            for nd, a in enumerate(self.assignment):
                if int(a) not in allowed:
                    raise ValueError(
                        f"site {nd} assigned to {a}, which is not a storage node"
                    )
        if self.initial_placement is not None:
            self.initial_placement = np.asarray(self.initial_placement)
            if self.initial_placement.shape != (n, self.demand.num_objects):
                raise ValueError("initial_placement must be (nodes, objects)")
        if not 0 <= self.warmup_intervals < self.demand.num_intervals:
            raise ValueError(
                "warmup_intervals must be in [0, num_intervals); got "
                f"{self.warmup_intervals} of {self.demand.num_intervals}"
            )

    # -- lowering -----------------------------------------------------------

    @property
    def tlat_ms(self) -> float:
        return self.goal.tlat_ms

    def storer_ids(self) -> np.ndarray:
        """Topology ids of placement sites (origin excluded when free)."""
        nodes = (
            list(self.storage_nodes)
            if self.storage_nodes is not None
            else list(self.topology.nodes())
        )
        if self.origin_free and self.topology.origin in nodes:
            nodes = [s for s in nodes if s != self.topology.origin]
        return np.asarray(nodes, dtype=np.int64)

    def instance(self, properties: Optional[HeuristicProperties] = None) -> PlacementInstance:
        """Lower to the demanders×storers view under a class's routing/knowledge."""
        props = properties or HeuristicProperties()
        topo = self.topology
        lat = topo.latency
        origin = topo.origin
        tlat = self.tlat_ms
        nd_count = topo.num_nodes
        storers = self.storer_ids()
        ns_count = len(storers)

        if self.assignment is not None:
            # §6.2 semantics: all accesses of site nd go through a = assignment[nd].
            assigned = self.assignment
            base = lat[np.arange(nd_count), assigned]  # nd -> its access node
            eff_lat = base[:, None] + lat[np.ix_(assigned, storers)]
            origin_lat = base + lat[assigned, origin]
            if props.routing is Routing.LOCAL:
                serve = (storers[None, :] == assigned[:, None]).astype(np.int8)
            else:
                serve = np.ones((nd_count, ns_count), dtype=np.int8)
        else:
            assigned = None
            eff_lat = lat[:, storers].copy()
            origin_lat = lat[:, origin].copy()
            if props.routing is Routing.LOCAL:
                # A site is served only by its own replica store.
                serve = (storers[None, :] == np.arange(nd_count)[:, None]).astype(np.int8)
            else:
                serve = np.ones((nd_count, ns_count), dtype=np.int8)
        reach = (serve & (eff_lat <= tlat)).astype(np.int8)

        if self.origin_free:
            origin_covers = (origin_lat <= tlat).astype(np.int8)
        else:
            origin_covers = np.zeros(nd_count, dtype=np.int8)

        know = knowledge_matrix(
            props,
            num_storers=ns_count,
            num_demanders=nd_count,
            assignment=assigned,
            storer_ids=storers,
        )

        initial = None
        if self.initial_placement is not None:
            initial = self.initial_placement[storers].astype(np.int8)

        return PlacementInstance(
            reads=self.demand.reads,
            writes=self.demand.writes,
            reach=reach,
            serve=serve,
            origin_covers=origin_covers,
            latency=eff_lat,
            origin_latency=origin_lat,
            know=know,
            storer_ids=storers,
            interval_s=self.demand.interval_s,
            initial_store=initial,
            warmup_intervals=self.warmup_intervals,
        )

    def __repr__(self) -> str:
        return (
            f"MCPerfProblem(nodes={self.topology.num_nodes}, "
            f"intervals={self.demand.num_intervals}, "
            f"objects={self.demand.num_objects}, goal={self.goal.describe()!r})"
        )
