"""The infrastructure-deployment methodology (§6.2).

Two phases:

1. **Where to deploy.**  Solve MC-PERF with a node-opening cost (ζ, paper:
   10 000) in the objective.  The LP's fractional ``open`` values rank the
   sites; the smallest prefix whose reduced system can still meet the goal
   becomes the deployed node set.
2. **Which heuristic.**  Users of sites without a node are assigned to the
   nearest deployed node (or the headquarters) and *all* their accesses
   route through it.  Class lower bounds are recomputed on this reduced,
   more constrained system — §6.1's methodology, now without opening costs
   and (as in the paper's Figure 3) with all classes made reactive.
"""

from __future__ import annotations

import dataclasses
import logging
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.core.bounds import LowerBoundResult, compute_lower_bound
from repro.core.classes import HeuristicClass, get_class
from repro.core.costs import CostModel
from repro.core.formulation import build_formulation
from repro.core.goals import PerformanceGoal
from repro.core.problem import MCPerfProblem
from repro.core.selection import SelectionReport, select_heuristic
from repro.lp.solution import SolveStatus
from repro.topology.graph import Topology
from repro.workload.demand import DemandMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.runner.execute import ExperimentRunner

logger = logging.getLogger(__name__)

#: The classes plotted in Figure 3 (all reactive; 'reactive' is the general
#: reactive bound).
FIGURE3_CLASSES: List[str] = [
    "reactive",
    "storage-constrained",
    "replica-constrained",
    "caching",
]


@dataclass
class DeploymentPlan:
    """Outcome of the two-phase deployment methodology."""

    feasible: bool
    open_nodes: List[int] = field(default_factory=list)
    assignment: Optional[np.ndarray] = None
    open_fractions: Dict[int, float] = field(default_factory=dict)
    phase1_bound: Optional[LowerBoundResult] = None
    phase2_problem: Optional[MCPerfProblem] = None
    selection: Optional[SelectionReport] = None
    reason: str = ""

    @property
    def recommended(self) -> Optional[str]:
        return self.selection.recommended if self.selection else None

    @property
    def failures(self) -> Dict[str, object]:
        """Phase-2 bound tasks that failed (class name -> TaskFailure).

        Empty when every bound solved or when phase 2 never ran; a failed
        class is missing from the ranking, not proven infeasible.
        """
        return dict(self.selection.failures) if self.selection else {}

    def render(self) -> str:
        if not self.feasible:
            return f"Deployment planning failed: {self.reason}"
        lines = [
            f"Phase 1: deploy {len(self.open_nodes)} node(s): {sorted(self.open_nodes)}",
            "  fractional opens: "
            + ", ".join(
                f"{node}={frac:.2f}"
                for node, frac in sorted(
                    self.open_fractions.items(), key=lambda kv: -kv[1]
                )
                if frac > 1e-6
            ),
            "",
            "Phase 2 (reduced topology, reactive classes):",
        ]
        if self.selection:
            lines.append(self.selection.render())
        return "\n".join(lines)


def assign_users(
    topology: Topology, open_nodes: Sequence[int], include_origin: bool = True
) -> np.ndarray:
    """Assign each site's users to the nearest deployed node.

    Sites with a deployed node keep it; others get the closest deployed node
    (optionally including the headquarters), ties broken by node id — the
    paper's "assigned to the node of another, neighboring site".
    """
    candidates = list(dict.fromkeys(int(n) for n in open_nodes))
    if include_origin and topology.origin not in candidates:
        candidates.append(topology.origin)
    if not candidates:
        raise ValueError("no candidate nodes to assign users to")
    assignment = np.zeros(topology.num_nodes, dtype=np.int64)
    for nd in topology.nodes():
        if nd in candidates:
            assignment[nd] = nd
        else:
            assignment[nd] = topology.closest_node(nd, candidates)
    return assignment


def _reactive_variant(cls: HeuristicClass) -> HeuristicClass:
    """The class with reactive placement forced on (Figure 3 setting)."""
    if cls.properties.reactive:
        return cls
    props = dataclasses.replace(cls.properties, reactive=True)
    return HeuristicClass(
        name=cls.name,
        properties=props,
        description=cls.description + " (reactive variant)",
        examples=cls.examples,
    )


def plan_deployment(
    topology: Topology,
    demand: DemandMatrix,
    goal: PerformanceGoal,
    costs: Optional[CostModel] = None,
    classes: Optional[Sequence[object]] = None,
    force_reactive: bool = True,
    origin_free: bool = True,
    max_nodes: Optional[int] = None,
    do_rounding: bool = True,
    backend: str = "auto",
    warmup_intervals: int = 0,
    runner: Optional["ExperimentRunner"] = None,
) -> DeploymentPlan:
    """Run both phases of the §6.2 methodology.

    Parameters
    ----------
    costs:
        Phase-1 cost model; defaults to the paper's deployment setting
        (alpha = beta = 1, zeta = 10 000).  Phase 2 always drops zeta.
    classes:
        Phase-2 candidate classes; defaults to the Figure-3 set.
    force_reactive:
        Apply the paper's "all heuristics considered are reactive" rule to
        the phase-2 classes.
    max_nodes:
        Optional cap on the number of nodes to deploy.
    warmup_intervals:
        Exclude the first intervals from the goal's accounting (see
        :class:`~repro.core.problem.MCPerfProblem`); recommended when the
        phase-2 classes are reactive and the evaluation interval is coarse.
    runner:
        Optional :class:`~repro.runner.execute.ExperimentRunner` for the
        phase-2 per-class bounds (the feasibility-prefix probes of phase 1
        are inherently sequential and stay in-process).
    """
    costs = costs or CostModel.deployment_defaults()
    if costs.zeta <= 0:
        raise ValueError("phase 1 needs a positive node-opening cost (zeta)")

    phase1 = MCPerfProblem(
        topology=topology,
        demand=demand,
        goal=goal,
        costs=costs,
        origin_free=origin_free,
        warmup_intervals=warmup_intervals,
    )
    form = build_formulation(phase1, None, with_open_vars=True)
    if form.structurally_infeasible:
        return DeploymentPlan(feasible=False, reason=form.infeasible_reason)
    solution = form.lp.solve(backend=backend)
    if solution.status is not SolveStatus.OPTIMAL:
        reason = (
            "phase-1 LP infeasible: no node set can meet the goal"
            if solution.status is SolveStatus.INFEASIBLE
            else f"phase-1 LP failed: {solution.message}"
        )
        return DeploymentPlan(feasible=False, reason=reason)

    opens = form.open_values(solution.values)
    storer_ids = form.instance.storer_ids
    fractions = {int(storer_ids[ns]): float(opens[ns]) for ns in range(len(storer_ids))}
    phase1_bound = LowerBoundResult(
        properties=form.properties,
        feasible=True,
        lp_cost=form.bound_cost(solution),
        status=solution.status.value,
        num_variables=form.lp.num_variables,
        num_constraints=form.lp.num_constraints,
    )

    # Rank sites by fractional open value; deploy the smallest feasible prefix.
    ranked = sorted(fractions, key=lambda node: (-fractions[node], node))
    limit = max_nodes if max_nodes is not None else len(ranked)
    start = max(1, math.ceil(sum(fractions.values()) - 1e-6))
    phase2_costs = costs.with_zeta(0.0)
    # Feasibility must hold for the class family phase 2 will choose from:
    # with the paper's "all heuristics are reactive" rule, probe the reactive
    # bound, not the proactive general one.
    from repro.core.properties import HeuristicProperties

    probe_props = HeuristicProperties(reactive=True) if force_reactive else None

    chosen: Optional[List[int]] = None
    phase2_problem: Optional[MCPerfProblem] = None
    for count in range(min(start, limit), limit + 1):
        subset = ranked[:count]
        assignment = assign_users(topology, subset, include_origin=origin_free)
        candidate = MCPerfProblem(
            topology=topology,
            demand=demand,
            goal=goal,
            costs=phase2_costs,
            origin_free=origin_free,
            storage_nodes=subset,
            assignment=assignment,
            warmup_intervals=warmup_intervals,
        )
        probe = compute_lower_bound(
            candidate, probe_props, do_rounding=False, backend=backend
        )
        if probe.feasible:
            logger.info("phase 1: deploying %d node(s): %s", count, sorted(subset))
            chosen = subset
            phase2_problem = candidate
            break
        logger.debug("phase 1: %d node(s) insufficient (%s)", count, probe.reason)
    if chosen is None or phase2_problem is None:
        return DeploymentPlan(
            feasible=False,
            open_fractions=fractions,
            phase1_bound=phase1_bound,
            reason="no deployable node set meets the goal "
            "(even with every candidate site opened)",
        )

    if classes is None:
        candidates = [get_class(n) for n in FIGURE3_CLASSES]
    else:
        candidates = [
            c if isinstance(c, HeuristicClass) else get_class(str(c)) for c in classes
        ]
    if force_reactive:
        candidates = [_reactive_variant(c) for c in candidates]

    selection = select_heuristic(
        phase2_problem,
        classes=candidates,
        do_rounding=do_rounding,
        backend=backend,
        runner=runner,
    )
    return DeploymentPlan(
        feasible=True,
        open_nodes=list(chosen),
        assignment=phase2_problem.assignment,
        open_fractions=fractions,
        phase1_bound=phase1_bound,
        phase2_problem=phase2_problem,
        selection=selection,
    )
