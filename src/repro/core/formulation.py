"""The MC-PERF LP/IP formulation (§3, §4).

:func:`build_formulation` lowers a :class:`~repro.core.problem.MCPerfProblem`
plus a set of :class:`~repro.core.properties.HeuristicProperties` into a
:class:`~repro.lp.model.LinearProgram` whose LP relaxation optimum is the
class's lower bound.

Mapping from the paper's constraints:

* (1) objective — alpha/beta on store/create variables (capacity-charged
  under SC/RC, see DESIGN.md §5), plus delta write costs and gamma penalties.
* (2) QoS rows per goal scope; (7)–(10) routing rows for the average goal.
* (3)/(4) create-coupling rows with empty (or given) initial placement.
* (5)/(18) covered rows over the class's reach matrix.
* (6) relaxed to bounds [0, 1].
* (16)/(16a) storage-constraint rows against capacity variables.
* (17)/(17a) replica-constraint rows against replica-count variables.
* (20)/(20a)/(21) — Know/Hist/React reduce to fixing create variables to 0,
  implemented as *omitting* those variables and forcing store monotonicity.
* (13)/(14)/(15) node-opening variables when ``costs.zeta > 0`` or the
  deployment driver asks for them.

Variable pruning (results are unaffected; see unit tests against the
unpruned formulation): objects with no demand get no variables; a storer
gets variables for object k only if it can serve some demander of k; covered
variables exist only for demand cells not already covered by the origin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.goals import AverageLatencyGoal, GoalScope, QoSGoal
from repro.core.problem import MCPerfProblem, PlacementInstance
from repro.core.properties import (
    HeuristicProperties,
    ReplicaConstraint,
    StorageConstraint,
)
from repro.lp.model import LinearProgram
from repro.perf import PERF

#: Largest QoS-fraction re-target that keeps the previous basis as a warm
#: hint.  Drift-sized moves (daemon epochs, fine sweeps) repair in tens of
#: pivots; coarse sweep jumps (0.95 -> 0.99) move the optimum by thousands
#: and are faster solved cold.
WARM_RETARGET_DELTA = 2e-3


@dataclass
class Formulation:
    """An assembled MC-PERF LP plus the index structures to interpret it."""

    lp: LinearProgram
    problem: MCPerfProblem
    properties: HeuristicProperties
    instance: PlacementInstance
    store_idx: np.ndarray  # (Ns, I, K) int32, -1 where absent
    create_idx: np.ndarray  # (Ns, I, K) int32, -1 where absent
    covered_idx: np.ndarray  # (Nd, I, K) int32, -1 where absent
    active_objects: np.ndarray
    allowed_create: Optional[np.ndarray]  # (Ns, I, K) bool, None = unrestricted
    objective_constant: float = 0.0
    structurally_infeasible: bool = False
    infeasible_reason: str = ""
    cap_index: Optional[int] = None  # SC uniform capacity variable
    cap_node_index: Optional[np.ndarray] = None  # (Ns,) SC per-node, -1 absent
    rep_index: Optional[int] = None  # RC uniform replica-count variable
    rep_object_index: Optional[np.ndarray] = None  # (K,) RC per-object, -1 absent
    open_index: Optional[np.ndarray] = None  # (Ns,) opening variables, -1 absent
    route_idx: Dict[Tuple[int, int, int], Tuple[np.ndarray, np.ndarray, int]] = field(
        default_factory=dict
    )
    # QoS-row metadata for set_qos_fraction(): scope key ->
    # (row index or -1, total reads, origin-covered reads, max coverable).
    qos_meta: Dict[object, Tuple[int, float, float, float]] = field(default_factory=dict)
    # Most recent optimal LPSolution for this formulation; sweeps that
    # re-target the QoS rows (set_qos_fraction) warm-start the next solve
    # from its basis.  Never serialized; None whenever the last solve was
    # not optimal.
    last_solution: Optional[object] = None

    # -- solution accessors --------------------------------------------------

    def store_array(self, values) -> np.ndarray:
        """Extract the (Ns, I, K) store matrix from a solution vector."""
        out = np.zeros(self.store_idx.shape, dtype=float)
        mask = self.store_idx >= 0
        out[mask] = np.asarray(values)[self.store_idx[mask]]
        return out

    def create_array(self, values) -> np.ndarray:
        """Extract the (Ns, I, K) create matrix from a solution vector."""
        out = np.zeros(self.create_idx.shape, dtype=float)
        mask = self.create_idx >= 0
        out[mask] = np.asarray(values)[self.create_idx[mask]]
        return out

    def covered_array(self, values) -> np.ndarray:
        """Extract the (Nd, I, K) covered matrix (1.0 where origin-covered)."""
        inst = self.instance
        out = np.zeros(self.covered_idx.shape, dtype=float)
        mask = self.covered_idx >= 0
        out[mask] = np.asarray(values)[self.covered_idx[mask]]
        # Demand covered by the origin is covered by definition.
        for nd in range(inst.num_demanders):
            if inst.origin_covers[nd]:
                out[nd][inst.reads[nd] > 0] = 1.0
        return out

    def open_values(self, values) -> Optional[np.ndarray]:
        if self.open_index is None:
            return None
        out = np.zeros(len(self.open_index), dtype=float)
        for ns, idx in enumerate(self.open_index):
            if idx >= 0:
                out[ns] = float(values[idx])
        return out

    def bound_cost(self, solution) -> float:
        """LP objective plus the constant part (gamma penalties)."""
        return float(solution.objective) + self.objective_constant

    def qos_shadow_prices(self, solution) -> Dict[object, float]:
        """Marginal cost of tightening each scope's QoS requirement.

        For scope key ``s`` the returned value is d(bound)/d(fraction) —
        "what would one more unit of required coverage fraction cost" —
        taken from the LP duals of the QoS rows.  Keys whose row is not
        binding (or absent) report 0.  Empty when the backend returned no
        duals.
        """
        if solution.duals is None:
            return {}
        prices: Dict[object, float] = {}
        for key, (row, denom, _const, _maxp) in self.qos_meta.items():
            if row >= 0:
                # rhs = fraction * denom - const, so d rhs / d fraction = denom.
                prices[key] = float(solution.duals[row]) * denom
            else:
                prices[key] = 0.0
        return prices

    def set_qos_fraction(self, fraction: float) -> None:
        """Re-target the QoS rows to a new fraction without rebuilding.

        QoS sweeps (Figures 1-3) call this to reuse one formulation per
        class across all sweep levels; only the constraint right-hand sides
        and the structural-feasibility flags change.
        """
        import dataclasses

        from repro.core.goals import QoSGoal

        if not isinstance(self.problem.goal, QoSGoal):
            raise TypeError("set_qos_fraction needs a QoS-goal formulation")
        if not self.qos_meta:
            raise RuntimeError("formulation carries no QoS rows to re-target")
        # Warm-start policy: a drift-sized re-target keeps the previous
        # basis nearly optimal (tens of repair pivots); a coarse jump moves
        # the optimum by thousands of pivots and a warm attempt costs more
        # than a cold solve.  Past WARM_RETARGET_DELTA the hint is dropped.
        if abs(fraction - self.problem.goal.fraction) > WARM_RETARGET_DELTA:
            self.last_solution = None
        goal = dataclasses.replace(self.problem.goal, fraction=fraction)
        self.problem = dataclasses.replace(self.problem, goal=goal)
        self.structurally_infeasible = False
        self.infeasible_reason = ""
        PERF.count("form.retarget")
        for key, (row, denom, const, max_possible) in self.qos_meta.items():
            required = fraction * denom
            if row >= 0:
                # Patch API: keeps the cached solver arrays in sync so the
                # next solve at this level is assembly-free.
                self.lp.set_rhs(row, required - const)
            if max_possible < required - 1e-9:
                self.structurally_infeasible = True
                self.infeasible_reason = (
                    f"goal scope {key!r}: at most {max_possible / denom:.5f} of "
                    f"reads coverable, goal requires {fraction:.5f}"
                )


def compute_allowed_create(
    instance: PlacementInstance, props: HeuristicProperties
) -> Optional[np.ndarray]:
    """The (Ns, I, K) mask of creations permitted by Know/Hist/React.

    ``allowed[ns, i, k]`` is True when some demander in storer ns's sphere of
    knowledge accessed object k within the class's activity-history window —
    the paper's constraint (20) (proactive) or (20a)/(21) (reactive).
    Returns None when the class does not restrict creation.
    """
    if not props.restricts_creation:
        return None
    accessed = (instance.reads > 0).astype(np.int8)  # (Nd, I, K)
    # sphere[ns, i, k] = any demander in ns's sphere accessed k in interval i.
    sphere = np.einsum("sd,dik->sik", instance.know, accessed) > 0
    ns_count, intervals, objects = sphere.shape

    window = props.history_window
    allowed = np.zeros_like(sphere)
    # Prefix-OR via cumulative sums so both bounded and unbounded windows are
    # O(Ns * I * K).
    cum = np.cumsum(sphere.astype(np.int64), axis=1)  # accesses in [0 .. i]

    def seen_between(lo: int, hi: int) -> np.ndarray:
        """sphere accessed in intervals [lo, hi] (bool, per (ns, k))."""
        if hi < 0 or lo > hi:
            return np.zeros((ns_count, objects), dtype=bool)
        lo = max(lo, 0)
        upper = cum[:, hi, :]
        lower = cum[:, lo - 1, :] if lo > 0 else 0
        return (upper - lower) > 0

    for i in range(intervals):
        if props.reactive:
            hi = i - 1
            lo = 0 if window is None else i - window
        else:
            hi = i
            lo = 0 if window is None else i - window + 1
        allowed[:, i, :] = seen_between(lo, hi)

    # Constraint (21): an initial placement counts as history for reactive
    # heuristics whose window still covers the virtual interval -1.
    if props.reactive and instance.initial_store is not None:
        horizon = intervals if window is None else min(window, intervals)
        init = instance.initial_store > 0
        for i in range(horizon):
            allowed[:, i, :] |= init
    return allowed


def build_formulation(
    problem: MCPerfProblem,
    properties: Optional[HeuristicProperties] = None,
    with_open_vars: Optional[bool] = None,
    assembly: str = "vectorized",
) -> Formulation:
    """Assemble the MC-PERF LP for one heuristic class.

    Parameters
    ----------
    problem:
        The system/workload/goal/cost specification.
    properties:
        The heuristic class's properties; ``None`` builds the general bound.
    with_open_vars:
        Force node-opening variables on/off; by default they are created
        iff ``problem.costs.zeta > 0``.
    assembly:
        ``"vectorized"`` (default) builds the bulk row families as NumPy
        blocks (:mod:`repro.core.assembly`); ``"legacy"`` keeps the
        row-by-row builder.  Both produce the same model — the legacy path
        exists as the equivalence-test oracle and a debugging fallback.
    """
    if assembly == "vectorized":
        from repro.core.assembly import build_formulation_vectorized

        PERF.count("form.build.vectorized")
        with PERF.timer("form.build"):
            return build_formulation_vectorized(problem, properties, with_open_vars)
    if assembly != "legacy":
        raise ValueError(f"unknown assembly mode: {assembly!r}")
    PERF.count("form.build.legacy")
    with PERF.timer("form.build"):
        return _build_formulation_legacy(problem, properties, with_open_vars)


def _build_formulation_legacy(
    problem: MCPerfProblem,
    properties: Optional[HeuristicProperties] = None,
    with_open_vars: Optional[bool] = None,
) -> Formulation:
    """The original row-by-row builder (the vectorized path's oracle)."""
    props = properties or HeuristicProperties()
    inst = problem.instance(props)
    costs = problem.costs
    goal = problem.goal
    nd_count, intervals, objects = inst.reads.shape
    ns_count = inst.num_storers
    use_open = with_open_vars if with_open_vars is not None else costs.zeta > 0

    lp = LinearProgram(name=f"mcperf[{props.describe()}]")

    reads = inst.qos_reads()  # warm-up reads drive history, not the goal
    demanded = reads.sum(axis=1) > 0  # (Nd, K): nd ever reads k (post warm-up)
    read_active = np.nonzero(reads.sum(axis=(0, 1)) > 0)[0]

    if isinstance(goal, AverageLatencyGoal):
        # Any storer a demander may fetch from is useful, regardless of Tlat.
        useful = (inst.serve.T.astype(np.int64) @ demanded.astype(np.int64)) > 0
    else:
        useful = (inst.reach.T.astype(np.int64) @ demanded.astype(np.int64)) > 0
    # Objects with writes but no reads still never benefit from replicas
    # (writes only add cost), so only read-active objects get variables.

    allowed = compute_allowed_create(inst, props)
    # A storer can hold k during i only if creation was permitted at some
    # j <= i (or an initial replica exists): store variables outside this
    # cumulative support are identically zero and are pruned, which also
    # makes the structural QoS-coverage check below exact.
    possible = None
    if allowed is not None:
        possible = np.logical_or.accumulate(allowed, axis=1)
        if inst.initial_store is not None:
            possible |= (inst.initial_store > 0)[:, None, :]

    sc = props.storage_constraint
    rc = props.replica_constraint
    # Storage accounting: provisioned capacity under SC, replica-count
    # capacity under RC, per-store-interval otherwise (DESIGN.md §5).
    if sc is not StorageConstraint.NONE:
        store_alpha = 0.0
    elif rc is not ReplicaConstraint.NONE:
        store_alpha = 0.0
    else:
        store_alpha = costs.alpha

    writes_per_ik = inst.writes.sum(axis=0)  # (I, K): update messages per replica

    store_idx = np.full((ns_count, intervals, objects), -1, dtype=np.int64)
    create_idx = np.full((ns_count, intervals, objects), -1, dtype=np.int64)
    covered_idx = np.full((nd_count, intervals, objects), -1, dtype=np.int64)

    # --- store / create variables ------------------------------------------
    for k in read_active:
        for ns in range(ns_count):
            if not useful[ns, k]:
                continue
            for i in range(intervals):
                if possible is not None and not possible[ns, i, k]:
                    continue
                obj_coeff = store_alpha + costs.delta * writes_per_ik[i, k]
                store_idx[ns, i, k] = lp.var(
                    f"store[n{ns},i{i},k{k}]", upper=1.0, obj=obj_coeff
                ).index
                if allowed is None or allowed[ns, i, k]:
                    create_idx[ns, i, k] = lp.var(
                        f"create[n{ns},i{i},k{k}]", upper=1.0, obj=costs.beta
                    ).index

    # --- create coupling (3)/(4) --------------------------------------------
    init = inst.initial_store
    for k in read_active:
        for ns in range(ns_count):
            init_val = float(init[ns, k]) if init is not None else 0.0
            for i in range(intervals):
                s_cur = store_idx[ns, i, k]
                if s_cur < 0:
                    continue
                c_cur = create_idx[ns, i, k]
                s_prev = store_idx[ns, i - 1, k] if i > 0 else -1
                if s_prev < 0:
                    # First interval where storage is possible: the previous
                    # store is the initial placement (constraint (4)).
                    if c_cur >= 0:
                        lp.add_row([s_cur, c_cur], [1.0, -1.0], "<=", init_val)
                    else:
                        lp.set_bounds(s_cur, 0.0, min(1.0, init_val))
                else:
                    if c_cur >= 0:
                        lp.add_row([s_cur, s_prev, c_cur], [1.0, -1.0, -1.0], "<=", 0.0)
                    else:
                        lp.add_row([s_cur, s_prev], [1.0, -1.0], "<=", 0.0)

    # --- storage constraint (16)/(16a) ---------------------------------------
    cap_index = None
    cap_node_index = None
    if sc is StorageConstraint.UNIFORM:
        cap_index = lp.var("capacity", obj=costs.alpha * ns_count * intervals).index
    elif sc is StorageConstraint.PER_NODE:
        cap_node_index = np.full(ns_count, -1, dtype=np.int64)
        for ns in range(ns_count):
            if (store_idx[ns] >= 0).any():
                cap_node_index[ns] = lp.var(
                    f"capacity[n{ns}]", obj=costs.alpha * intervals
                ).index
    if sc is not StorageConstraint.NONE:
        for ns in range(ns_count):
            cap = cap_index if cap_index is not None else (
                cap_node_index[ns] if cap_node_index is not None else -1
            )
            if cap is None or cap < 0:
                continue
            for i in range(intervals):
                idxs = [store_idx[ns, i, k] for k in read_active if store_idx[ns, i, k] >= 0]
                if not idxs:
                    continue
                lp.add_row(
                    idxs + [int(cap)],
                    [1.0] * len(idxs) + [-1.0],
                    "<=",
                    0.0,
                    name=f"sc[n{ns},i{i}]",
                )

    # --- replica constraint (17)/(17a) ----------------------------------------
    rep_index = None
    rep_object_index = None
    charge_rc = rc is not ReplicaConstraint.NONE and sc is StorageConstraint.NONE
    if rc is ReplicaConstraint.UNIFORM:
        rep_obj = costs.alpha * intervals * len(read_active) if charge_rc else 0.0
        rep_index = lp.var("replicas", obj=rep_obj).index
    elif rc is ReplicaConstraint.PER_OBJECT:
        rep_object_index = np.full(objects, -1, dtype=np.int64)
        for k in read_active:
            rep_object_index[k] = lp.var(
                f"replicas[k{k}]", obj=costs.alpha * intervals if charge_rc else 0.0
            ).index
    if rc is not ReplicaConstraint.NONE:
        for k in read_active:
            rep = rep_index if rep_index is not None else int(rep_object_index[k])
            for i in range(intervals):
                idxs = [store_idx[ns, i, k] for ns in range(ns_count) if store_idx[ns, i, k] >= 0]
                if not idxs:
                    continue
                lp.add_row(
                    idxs + [rep],
                    [1.0] * len(idxs) + [-1.0],
                    "<=",
                    0.0,
                    name=f"rc[i{i},k{k}]",
                )

    # --- node opening (13)/(14) -------------------------------------------------
    open_index = None
    if use_open:
        open_index = np.full(ns_count, -1, dtype=np.int64)
        for ns in range(ns_count):
            if (store_idx[ns] >= 0).any():
                open_index[ns] = lp.var(f"open[n{ns}]", upper=1.0, obj=costs.zeta).index
        for ns in range(ns_count):
            if open_index[ns] < 0:
                continue
            for k in read_active:
                for i in range(intervals):
                    s = store_idx[ns, i, k]
                    if s >= 0:
                        lp.add_row([s, int(open_index[ns])], [1.0, -1.0], "<=", 0.0)

    objective_constant = 0.0
    structurally_infeasible = False
    infeasible_reason = ""

    if isinstance(goal, QoSGoal):
        # --- covered variables + rows (5)/(18) -------------------------------
        gamma_pen = np.maximum(inst.origin_latency - goal.tlat_ms, 0.0) * costs.gamma
        cell_lists: Dict[object, List[Tuple[int, float]]] = {}
        covered_const: Dict[object, float] = {}
        total_reads: Dict[object, float] = {}

        def scope_key(nd: int, k: int):
            scope = goal.scope
            if scope is GoalScope.PER_USER:
                return nd
            if scope is GoalScope.OVERALL:
                return "all"
            if scope is GoalScope.PER_OBJECT:
                return ("k", k)
            return (nd, k)

        for nd in range(nd_count):
            reachable = np.nonzero(inst.reach[nd])[0]
            for k in read_active:
                col = reads[nd, :, k]
                nz = np.nonzero(col)[0]
                for i in nz:
                    r = float(col[i])
                    key = scope_key(nd, int(k))
                    total_reads[key] = total_reads.get(key, 0.0) + r
                    if inst.origin_covers[nd]:
                        covered_const[key] = covered_const.get(key, 0.0) + r
                        continue
                    holders = [
                        int(store_idx[ns, i, k]) for ns in reachable if store_idx[ns, i, k] >= 0
                    ]
                    if costs.gamma > 0 and gamma_pen[nd] > 0:
                        objective_constant += gamma_pen[nd] * r
                    if not holders:
                        continue  # permanently uncoverable cell
                    cov_obj = -(gamma_pen[nd] * r) if costs.gamma > 0 else 0.0
                    cov = lp.var(f"covered[n{nd},i{i},k{k}]", upper=1.0, obj=cov_obj).index
                    covered_idx[nd, i, k] = cov
                    lp.add_row(
                        [cov] + holders,
                        [1.0] + [-1.0] * len(holders),
                        "<=",
                        0.0,
                        name=f"cover[n{nd},i{i},k{k}]",
                    )
                    cell_lists.setdefault(key, []).append((cov, r))

        # --- QoS rows (2) ------------------------------------------------------
        # Rows are built for every scope key with coverable cells, even when
        # trivially satisfied at this fraction, so set_qos_fraction() can
        # re-target the same formulation for sweep reuse.
        qos_meta: Dict[object, Tuple[int, float, float, float]] = {}
        for key, denom in total_reads.items():
            if denom <= 0:
                continue
            required = goal.fraction * denom
            const = covered_const.get(key, 0.0)
            cells = cell_lists.get(key, [])
            max_possible = const + sum(r for _idx, r in cells)
            row_index = -1
            if cells:
                lp.add_row(
                    [idx for idx, _r in cells],
                    [r for _idx, r in cells],
                    ">=",
                    required - const,
                    name=f"qos[{key}]",
                )
                row_index = lp.num_constraints - 1
            qos_meta[key] = (row_index, float(denom), float(const), float(max_possible))
            if max_possible < required - 1e-9:
                structurally_infeasible = True
                infeasible_reason = (
                    f"goal scope {key!r}: at most {max_possible / denom:.5f} of reads "
                    f"coverable, goal requires {goal.fraction:.5f}"
                )
    else:
        # --- average-latency goal (7)-(10) ------------------------------------
        _build_average_latency(
            lp, inst, goal, store_idx, read_active, covered_idx, props
        )

    form = Formulation(
        lp=lp,
        problem=problem,
        properties=props,
        instance=inst,
        store_idx=store_idx,
        create_idx=create_idx,
        covered_idx=covered_idx,
        active_objects=read_active,
        allowed_create=allowed,
        objective_constant=objective_constant,
        structurally_infeasible=structurally_infeasible,
        infeasible_reason=infeasible_reason,
        cap_index=cap_index,
        cap_node_index=cap_node_index,
        rep_index=rep_index,
        rep_object_index=rep_object_index,
        open_index=open_index,
    )
    if isinstance(goal, QoSGoal):
        form.qos_meta = qos_meta
    if isinstance(goal, AverageLatencyGoal):
        form.route_idx = getattr(lp, "_route_idx", {})
    return form


def _build_average_latency(
    lp: LinearProgram,
    inst: PlacementInstance,
    goal: AverageLatencyGoal,
    store_idx: np.ndarray,
    read_active: np.ndarray,
    covered_idx: np.ndarray,
    props: HeuristicProperties,
) -> None:
    """Constraints (7)-(10): route every read; bound mean latency per scope.

    Builds one route variable per (demand cell, servable storer) plus an
    origin route; stores the index map on ``lp._route_idx`` for the caller.
    """
    nd_count, intervals, _objects = inst.reads.shape
    ns_count = inst.num_storers
    reads = inst.qos_reads()
    route_idx: Dict[Tuple[int, int, int], Tuple[np.ndarray, np.ndarray, int]] = {}
    latency_terms: Dict[object, List[Tuple[int, float]]] = {}
    total_reads: Dict[object, float] = {}

    def scope_key(nd: int, k: int):
        scope = goal.scope
        if scope is GoalScope.PER_USER:
            return nd
        if scope is GoalScope.OVERALL:
            return "all"
        if scope is GoalScope.PER_OBJECT:
            return ("k", k)
        return (nd, k)

    for nd in range(nd_count):
        servable = np.nonzero(inst.serve[nd])[0]
        for k in read_active:
            col = reads[nd, :, k]
            for i in np.nonzero(col)[0]:
                r = float(col[i])
                key = scope_key(nd, int(k))
                total_reads[key] = total_reads.get(key, 0.0) + r
                ns_list, var_list = [], []
                for ns in servable:
                    s = store_idx[ns, i, k]
                    if s < 0:
                        continue
                    rv = lp.var(f"route[n{nd},m{ns},i{i},k{k}]", upper=1.0).index
                    lp.add_row([rv, int(s)], [1.0, -1.0], "<=", 0.0)  # (9)
                    ns_list.append(int(ns))
                    var_list.append(rv)
                    latency_terms.setdefault(key, []).append(
                        (rv, r * float(inst.latency[nd, ns]))
                    )
                origin_var = lp.var(f"route[n{nd},origin,i{i},k{k}]", upper=1.0).index
                latency_terms.setdefault(key, []).append(
                    (origin_var, r * float(inst.origin_latency[nd]))
                )
                lp.add_row(
                    var_list + [origin_var],
                    [1.0] * (len(var_list) + 1),
                    "==",
                    1.0,
                    name=f"route-one[n{nd},i{i},k{k}]",
                )  # (8)
                route_idx[(nd, int(i), int(k))] = (
                    np.array(ns_list, dtype=np.int64),
                    np.array(var_list, dtype=np.int64),
                    origin_var,
                )

    for key, denom in total_reads.items():
        terms = latency_terms.get(key, [])
        lp.add_row(
            [idx for idx, _c in terms],
            [c for _idx, c in terms],
            "<=",
            goal.tavg_ms * denom,
            name=f"avg[{key}]",
        )  # (7)

    lp._route_idx = route_idx  # type: ignore[attr-defined]
