"""The heuristic-class registry (Table 3).

Each :class:`HeuristicClass` is a named combination of heuristic properties
plus the literature examples the paper cites for it.  The registry mirrors
Table 3 row by row; :func:`table3` renders it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.properties import (
    HeuristicProperties,
    Knowledge,
    ReplicaConstraint,
    Routing,
    StorageConstraint,
)


@dataclass(frozen=True)
class HeuristicClass:
    """A named class of placement heuristics."""

    name: str
    properties: HeuristicProperties
    description: str
    examples: Tuple[str, ...] = ()

    def __str__(self) -> str:
        return f"{self.name}: {self.properties.describe()}"


GENERAL = HeuristicClass(
    name="general",
    properties=HeuristicProperties(),
    description="Any conceivable placement heuristic (the general lower bound).",
)

STORAGE_CONSTRAINED = HeuristicClass(
    name="storage-constrained",
    properties=HeuristicProperties(storage_constraint=StorageConstraint.UNIFORM),
    description=(
        "Centralized heuristics using a fixed, uniform amount of storage per "
        "node; global routing and knowledge, full history."
    ),
    examples=("Dowdy & Foster file assignment [3]", "Kangasharju greedy global [4]"),
)

STORAGE_CONSTRAINED_PER_NODE = HeuristicClass(
    name="storage-constrained-per-node",
    properties=HeuristicProperties(storage_constraint=StorageConstraint.PER_NODE),
    description=(
        "Storage-constrained variant where capacities differ per node "
        "(bigger caches on strategic nodes) but are fixed over time."
    ),
    examples=("Kangasharju heterogeneous caches [4]",),
)

REPLICA_CONSTRAINED = HeuristicClass(
    name="replica-constrained",
    properties=HeuristicProperties(replica_constraint=ReplicaConstraint.UNIFORM),
    description=(
        "Centralized heuristics placing the same fixed number of replicas of "
        "every object; global routing and knowledge."
    ),
    examples=("Qiu/Padmanabhan/Voelker k-median placement [11]",),
)

REPLICA_CONSTRAINED_PER_OBJECT = HeuristicClass(
    name="replica-constrained-per-object",
    properties=HeuristicProperties(replica_constraint=ReplicaConstraint.PER_OBJECT),
    description=(
        "Replica-constrained variant with a per-object replication factor "
        "(more replicas for popular objects), fixed over time."
    ),
    examples=("popularity-proportional replication [3, 11]",),
)

DECENTRALIZED_LOCAL_ROUTING = HeuristicClass(
    name="decentralized-local-routing",
    properties=HeuristicProperties(
        storage_constraint=StorageConstraint.UNIFORM,
        routing=Routing.LOCAL,
        knowledge=Knowledge.LOCAL,
    ),
    description=(
        "Decentralized storage-constrained heuristics with local routing: "
        "placement from local activity over the full history; misses go to "
        "the origin."
    ),
    examples=("CDN edge placement [4]", "RaDaR [12]"),
)

CACHING = HeuristicClass(
    name="caching",
    properties=HeuristicProperties(
        storage_constraint=StorageConstraint.UNIFORM,
        routing=Routing.LOCAL,
        knowledge=Knowledge.LOCAL,
        history_window=1,
        reactive=True,
    ),
    description=(
        "Plain local caching (e.g. LRU): reacts only to the last local "
        "access; misses go to the origin."
    ),
    examples=("LRU caching [14]",),
)

COOPERATIVE_CACHING = HeuristicClass(
    name="cooperative-caching",
    properties=HeuristicProperties(
        storage_constraint=StorageConstraint.UNIFORM,
        routing=Routing.GLOBAL,
        knowledge=Knowledge.GLOBAL,
        history_window=1,
        reactive=True,
    ),
    description=(
        "Cooperative caching: nodes know nearby caches' contents and fetch "
        "from them; placement still reacts to the previous interval only."
    ),
    examples=("hierarchical cooperative caching [7]",),
)

CACHING_PREFETCH = HeuristicClass(
    name="caching-prefetch",
    properties=HeuristicProperties(
        storage_constraint=StorageConstraint.UNIFORM,
        routing=Routing.LOCAL,
        knowledge=Knowledge.LOCAL,
        history_window=1,
        reactive=False,
    ),
    description="Local caching with prefetching (proactive single-interval history).",
    examples=("caching with prefetching [14]",),
)

COOPERATIVE_CACHING_PREFETCH = HeuristicClass(
    name="cooperative-caching-prefetch",
    properties=HeuristicProperties(
        storage_constraint=StorageConstraint.UNIFORM,
        routing=Routing.GLOBAL,
        knowledge=Knowledge.GLOBAL,
        history_window=1,
        reactive=False,
    ),
    description="Cooperative caching with prefetching.",
    examples=("global-memory cooperative prefetching [19]",),
)

REACTIVE = HeuristicClass(
    name="reactive",
    properties=HeuristicProperties(reactive=True),
    description=(
        "Any reactive heuristic: placement only of objects accessed in past "
        "intervals (the Figure-3 'reactive bound')."
    ),
)

#: Table 3 of the paper, in row order, plus the general and reactive bounds.
STANDARD_CLASSES: Dict[str, HeuristicClass] = {
    c.name: c
    for c in (
        GENERAL,
        STORAGE_CONSTRAINED,
        STORAGE_CONSTRAINED_PER_NODE,
        REPLICA_CONSTRAINED,
        REPLICA_CONSTRAINED_PER_OBJECT,
        DECENTRALIZED_LOCAL_ROUTING,
        CACHING,
        COOPERATIVE_CACHING,
        CACHING_PREFETCH,
        COOPERATIVE_CACHING_PREFETCH,
        REACTIVE,
    )
}

#: The classes plotted in Figure 1 of the paper.
FIGURE1_CLASSES: List[str] = [
    "general",
    "storage-constrained",
    "replica-constrained",
    "decentralized-local-routing",
    "caching",
    "cooperative-caching",
]


def get_class(name: str) -> HeuristicClass:
    """Look a class up by name; raises ``KeyError`` with suggestions."""
    try:
        return STANDARD_CLASSES[name]
    except KeyError:
        known = ", ".join(sorted(STANDARD_CLASSES))
        raise KeyError(f"unknown heuristic class {name!r}; known classes: {known}") from None


def table3() -> List[dict]:
    """The Table-3 rows: class name, property flags and examples."""
    rows = []
    for cls in STANDARD_CLASSES.values():
        p = cls.properties
        rows.append(
            {
                "class": cls.name,
                "SC": p.storage_constraint.value if p.storage_constraint.value != "none" else "",
                "RC": p.replica_constraint.value if p.replica_constraint.value != "none" else "",
                "Route": p.routing.value,
                "Know": p.knowledge.value,
                "Hist": "all" if p.history_window is None else str(p.history_window),
                "React": "yes" if p.reactive else "",
                "examples": "; ".join(cls.examples),
            }
        )
    return rows


def render_table3() -> str:
    """ASCII rendering of Table 3."""
    rows = table3()
    headers = ["class", "SC", "RC", "Route", "Know", "Hist", "React", "examples"]
    widths = {h: max(len(h), max(len(str(r[h])) for r in rows)) for h in headers}
    lines = [
        " | ".join(h.ljust(widths[h]) for h in headers),
        "-+-".join("-" * widths[h] for h in headers),
    ]
    for r in rows:
        lines.append(" | ".join(str(r[h]).ljust(widths[h]) for h in headers))
    return "\n".join(lines)
