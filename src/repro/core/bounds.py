"""Lower-bound computation (§5).

:func:`compute_lower_bound` is the paper's core operation: build the MC-PERF
LP for a heuristic class, solve the relaxation (the *lower bound*), and run
the rounding algorithm (the *feasible cost* demonstrating tightness).

A class that cannot meet the performance goal at any cost — e.g. local
caching above 99 % QoS on the WEB workload — yields ``feasible=False``.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.formulation import Formulation, build_formulation
from repro.core.problem import MCPerfProblem
from repro.core.properties import HeuristicProperties
from repro.core.rounding import RoundingResult, round_solution
from repro.lp.solution import SolveStatus
from repro.solvers.registry import (
    BACKEND_AUTO,
    BACKEND_DECOMPOSED,
    BACKEND_STRUCTURE,
    BACKEND_TREE_DP,
    select_backend,
)

logger = logging.getLogger(__name__)


@dataclass
class LowerBoundResult:
    """A class's lower bound on an MC-PERF instance.

    Attributes
    ----------
    feasible:
        Whether the class can meet the performance goal at all.
    lp_cost:
        The LP-relaxation optimum — the lower bound (None when infeasible).
    feasible_cost:
        Cost of the rounded integral solution (None if rounding skipped or
        the class is infeasible).
    gap:
        Relative rounding gap ``(feasible_cost - lp_cost) / lp_cost``; the
        paper reports this stays within ~10 %.
    backend_used:
        The LP backend that actually produced the solve (``"scipy"`` /
        ``"simplex"``) — records degradations, whether via the ``auto``
        fallback or the runner's ``on_error="degrade"`` retry.
    audit:
        The in-solve :class:`~repro.audit.report.AuditReport` when auditing
        was on (``--audit`` / ``REPRO_AUDIT``); serialized so a resumed run
        knows the cell was already verified.
    """

    properties: HeuristicProperties
    feasible: bool
    lp_cost: Optional[float] = None
    feasible_cost: Optional[float] = None
    rounding: Optional[RoundingResult] = None
    status: str = ""
    reason: str = ""
    backend_used: str = ""
    solve_seconds: float = 0.0
    round_seconds: float = 0.0
    num_variables: int = 0
    num_constraints: int = 0
    store_lp: Optional[np.ndarray] = None
    audit: Optional[object] = None
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def gap(self) -> Optional[float]:
        if self.lp_cost is None or self.feasible_cost is None or self.lp_cost <= 0:
            return None
        return (self.feasible_cost - self.lp_cost) / self.lp_cost

    def __str__(self) -> str:
        if not self.feasible:
            return f"[{self.properties.describe()}] cannot meet the goal ({self.reason})"
        lp = f"{self.lp_cost:.1f}" if self.lp_cost is not None else "n/a"
        feas = f"{self.feasible_cost:.1f}" if self.feasible_cost is not None else "n/a"
        return f"[{self.properties.describe()}] bound={lp} feasible={feas}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe encoding for the runner's cache/artifact layer.

        ``store_lp`` and ``extras`` are deliberately not serialized: the
        former is an opt-in debugging payload (``keep_store=True``), the
        latter may hold rich diagnosis objects whose text already lives in
        ``reason``.
        """
        return {
            "properties": self.properties.to_dict(),
            "feasible": self.feasible,
            "lp_cost": self.lp_cost,
            "feasible_cost": self.feasible_cost,
            "rounding": None if self.rounding is None else self.rounding.to_dict(),
            "status": self.status,
            "reason": self.reason,
            "backend_used": self.backend_used,
            "solve_seconds": self.solve_seconds,
            "round_seconds": self.round_seconds,
            "num_variables": self.num_variables,
            "num_constraints": self.num_constraints,
            "audit": None if self.audit is None else self.audit.to_dict(),
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "LowerBoundResult":
        """Inverse of :meth:`to_dict`."""
        from repro.audit.report import AuditReport
        from repro.core.properties import HeuristicProperties
        from repro.core.rounding import RoundingResult
        from repro.serialize import optional_float

        rounding = payload.get("rounding")
        audit = payload.get("audit")
        return LowerBoundResult(
            properties=HeuristicProperties.from_dict(payload["properties"]),
            feasible=bool(payload["feasible"]),
            lp_cost=optional_float(payload.get("lp_cost")),
            feasible_cost=optional_float(payload.get("feasible_cost")),
            rounding=None if rounding is None else RoundingResult.from_dict(rounding),
            status=str(payload.get("status", "")),
            reason=str(payload.get("reason", "")),
            backend_used=str(payload.get("backend_used", "")),
            solve_seconds=float(payload.get("solve_seconds", 0.0)),
            round_seconds=float(payload.get("round_seconds", 0.0)),
            num_variables=int(payload.get("num_variables", 0)),
            num_constraints=int(payload.get("num_constraints", 0)),
            audit=None if audit is None else AuditReport.from_dict(audit),
        )


def compute_lower_bound(
    problem: MCPerfProblem,
    properties: Optional[HeuristicProperties] = None,
    do_rounding: bool = True,
    run_length: bool = False,
    backend: str = BACKEND_AUTO,
    keep_store: bool = False,
    formulation: Optional[Formulation] = None,
    diagnose: bool = False,
    rounding_mode: str = "greedy",
    audit: Optional[str] = None,
    audit_subject: str = "",
    warm_start: Optional[object] = None,
) -> LowerBoundResult:
    """Lower bound (and rounded feasible cost) for one heuristic class.

    Parameters
    ----------
    problem:
        System + workload + goal + costs.
    properties:
        Class properties; None computes the general lower bound.
    do_rounding:
        Also produce a feasible integral cost: the Appendix-C greedy
        rounding for QoS goals, the add-then-trim constructor
        (:mod:`repro.core.rounding_avg`) for average-latency goals.
    run_length:
        Use run-length rounding (faster, slightly costlier solutions).
    backend:
        Solver backend (:data:`~repro.solvers.registry.BOUND_BACKENDS`).
        ``"auto"``/``"scipy"``/``"simplex"`` solve the monolithic LP;
        ``"tree-dp"`` and ``"decomposed"`` route to the structural
        backends in :mod:`repro.solvers` (which ignore ``formulation``,
        ``run_length``, ``diagnose`` and ``rounding_mode``); and
        ``"structure"`` introspects the problem to pick among them
        (:func:`~repro.solvers.registry.select_backend`).
    keep_store:
        Retain the fractional LP store matrix on the result.
    formulation:
        Reuse a pre-built formulation (must match problem/properties).
    diagnose:
        On LP infeasibility, run the constraint-family deletion filter
        (:mod:`repro.lp.diagnose`) and name the binding families in
        ``reason`` — a few extra solves, only on the failure path.
    rounding_mode:
        ``"greedy"`` (default) — the paper's Appendix-C closed-form
        rounder; ``"iterative"`` — LP-guided rounding via the patch API
        (:func:`~repro.core.rounding.round_solution_iterative`), whose
        re-solves are assembly-free.  QoS goals only; average-latency
        goals always use the add-then-trim constructor.
    audit:
        Audit mode (``"off"``/``"fast"``/``"full"``); None reads the
        ``REPRO_AUDIT`` environment variable.  When on, the solve and the
        rounding are re-certified (:mod:`repro.audit`) and the
        :class:`~repro.audit.report.AuditReport` is attached to the result.
        ``full`` adds exact :class:`fractions.Fraction` arithmetic and a
        cross-backend differential re-solve.
    audit_subject:
        Identifier recorded on any violations — the runner passes the
        task's content digest so a flagged cell is traceable to its
        cached artifact.
    warm_start:
        Basis hint for the LP solve — a :class:`~repro.lp.basis.Basis` or
        a previous :class:`~repro.lp.solution.LPSolution`.  When omitted,
        a reused ``formulation`` supplies its own ``last_solution`` (set
        by the previous call), which is how QoS sweeps warm-start each
        level from the one before.  Unusable hints silently degrade to a
        cold solve.
    """
    props = properties or HeuristicProperties()
    if backend == BACKEND_STRUCTURE:
        backend = select_backend(problem, props)
    if backend == BACKEND_TREE_DP:
        from repro.solvers.tree_dp import solve_tree_dp

        return solve_tree_dp(
            problem, props,
            do_rounding=do_rounding, keep_store=keep_store,
            audit=audit, audit_subject=audit_subject,
        )
    if backend == BACKEND_DECOMPOSED:
        from repro.solvers.decompose import solve_decomposed

        return solve_decomposed(
            problem, props,
            do_rounding=do_rounding, keep_store=keep_store,
            audit=audit, audit_subject=audit_subject,
        )
    form = formulation or build_formulation(problem, props)
    result = LowerBoundResult(
        properties=props,
        feasible=False,
        num_variables=form.lp.num_variables,
        num_constraints=form.lp.num_constraints,
    )
    if form.structurally_infeasible:
        result.status = "structurally-infeasible"
        result.reason = form.infeasible_reason
        logger.debug("class %s structurally infeasible: %s", props.describe(), result.reason)
        return result

    warm = warm_start if warm_start is not None else form.last_solution
    t0 = time.perf_counter()
    solution = form.lp.solve(backend=backend, warm_start=warm)
    result.solve_seconds = time.perf_counter() - t0
    result.status = solution.status.value
    result.backend_used = solution.backend
    form.last_solution = solution if solution.is_optimal else None

    if solution.status is SolveStatus.INFEASIBLE:
        result.reason = "LP relaxation infeasible: the class cannot meet the goal"
        if diagnose:
            from repro.lp.diagnose import diagnose_infeasibility

            diagnosis = diagnose_infeasibility(form.lp, backend=backend)
            result.reason += f" ({diagnosis.render()})"
            result.extras["diagnosis"] = diagnosis
        return result
    if solution.status is not SolveStatus.OPTIMAL:
        result.reason = f"LP solve failed: {solution.message}"
        return result

    result.feasible = True
    result.lp_cost = form.bound_cost(solution)
    # Warm-start handle for callers that re-solve under drift (the service
    # daemon); never serialized.  The basis is the preferred seed, the full
    # solution lets basis-less (scipy) optima crash one on demand.
    result.extras["basis"] = solution.basis
    result.extras["warm_source"] = solution

    # Post-solve audit hook: certify the LP point before anything consumes
    # it.  Lazy import — repro.audit re-exports the certificate layer that
    # repro.lp/repro.core expose, so a module-level import would cycle.
    from repro.audit import resolve_mode

    audit_mode = resolve_mode(audit)
    audit_report = None
    if audit_mode != "off":
        from repro.audit import (
            audit_differential,
            audit_lp_solution,
            resolve_sample,
            selected_for_sample,
        )

        t0 = time.perf_counter()
        audit_report = audit_lp_solution(form.lp, solution, mode=audit_mode)
        audit_report.subject = audit_subject
        if audit_mode == "full" and selected_for_sample(audit_subject, resolve_sample()):
            audit_report.merge(
                audit_differential(form.lp, solution, mode=audit_mode, subject=audit_subject)
            )
        result.extras["audit_seconds"] = time.perf_counter() - t0

    logger.debug(
        "bound[%s] = %.3f (%d vars, %d rows, %.2fs)",
        props.describe(), result.lp_cost, result.num_variables,
        result.num_constraints, result.solve_seconds,
    )
    if keep_store:
        result.store_lp = form.store_array(solution.values)

    from repro.core.goals import QoSGoal

    if do_rounding:
        t0 = time.perf_counter()
        if isinstance(problem.goal, QoSGoal):
            if rounding_mode == "iterative":
                from repro.core.rounding import round_solution_iterative

                # audit="off": the certificate runs below with the true
                # lp_cost, so the bound gate is included exactly once.
                rounding = round_solution_iterative(
                    form, solution, backend=backend, audit="off"
                )
            elif rounding_mode == "greedy":
                rounding = round_solution(
                    form, solution, run_length=run_length, audit="off"
                )
            else:
                raise ValueError(f"unknown rounding mode: {rounding_mode!r}")
        else:
            from repro.core.rounding_avg import round_average_latency

            rounding = round_average_latency(form, solution)
        result.round_seconds = time.perf_counter() - t0
        result.rounding = rounding
        result.feasible_cost = rounding.total_cost
        if not rounding.feasible:
            result.extras["rounding_infeasible"] = True
        if audit_report is not None:
            from repro.audit import audit_rounding

            audit_report.merge(
                audit_rounding(
                    form, rounding, result.lp_cost,
                    mode=audit_mode, subject=audit_subject,
                )
            )
    result.audit = audit_report
    return result
