"""Heuristic properties (§4.1, Table 2).

Each property restricts the feasible placements of MC-PERF to those a class
of heuristics could produce; combinations of properties define classes
(Table 3, :mod:`repro.core.classes`).  Properties map onto the formulation
as follows:

==================  =========================================================
storage constraint  capacity variable(s) + rows (16)/(16a); storage is
                    charged at provisioned capacity (see DESIGN.md §5)
replica constraint  replica-count variable(s) + rows (17)/(17a)
routing knowledge   shapes the reach matrix used by covered rows (18)/(19)
global/local know   shapes the sphere-of-knowledge used by the create fixing
activity history    window of past intervals feeding the create fixing (20)
reactive            shifts the history window to strictly-past intervals
                    (20a)/(21)
==================  =========================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np


class StorageConstraint(str, enum.Enum):
    """Constraint (16): fixed storage per node across intervals."""

    NONE = "none"
    UNIFORM = "uniform"  # (16): same capacity on every node
    PER_NODE = "per_node"  # (16a): per-node capacity, fixed over time


class ReplicaConstraint(str, enum.Enum):
    """Constraint (17): fixed number of replicas per object across intervals."""

    NONE = "none"
    UNIFORM = "uniform"  # (17): same replica count for every object
    PER_OBJECT = "per_object"  # (17a): per-object count, fixed over time


class Routing(str, enum.Enum):
    """Routing knowledge: where can a node fetch/serve replicas from."""

    GLOBAL = "global"  # knows contents of every node (cooperative/centralized)
    LOCAL = "local"  # knows only its own contents; misses go to the origin


class Knowledge(str, enum.Enum):
    """Whose activity informs a node's placement decisions."""

    GLOBAL = "global"
    LOCAL = "local"


@dataclass(frozen=True)
class HeuristicProperties:
    """A point in the property space of §4.1.

    The default (all unset) is the *general* bound — any conceivable
    placement heuristic.

    Attributes
    ----------
    storage_constraint / replica_constraint:
        Fixed-resource constraints (16)/(17) and their variants.
    routing:
        Routing knowledge (18)/(19).  ``GLOBAL`` fetches from any node within
        the latency threshold; ``LOCAL`` serves only from local storage (plus
        the origin, which is always fetchable).
    knowledge:
        Sphere of knowledge for placement decisions (matrix ``know``).
    history_window:
        Activity-history length in intervals (constraint (20)); ``None``
        means unbounded history (all past intervals), 1 means only the
        current (proactive) or previous (reactive) interval.
    reactive:
        Reactive placement (20a): only objects accessed *before* the current
        interval may be placed.  Proactive (False) heuristics may also place
        objects accessed during the current interval (prefetching bound).
    """

    storage_constraint: StorageConstraint = StorageConstraint.NONE
    replica_constraint: ReplicaConstraint = ReplicaConstraint.NONE
    routing: Routing = Routing.GLOBAL
    knowledge: Knowledge = Knowledge.GLOBAL
    history_window: Optional[int] = None
    reactive: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "storage_constraint", StorageConstraint(self.storage_constraint))
        object.__setattr__(self, "replica_constraint", ReplicaConstraint(self.replica_constraint))
        object.__setattr__(self, "routing", Routing(self.routing))
        object.__setattr__(self, "knowledge", Knowledge(self.knowledge))
        if self.history_window is not None and self.history_window < 1:
            raise ValueError("history_window must be >= 1 (or None for unbounded)")

    @property
    def is_general(self) -> bool:
        """True when no property restricts the solution space."""
        return (
            self.storage_constraint is StorageConstraint.NONE
            and self.replica_constraint is ReplicaConstraint.NONE
            and self.routing is Routing.GLOBAL
            and self.knowledge is Knowledge.GLOBAL
            and self.history_window is None
            and not self.reactive
        )

    @property
    def restricts_creation(self) -> bool:
        """True when Know/Hist/React fix any create variables."""
        return (
            self.knowledge is not Knowledge.GLOBAL
            or self.history_window is not None
            or self.reactive
        )

    def to_dict(self) -> dict:
        """JSON-safe encoding (enum values + plain scalars)."""
        return {
            "storage_constraint": self.storage_constraint.value,
            "replica_constraint": self.replica_constraint.value,
            "routing": self.routing.value,
            "knowledge": self.knowledge.value,
            "history_window": self.history_window,
            "reactive": self.reactive,
        }

    @staticmethod
    def from_dict(payload: dict) -> "HeuristicProperties":
        """Inverse of :meth:`to_dict` (``__post_init__`` re-coerces enums)."""
        return HeuristicProperties(**payload)

    def describe(self) -> str:
        parts = []
        if self.storage_constraint is not StorageConstraint.NONE:
            parts.append(f"SC({self.storage_constraint.value})")
        if self.replica_constraint is not ReplicaConstraint.NONE:
            parts.append(f"RC({self.replica_constraint.value})")
        parts.append(f"route={self.routing.value}")
        parts.append(f"know={self.knowledge.value}")
        hist = "all" if self.history_window is None else str(self.history_window)
        parts.append(f"hist={hist}")
        parts.append("reactive" if self.reactive else "proactive")
        return ", ".join(parts)


GENERAL = HeuristicProperties()


def knowledge_matrix(
    props: HeuristicProperties,
    num_storers: int,
    num_demanders: int,
    assignment: Optional[np.ndarray] = None,
    storer_ids: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The ``know[ns, nd]`` matrix: storer ``ns`` sees activity of demander ``nd``.

    With global knowledge every storer sees everyone.  With local knowledge a
    storer sees only its own site's users — or, in the deployment scenario
    where users of closed sites are assigned to open nodes, the users
    assigned to it.

    Parameters
    ----------
    assignment:
        Optional per-demander assigned storage node (topology node ids).
    storer_ids:
        Topology node ids of the storers, used to match assignments and the
        identity when demanders and storers share the topology.
    """
    if props.knowledge is Knowledge.GLOBAL:
        return np.ones((num_storers, num_demanders), dtype=np.int8)
    know = np.zeros((num_storers, num_demanders), dtype=np.int8)
    ids = storer_ids if storer_ids is not None else np.arange(num_storers)
    if assignment is not None:
        for nd in range(num_demanders):
            matches = np.nonzero(ids == assignment[nd])[0]
            for ns in matches:
                know[ns, nd] = 1
    else:
        for ns, node_id in enumerate(ids):
            if 0 <= node_id < num_demanders:
                know[ns, int(node_id)] = 1
    return know
