"""Evaluating placement solutions against an MC-PERF instance.

Shared between the rounding algorithm (which must verify feasibility and
price candidate roundings) and the bound/selection drivers (which report the
cost of the feasible solution).  Cost accounting follows the paper:

* storage alpha per object-interval — or, under a storage/replica
  constraint, alpha on the *provisioned* capacity with the Figure-5
  adjustments (every node padded to the max capacity ``cmax``; every object
  padded to the max replica count);
* creation beta per replica created (store rising 0 -> 1), including the
  Figure-5 capacity-fill creation adjustments;
* optional gamma late-access penalties, delta write costs and zeta node
  costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.costs import CostModel
from repro.core.goals import AverageLatencyGoal, GoalScope, PerformanceGoal, QoSGoal
from repro.core.problem import PlacementInstance
from repro.core.properties import (
    HeuristicProperties,
    ReplicaConstraint,
    StorageConstraint,
)


def creations_from_store(
    store: np.ndarray, initial: Optional[np.ndarray] = None
) -> np.ndarray:
    """Per-(ns, i, k) replica creations implied by a store matrix.

    ``create[ns, i, k] = max(0, store[ns, i, k] - store[ns, i-1, k])`` with
    the initial placement as interval −1 (constraint (3)/(4)).  Works for
    fractional matrices too (used when pricing roundings).
    """
    prev = np.zeros_like(store)
    prev[:, 1:, :] = store[:, :-1, :]
    if initial is not None:
        prev[:, 0, :] = initial
    return np.maximum(store - prev, 0.0)


def coverage_matrix(instance: PlacementInstance, store: np.ndarray) -> np.ndarray:
    """Per-(nd, i, k) covered fraction ``min(1, sum of reachable stores)``.

    Origin-covered demanders are fully covered.  Fractional stores yield the
    LP's fractional coverage, integral stores the 0/1 coverage.
    """
    cov = np.einsum("ds,sik->dik", instance.reach.astype(float), store)
    cov = np.minimum(cov, 1.0)
    cov[instance.origin_covers.astype(bool), :, :] = 1.0
    return cov


def qos_by_scope(
    instance: PlacementInstance, goal: QoSGoal, store: np.ndarray
) -> Dict[object, float]:
    """Achieved covered-read fraction per goal-scope key."""
    cov = coverage_matrix(instance, store)
    reads = instance.qos_reads()
    out: Dict[object, float] = {}
    scope = goal.scope
    if scope is GoalScope.OVERALL:
        denom = reads.sum()
        out["all"] = float((reads * cov).sum() / denom) if denom > 0 else 1.0
    elif scope is GoalScope.PER_USER:
        for nd in range(instance.num_demanders):
            denom = reads[nd].sum()
            if denom > 0:
                out[nd] = float((reads[nd] * cov[nd]).sum() / denom)
    elif scope is GoalScope.PER_OBJECT:
        for k in range(instance.num_objects):
            denom = reads[:, :, k].sum()
            if denom > 0:
                out[("k", k)] = float((reads[:, :, k] * cov[:, :, k]).sum() / denom)
    else:  # PER_USER_OBJECT
        for nd in range(instance.num_demanders):
            for k in range(instance.num_objects):
                denom = reads[nd, :, k].sum()
                if denom > 0:
                    out[(nd, k)] = float(
                        (reads[nd, :, k] * cov[nd, :, k]).sum() / denom
                    )
    return out


def meets_goal(
    instance: PlacementInstance,
    goal: PerformanceGoal,
    store: np.ndarray,
    tol: float = 1e-9,
) -> bool:
    """Whether an (integral) store matrix satisfies the performance goal.

    For the average-latency goal, each read is routed to the best servable
    replica (or the origin) — the optimal routing, matching constraint (8).
    """
    if isinstance(goal, QoSGoal):
        achieved = qos_by_scope(instance, goal, store)
        return all(v >= goal.fraction - tol for v in achieved.values())
    lat = average_latency_by_scope(instance, goal, store)
    return all(v <= goal.tavg_ms + tol for v in lat.values())


def average_latency_by_scope(
    instance: PlacementInstance, goal: AverageLatencyGoal, store: np.ndarray
) -> Dict[object, float]:
    """Mean read latency per scope key under best-replica routing."""
    reads = instance.qos_reads()
    nd_count, intervals, objects = reads.shape
    holders = store > 0.5
    lat_num: Dict[object, float] = {}
    lat_den: Dict[object, float] = {}

    def scope_key(nd: int, k: int):
        scope = goal.scope
        if scope is GoalScope.PER_USER:
            return nd
        if scope is GoalScope.OVERALL:
            return "all"
        if scope is GoalScope.PER_OBJECT:
            return ("k", k)
        return (nd, k)

    for nd in range(nd_count):
        servable = np.nonzero(instance.serve[nd])[0]
        base = float(instance.origin_latency[nd])
        for k in range(objects):
            col = reads[nd, :, k]
            for i in np.nonzero(col)[0]:
                best = base
                for ns in servable:
                    if holders[ns, i, k]:
                        best = min(best, float(instance.latency[nd, ns]))
                key = scope_key(nd, k)
                lat_num[key] = lat_num.get(key, 0.0) + best * float(col[i])
                lat_den[key] = lat_den.get(key, 0.0) + float(col[i])
    return {key: lat_num[key] / lat_den[key] for key in lat_den}


@dataclass
class CostBreakdown:
    """Itemized replication cost of a concrete placement."""

    storage: float = 0.0
    creation: float = 0.0
    penalty: float = 0.0
    writes: float = 0.0
    opening: float = 0.0
    adjustments: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.storage + self.creation + self.penalty + self.writes + self.opening

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe encoding for the runner's cache/artifact layer."""
        return {
            "storage": self.storage,
            "creation": self.creation,
            "penalty": self.penalty,
            "writes": self.writes,
            "opening": self.opening,
            "adjustments": dict(self.adjustments),
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "CostBreakdown":
        """Inverse of :meth:`to_dict`."""
        return CostBreakdown(
            storage=float(payload["storage"]),
            creation=float(payload["creation"]),
            penalty=float(payload.get("penalty", 0.0)),
            writes=float(payload.get("writes", 0.0)),
            opening=float(payload.get("opening", 0.0)),
            adjustments={str(k): float(v) for k, v in payload.get("adjustments", {}).items()},
        )

    def __str__(self) -> str:
        parts = [f"storage={self.storage:.1f}", f"creation={self.creation:.1f}"]
        for name, value in (
            ("penalty", self.penalty),
            ("writes", self.writes),
            ("opening", self.opening),
        ):
            if value:
                parts.append(f"{name}={value:.1f}")
        return f"total={self.total:.1f} ({', '.join(parts)})"


def solution_cost(
    instance: PlacementInstance,
    props: HeuristicProperties,
    costs: CostModel,
    store: np.ndarray,
    goal: Optional[PerformanceGoal] = None,
    count_opening: bool = False,
) -> CostBreakdown:
    """Cost of a store matrix under the class's accounting (Figure 5 bottom).

    ``store`` may be fractional (pricing LP points) or integral (feasible
    solutions); the SC/RC capacity paddings follow the paper's rounding-
    algorithm adjustments.
    """
    out = CostBreakdown()
    create = creations_from_store(store, instance.initial_store)
    total_create = float(create.sum())
    intervals = store.shape[1]
    active = np.nonzero(instance.qos_reads().sum(axis=(0, 1)) > 0)[0]

    sc = props.storage_constraint
    rc = props.replica_constraint
    per_node_interval = store.sum(axis=2)  # (Ns, I) objects stored
    per_object_interval = store.sum(axis=0)  # (I, K) replicas of each object

    if sc is StorageConstraint.UNIFORM:
        cmax = float(per_node_interval.max()) if per_node_interval.size else 0.0
        out.storage = costs.alpha * cmax * store.shape[0] * intervals
        fill = float(np.maximum(cmax - per_node_interval.max(axis=1), 0.0).sum())
        out.creation = costs.beta * (total_create + fill)
        out.adjustments["sc_capacity_fill"] = costs.beta * fill
    elif sc is StorageConstraint.PER_NODE:
        caps = per_node_interval.max(axis=1) if per_node_interval.size else np.zeros(0)
        out.storage = costs.alpha * intervals * float(caps.sum())
        out.creation = costs.beta * total_create
    elif rc is ReplicaConstraint.UNIFORM:
        act = per_object_interval[:, active] if len(active) else per_object_interval
        rmax = float(act.max()) if act.size else 0.0
        out.storage = costs.alpha * intervals * len(active) * rmax
        fill = float(np.maximum(rmax - act.max(axis=0), 0.0).sum()) if act.size else 0.0
        out.creation = costs.beta * (total_create + fill)
        out.adjustments["rc_replica_fill"] = costs.beta * fill
    elif rc is ReplicaConstraint.PER_OBJECT:
        act = per_object_interval[:, active] if len(active) else per_object_interval
        reps = act.max(axis=0) if act.size else np.zeros(0)
        out.storage = costs.alpha * intervals * float(reps.sum())
        out.creation = costs.beta * total_create
    else:
        out.storage = costs.alpha * float(store.sum())
        out.creation = costs.beta * total_create

    if costs.delta > 0:
        writes_per_ik = instance.writes.sum(axis=0)
        out.writes = costs.delta * float((writes_per_ik * per_object_interval).sum())

    if costs.gamma > 0 and isinstance(goal, QoSGoal):
        cov = coverage_matrix(instance, store)
        pen = np.maximum(instance.origin_latency - goal.tlat_ms, 0.0)
        out.penalty = costs.gamma * float(
            (instance.qos_reads() * (1.0 - cov) * pen[:, None, None]).sum()
        )

    if count_opening and costs.zeta > 0:
        used = (store.sum(axis=(1, 2)) > 1e-9).sum()
        out.opening = costs.zeta * float(used)

    return out
