"""Exact MC-PERF solving (the paper's "tight lower bound" mode).

§5 of the paper: solving the IP exactly gives the tight bound but "is
feasible only at a very small scale"; the method therefore uses LP
relaxation + rounding.  :func:`compute_exact_bound` supplies the exact mode
via branch and bound, bracketed by the pipeline's own artifacts: the LP
bound prunes from below, the rounded feasible solution seeds the incumbent
from above.  Useful for

* measuring the *true* integrality gap of the rounding on instances beyond
  brute-force size, and
* small production problems where the designer wants the exact optimum.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.formulation import Formulation, build_formulation
from repro.core.goals import QoSGoal
from repro.core.problem import MCPerfProblem
from repro.core.properties import HeuristicProperties
from repro.core.rounding import round_solution
from repro.lp.branch_bound import solve_integer
from repro.lp.solution import SolveStatus

logger = logging.getLogger(__name__)


@dataclass
class ExactBoundResult:
    """Exact (or node-limited) IP optimum for one heuristic class.

    Costs include the formulation's objective constant, so they are
    directly comparable to :class:`~repro.core.bounds.LowerBoundResult`.
    """

    feasible: bool
    status: str = ""
    exact_cost: Optional[float] = None  # incumbent (optimal when status == "optimal")
    lower_bound: Optional[float] = None  # proven bound (== exact_cost when optimal)
    lp_cost: Optional[float] = None
    rounded_cost: Optional[float] = None
    nodes: int = 0
    store: Optional[np.ndarray] = None
    reason: str = ""

    @property
    def rounding_gap(self) -> Optional[float]:
        """True integrality gap of the rounding: (rounded - exact) / exact."""
        if (
            self.exact_cost is None
            or self.rounded_cost is None
            or self.status != "optimal"
            or self.exact_cost <= 0
        ):
            return None
        return (self.rounded_cost - self.exact_cost) / self.exact_cost


def compute_exact_bound(
    problem: MCPerfProblem,
    properties: Optional[HeuristicProperties] = None,
    node_limit: int = 5_000,
    time_limit_s: Optional[float] = None,
    seed_with_rounding: bool = True,
) -> ExactBoundResult:
    """Solve the class-restricted MC-PERF instance to integral optimality.

    Only the ``store`` variables are branched: with integral stores, the
    optimal ``create``/``covered``/capacity values are automatically
    integral-consistent, so the search space is exactly the placement
    space.
    """
    props = properties or HeuristicProperties()
    form = build_formulation(problem, props)
    if form.structurally_infeasible:
        return ExactBoundResult(
            feasible=False, status="structurally-infeasible", reason=form.infeasible_reason
        )

    lp_solution = form.lp.solve()
    if lp_solution.status is SolveStatus.INFEASIBLE:
        return ExactBoundResult(
            feasible=False,
            status="infeasible",
            reason="LP relaxation infeasible: the class cannot meet the goal",
        )
    lp_solution.require_optimal()
    constant = form.objective_constant
    lp_cost = form.bound_cost(lp_solution)

    incumbent = None
    rounded_cost = None
    if seed_with_rounding and isinstance(problem.goal, QoSGoal):
        rounding = round_solution(form, lp_solution)
        if rounding.feasible:
            rounded_cost = rounding.total_cost
            # Convert to LP-objective units (drop the constant part).  The
            # class-accounting adjustments only ever add cost, so this seed
            # is a safe (possibly loose) upper bound.
            incumbent = (rounded_cost - constant, None)

    integer_vars = [int(j) for j in form.store_idx[form.store_idx >= 0].ravel()]
    result = solve_integer(
        form.lp,
        integer_vars,
        node_limit=node_limit,
        time_limit_s=time_limit_s,
        incumbent=incumbent,
    )
    logger.debug(
        "exact[%s]: status=%s nodes=%d", props.describe(), result.status, result.nodes
    )

    if result.status == "infeasible":
        return ExactBoundResult(
            feasible=False, status="infeasible", lp_cost=lp_cost, nodes=result.nodes,
            reason="no integral placement meets the goal",
        )

    store = form.store_array(result.values) if result.values is not None else None
    if store is not None:
        np.clip(store, 0.0, 1.0, out=store)
        store[store < 0.5] = 0.0
        store[store >= 0.5] = 1.0
    return ExactBoundResult(
        feasible=True,
        status=result.status,
        exact_cost=None if result.objective is None else result.objective + constant,
        lower_bound=None
        if result.best_bound == float("-inf")
        else result.best_bound + constant,
        lp_cost=lp_cost,
        rounded_cost=rounded_cost,
        nodes=result.nodes,
        store=store,
    )
