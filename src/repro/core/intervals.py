"""Evaluation-interval theory (§4.3, Appendix B).

The evaluation interval Δ is the granularity at which MC-PERF lets placement
change.  The appendix proves:

* **Theorem 2** — a bound computed with interval Δ is also a lower bound for
  any heuristic whose evaluation period Δ′ satisfies Δ′ ≥ 2Δ (or Δ′ = Δ).
  Hence a heuristic with period P is bounded by solving at Δ = P/2.
* **Theorem 3** — for heuristics evaluated on *every access*, it suffices to
  use Δ = m1/2, where m1 is the minimum inter-access time among interacting
  nodes, or even Δ = m1 when no inter-access gap falls inside (m1, 2·m1).
* **Lemma 1** — nodes n and m interact only when ``A[n][m] = dist ∨ know``
  is set, so m1 is computed per sphere of interaction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.workload.stats import min_interarrival
from repro.workload.trace import Trace


def bound_applies(delta_bound_s: float, delta_heuristic_s: float) -> bool:
    """Theorem 2: does a bound computed at ``delta_bound_s`` apply to a
    heuristic evaluated every ``delta_heuristic_s``?"""
    if delta_bound_s <= 0 or delta_heuristic_s <= 0:
        raise ValueError("intervals must be positive")
    return (
        math.isclose(delta_heuristic_s, delta_bound_s, rel_tol=1e-12)
        or delta_heuristic_s >= 2.0 * delta_bound_s
    )


def interval_for_period(period_s: float) -> float:
    """Δ for heuristics evaluated every ``period_s``: half the smallest period."""
    if period_s <= 0:
        raise ValueError("period must be positive")
    return period_s / 2.0


def interaction_matrix(dist: np.ndarray, know: np.ndarray) -> np.ndarray:
    """Lemma 1: ``A = dist OR know`` — which node pairs can affect each other."""
    dist = np.asarray(dist)
    know = np.asarray(know)
    if dist.shape != know.shape:
        raise ValueError("dist and know must have the same shape")
    return ((dist.astype(bool)) | (know.astype(bool))).astype(np.int8)


def per_access_interval(
    trace: Trace, interaction: Optional[np.ndarray] = None
) -> float:
    """Theorem 3: the Δ bounding heuristics evaluated after every access.

    ``Δ = m1/2`` when some inter-access gap lies in (m1, 2·m1); otherwise
    Δ = m1 (no gaps would straddle the finer intervals, so the coarser Δ is
    equally tight and cheaper to solve).
    """
    m1, m2 = min_interarrival(trace, interaction)
    if math.isinf(m1):
        return trace.duration_s  # at most one access: one interval suffices
    if 2.0 * m1 >= m2:
        return m1 / 2.0
    return m1


@dataclass(frozen=True)
class IntervalPlan:
    """A chosen evaluation interval and the resulting discretization."""

    delta_s: float
    num_intervals: int
    duration_s: float

    @property
    def solves_per_day(self) -> float:
        return 86_400.0 / self.delta_s


def plan_intervals(duration_s: float, delta_s: float, cap: Optional[int] = None) -> IntervalPlan:
    """Discretize a trace extent into evaluation intervals of length Δ.

    ``cap`` optionally coarsens Δ so the interval count stays tractable (the
    paper uses 1-hour intervals "to keep the computational complexity
    reasonable" even though caching would warrant much finer ones; Theorem 2
    tells which heuristics the coarser bound still covers).
    """
    if duration_s <= 0 or delta_s <= 0:
        raise ValueError("duration and delta must be positive")
    count = max(1, math.ceil(duration_s / delta_s))
    if cap is not None and count > cap:
        count = cap
        delta_s = duration_s / count
    return IntervalPlan(delta_s=delta_s, num_intervals=count, duration_s=duration_s)
