"""Performance goals (§3.1).

Two goal metrics are supported, as in the paper:

* :class:`QoSGoal` — at least ``fraction`` of reads must be served within
  ``tlat_ms`` (constraint (2)); the paper's experiments use this metric at a
  150 ms threshold with QoS sweeps from 95 % to 99.999 %.
* :class:`AverageLatencyGoal` — the mean perceived read latency must not
  exceed ``tavg_ms`` (constraints (7)–(10); requires routing variables).

Both can be scoped per user/node (paper default), over the whole system, per
object, or per (user, object) pair.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class GoalScope(str, enum.Enum):
    """Over what population the goal must hold."""

    PER_USER = "per_user"  # one constraint per demand node (paper experiments)
    OVERALL = "overall"  # one constraint for the whole system
    PER_OBJECT = "per_object"  # one constraint per object
    PER_USER_OBJECT = "per_user_object"  # one constraint per (node, object)


@dataclass(frozen=True)
class QoSGoal:
    """Serve at least ``fraction`` of reads within ``tlat_ms``.

    Attributes
    ----------
    tlat_ms:
        The latency threshold Tlat (paper: 150 ms).
    fraction:
        The required covered fraction Tqos in (0, 1].
    scope:
        Constraint granularity (paper: per user, over all objects).
    """

    tlat_ms: float
    fraction: float
    scope: GoalScope = GoalScope.PER_USER

    def __post_init__(self) -> None:
        if self.tlat_ms < 0:
            raise ValueError("latency threshold must be non-negative")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("QoS fraction must be in (0, 1]")
        object.__setattr__(self, "scope", GoalScope(self.scope))

    def describe(self) -> str:
        return f"{self.fraction:.5%} of reads within {self.tlat_ms:g} ms ({self.scope.value})"


@dataclass(frozen=True)
class AverageLatencyGoal:
    """Mean read latency must not exceed ``tavg_ms``.

    ``tlat_ms`` still defines the reachability threshold used by routing-
    knowledge restrictions and by the miss penalty; by default it equals
    ``tavg_ms``.
    """

    tavg_ms: float
    tlat_ms: float = -1.0
    scope: GoalScope = GoalScope.PER_USER

    def __post_init__(self) -> None:
        if self.tavg_ms < 0:
            raise ValueError("average latency target must be non-negative")
        if self.tlat_ms < 0:
            object.__setattr__(self, "tlat_ms", self.tavg_ms)
        object.__setattr__(self, "scope", GoalScope(self.scope))

    def describe(self) -> str:
        return f"mean read latency <= {self.tavg_ms:g} ms ({self.scope.value})"


PerformanceGoal = Union[QoSGoal, AverageLatencyGoal]
