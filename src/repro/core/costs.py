"""The MC-PERF cost model (Table 1 constants).

Replication cost = storage cost + replica-creation cost (equation (1) of the
paper), optionally extended with a late-access penalty (11), a write/update
cost (12) and a node-opening cost (13).

The paper's experiments use ``alpha = beta = 1`` and all other unit costs 0
(storing one object for one interval costs 1; creating one replica costs 1);
only relative costs matter.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Unit costs for the MC-PERF objective.

    Attributes
    ----------
    alpha:
        Storage cost per object per evaluation interval.
    beta:
        Cost of creating one replica (network transfer).
    gamma:
        Penalty per unit of excess latency for accesses missing the latency
        threshold (extension (11); served best-effort from the origin).
    delta:
        Cost per update message: each write to an object costs ``delta`` per
        replica of that object (extension (12)).
    zeta:
        Cost of enabling (opening) a node for replica placement
        (extension (13); the deployment scenario uses 10 000).
    """

    alpha: float = 1.0
    beta: float = 1.0
    gamma: float = 0.0
    delta: float = 0.0
    zeta: float = 0.0

    def __post_init__(self) -> None:
        for name in ("alpha", "beta", "gamma", "delta", "zeta"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @staticmethod
    def paper_defaults() -> "CostModel":
        """The §6 experimental setting: alpha = beta = 1, everything else 0."""
        return CostModel(alpha=1.0, beta=1.0)

    @staticmethod
    def deployment_defaults(zeta: float = 10_000.0) -> "CostModel":
        """The §6.2 deployment setting: paper defaults plus a node-opening cost."""
        return CostModel(alpha=1.0, beta=1.0, zeta=zeta)

    def with_zeta(self, zeta: float) -> "CostModel":
        return CostModel(self.alpha, self.beta, self.gamma, self.delta, zeta)
