"""On-line adaptive heuristic selection (the paper's §7 future work).

The paper closes with: "Currently, we are investigating on-line approaches
to dynamically adapt the placement heuristic to changing systems and
workloads."  This module implements that extension on top of the bound
machinery:

* :func:`selection_timeline` — the *analysis* view: slide a window over the
  demand matrix and re-run the §6.1 selection per window, exposing when the
  recommended class flips (e.g. a workload drifting from WEB-like to
  GROUP-like popularity).
* :class:`AdaptivePlacement` — the *actuation* view: a simulator heuristic
  that periodically rebuilds an MC-PERF problem from the demand it has
  observed, recomputes the class bounds, and hot-swaps its inner heuristic
  to a member of the newly recommended class (replicas are adopted by the
  successor, so switching pays only the reconciliation cost).
"""

from __future__ import annotations

import dataclasses
import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.classes import HeuristicClass, get_class
from repro.core.costs import CostModel
from repro.core.goals import QoSGoal
from repro.core.problem import MCPerfProblem
from repro.core.selection import SelectionReport, select_heuristic
from repro.heuristics.base import PlacementHeuristic
from repro.workload.demand import DemandMatrix

logger = logging.getLogger(__name__)


@dataclass
class TimelinePoint:
    """The selection outcome for one sliding window."""

    start_interval: int
    end_interval: int  # exclusive
    recommended: Optional[str]
    bounds: Dict[str, Optional[float]]

    def __str__(self) -> str:
        return (
            f"[{self.start_interval}, {self.end_interval}): "
            f"{self.recommended or 'none feasible'}"
        )


def selection_timeline(
    problem: MCPerfProblem,
    window: int,
    step: Optional[int] = None,
    classes: Optional[Sequence[object]] = None,
    backend: str = "auto",
) -> List[TimelinePoint]:
    """Re-run the selection methodology over sliding demand windows.

    Parameters
    ----------
    problem:
        The full-horizon problem; its demand matrix is windowed.
    window:
        Window length in evaluation intervals.
    step:
        Window stride (defaults to ``window`` — disjoint windows).
    classes:
        Candidate classes (defaults to the Figure-1 set).
    """
    if window < 1:
        raise ValueError("window must be at least 1 interval")
    step = step if step is not None else window
    if step < 1:
        raise ValueError("step must be positive")
    demand = problem.demand
    points: List[TimelinePoint] = []
    start = 0
    while start < demand.num_intervals:
        end = min(start + window, demand.num_intervals)
        windowed = DemandMatrix(
            reads=demand.reads[:, start:end, :].copy(),
            writes=demand.writes[:, start:end, :].copy(),
            interval_s=demand.interval_s,
        )
        sub = dataclasses.replace(
            problem, demand=windowed, warmup_intervals=0
        )
        report = select_heuristic(
            sub, classes=classes, do_rounding=False, backend=backend
        )
        points.append(
            TimelinePoint(
                start_interval=start,
                end_interval=end,
                recommended=report.recommended,
                bounds={name: report.bound(name) for name in report.results},
            )
        )
        if end >= demand.num_intervals:
            break
        start += step
    return points


#: Factory signature: given the simulation context, build a heuristic.
HeuristicFactory = Callable[[object], PlacementHeuristic]


def default_factories(
    capacity: int, replicas: int, period_s: float, tlat_ms: float
) -> Dict[str, HeuristicFactory]:
    """Reasonable class -> concrete-heuristic factories for actuation."""
    from repro.heuristics.caching import LRUCaching
    from repro.heuristics.greedy_global import GreedyGlobalPlacement
    from repro.heuristics.qiu import QiuGreedyPlacement

    return {
        "storage-constrained": lambda ctx: GreedyGlobalPlacement(
            capacity, period_s=period_s, tlat_ms=tlat_ms
        ),
        "replica-constrained": lambda ctx: QiuGreedyPlacement(
            replicas, period_s=period_s, tlat_ms=tlat_ms
        ),
        "caching": lambda ctx: LRUCaching(capacity),
    }


class AdaptivePlacement(PlacementHeuristic):
    """A heuristic-of-heuristics that re-selects its class on line.

    Every ``reselect_every`` periods it builds an MC-PERF problem from the
    last ``window`` periods of *observed* demand, runs the bound-based
    selection over its candidate classes, and — if the recommendation
    changed — swaps the inner heuristic (the successor adopts the current
    replicas via :meth:`~repro.heuristics.base.PlacementHeuristic.on_adopt`).

    Parameters
    ----------
    factories:
        Mapping from class name to a heuristic factory; the candidate set.
    goal:
        The QoS goal selection optimizes for.
    period_s:
        Planning period (shared with the inner heuristics).
    window / reselect_every:
        Sliding-window length and re-selection cadence, in periods.
    initial:
        Class to start with (defaults to the first factory key).
    """

    clairvoyant = False

    def __init__(
        self,
        factories: Dict[str, HeuristicFactory],
        goal: QoSGoal,
        period_s: float,
        window: int = 4,
        reselect_every: int = 2,
        initial: Optional[str] = None,
        costs: Optional[CostModel] = None,
    ):
        if not factories:
            raise ValueError("need at least one heuristic factory")
        if period_s <= 0:
            raise ValueError("period must be positive")
        if window < 1 or reselect_every < 1:
            raise ValueError("window and reselect_every must be >= 1")
        unknown = [name for name in factories if name not in _known_class_names()]
        if unknown:
            raise KeyError(f"unknown heuristic classes: {unknown}")
        self.factories = dict(factories)
        self.goal = goal
        self.period_s = period_s
        self.window = window
        self.reselect_every = reselect_every
        self.costs = costs or CostModel.paper_defaults()
        self.initial = initial or next(iter(factories))
        if self.initial not in factories:
            raise KeyError(f"initial class {self.initial!r} has no factory")
        self.current_class: str = self.initial
        self.switches: List[tuple] = []
        self._inner: Optional[PlacementHeuristic] = None
        self._observed: List[np.ndarray] = []

    # The simulator reads routing per request; delegate to the inner choice.
    @property
    def routing(self) -> str:  # type: ignore[override]
        return self._inner.routing if self._inner is not None else "global"

    def describe(self) -> str:
        return f"Adaptive(current={self.current_class}, window={self.window})"

    # -- lifecycle -----------------------------------------------------------

    def on_start(self, ctx) -> None:
        self.current_class = self.initial
        self.switches = []
        self._observed = []
        self._inner = self.factories[self.current_class](ctx)
        self._inner.on_start(ctx)

    def _reselect(self, index: int, ctx) -> None:
        recent = self._observed[-self.window :]
        if not recent:
            return
        reads = np.stack(recent, axis=1)  # (N, W, K)
        if reads.sum() <= 0:
            return
        demand = DemandMatrix(reads=reads, interval_s=self.period_s)
        problem = MCPerfProblem(
            topology=ctx.topology,
            demand=demand,
            goal=self.goal,
            costs=self.costs,
        )
        classes = [get_class(name) for name in self.factories]
        report = select_heuristic(problem, classes=classes, do_rounding=False)
        choice = report.recommended
        if choice is None or choice == self.current_class:
            return
        logger.info(
        "adaptive: switching %s -> %s at period %d", self.current_class, choice, index
        )
        self.switches.append((index, self.current_class, choice))
        self.current_class = choice
        self._inner = self.factories[choice](ctx)
        self._inner.on_adopt(ctx)

    def on_interval(self, index, ctx, past_demand, next_demand) -> None:
        if index > 0:
            self._observed.append(past_demand.copy())
        if index > 0 and index % self.reselect_every == 0:
            self._reselect(index, ctx)
        assert self._inner is not None
        self._inner.on_interval(index, ctx, past_demand, next_demand)

    def on_access(self, request, served_ms, ctx) -> None:
        assert self._inner is not None
        self._inner.on_access(request, served_ms, ctx)


def _known_class_names() -> set:
    from repro.core.classes import STANDARD_CLASSES

    return set(STANDARD_CLASSES)
