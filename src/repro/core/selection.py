"""The heuristic-selection methodology (§6.1).

Given a system, workload and performance goal, compute the general lower
bound and the bounds of every candidate heuristic class, then recommend the
class with the lowest bound.  The recommendation is qualified exactly as the
paper prescribes: if the best class's bound is close to the general bound,
no heuristic can do significantly better; otherwise the report flags that
classes outside the candidate set might be worth considering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.bounds import LowerBoundResult
from repro.core.classes import FIGURE1_CLASSES, HeuristicClass, get_class
from repro.core.problem import MCPerfProblem
from repro.runner.resilience import TaskFailure

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.runner.execute import ExperimentRunner


@dataclass
class SelectionReport:
    """Ranked per-class bounds plus the recommendation.

    ``failures`` holds classes whose bound task exhausted the runner's
    recovery paths (key ``"general"`` for the general bound itself) — they
    are excluded from the ranking but reported, so a partial batch still
    yields a recommendation from the classes that did solve.
    """

    problem: MCPerfProblem
    general: LowerBoundResult
    results: Dict[str, LowerBoundResult] = field(default_factory=dict)
    recommended: Optional[str] = None
    near_optimal: bool = False
    comparable: List[str] = field(default_factory=list)
    infeasible: List[str] = field(default_factory=list)
    failures: Dict[str, TaskFailure] = field(default_factory=dict)

    def bound(self, name: str) -> Optional[float]:
        result = self.results.get(name)
        return result.lp_cost if result and result.feasible else None

    def ranking(self) -> List[str]:
        """Feasible classes from cheapest to most expensive bound."""
        feasible = [
            (name, r.lp_cost) for name, r in self.results.items() if r.feasible
        ]
        feasible.sort(key=lambda item: (item[1], item[0]))
        return [name for name, _cost in feasible]

    def render(self) -> str:
        lines = [
            f"Heuristic selection for: {self.problem.goal.describe()}",
            f"  general lower bound: "
            + (f"{self.general.lp_cost:.1f}" if self.general.feasible else "infeasible"),
            "",
            f"{'class':34s} {'bound':>12s} {'feasible cost':>14s} {'vs general':>11s}",
        ]
        general = self.general.lp_cost if self.general.feasible else None
        for name in self.ranking():
            r = self.results[name]
            rel = (
                f"{r.lp_cost / general:7.2f}x"
                if general and general > 0 and r.lp_cost is not None
                else "    n/a"
            )
            feas = f"{r.feasible_cost:12.1f}" if r.feasible_cost is not None else " " * 12
            lines.append(f"{name:34s} {r.lp_cost:12.1f} {feas:>14s} {rel:>11s}")
        for name in self.infeasible:
            lines.append(f"{name:34s} {'cannot meet goal':>12s}")
        for name, failure in self.failures.items():
            what = "timed out" if failure.timed_out else failure.error_type
            lines.append(f"{name:34s} {f'failed: {what}':>16s}")
        lines.append("")
        if self.recommended:
            qualifier = (
                "no heuristic can be significantly better"
                if self.near_optimal
                else "consider classes outside the candidate set too"
            )
            lines.append(f"Recommended class: {self.recommended} ({qualifier})")
            if self.comparable:
                lines.append(
                    "Comparable alternatives: " + ", ".join(self.comparable)
                )
        else:
            lines.append("No candidate class can meet the goal.")
        return "\n".join(lines)


def resolve_candidates(classes: Optional[Sequence[object]]) -> List[HeuristicClass]:
    """Candidate classes for selection: names/objects, or the Figure-1 set."""
    if classes is None:
        return [get_class(n) for n in FIGURE1_CLASSES if n != "general"]
    return [c if isinstance(c, HeuristicClass) else get_class(str(c)) for c in classes]


def selection_tasks(
    problem: MCPerfProblem,
    candidates: Sequence[HeuristicClass],
    do_rounding: bool = True,
    run_length: bool = False,
    backend: str = "auto",
) -> List[object]:
    """The selection's task graph: the general bound plus one per candidate."""
    from repro.runner.tasks import BoundTask

    def task(properties, label):
        return BoundTask(
            problem=problem,
            properties=properties,
            do_rounding=do_rounding,
            run_length=run_length,
            backend=backend,
            label=label,
        )

    return [task(None, "bound[general]")] + [
        task(cls.properties, f"bound[{cls.name}]") for cls in candidates
    ]


def assemble_report(
    problem: MCPerfProblem,
    candidates: Sequence[HeuristicClass],
    general: LowerBoundResult,
    results: Sequence[LowerBoundResult],
    near_optimal_factor: float = 1.5,
    comparable_factor: float = 1.1,
) -> SelectionReport:
    """Rank per-class bounds and derive the recommendation (§6.1 rules).

    ``general`` and entries of ``results`` may be
    :class:`~repro.runner.resilience.TaskFailure` records (a resilient
    runner with ``on_error`` ``skip``/``degrade``); failed classes are
    reported but never ranked, and a failed general bound only disables the
    near-optimality qualifier, not the recommendation itself.
    """
    failures: Dict[str, TaskFailure] = {}
    if isinstance(general, TaskFailure):
        failures["general"] = general
        from repro.core.properties import HeuristicProperties

        general = LowerBoundResult(
            properties=HeuristicProperties(),
            feasible=False,
            status="failed",
            reason=f"general bound failed: {general.error}",
        )
    report = SelectionReport(problem=problem, general=general, failures=failures)
    for cls, result in zip(candidates, results):
        if isinstance(result, TaskFailure):
            report.failures[cls.name] = result
            continue
        report.results[cls.name] = result
        if not result.feasible:
            report.infeasible.append(cls.name)

    ranking = report.ranking()
    if ranking:
        best = ranking[0]
        report.recommended = best
        best_cost = report.results[best].lp_cost or 0.0
        if general.feasible and general.lp_cost and general.lp_cost > 0:
            report.near_optimal = best_cost <= near_optimal_factor * general.lp_cost
        report.comparable = [
            name
            for name in ranking[1:]
            if (report.results[name].lp_cost or float("inf"))
            <= comparable_factor * best_cost
        ]
    return report


def select_heuristic(
    problem: MCPerfProblem,
    classes: Optional[Sequence[object]] = None,
    near_optimal_factor: float = 1.5,
    comparable_factor: float = 1.1,
    do_rounding: bool = True,
    run_length: bool = False,
    backend: str = "auto",
    runner: Optional["ExperimentRunner"] = None,
) -> SelectionReport:
    """Run the §6.1 methodology and return a :class:`SelectionReport`.

    Parameters
    ----------
    problem:
        The MC-PERF instance.
    classes:
        Candidate classes — names or :class:`HeuristicClass` objects;
        defaults to the Figure-1 set (minus the general bound, which is
        always computed).
    near_optimal_factor:
        A recommendation within this factor of the general bound is flagged
        "no heuristic can be significantly better".
    comparable_factor:
        Classes within this factor of the best bound are reported as
        comparable alternatives.
    runner:
        Optional :class:`~repro.runner.execute.ExperimentRunner`; the
        general + per-class bound solves are independent tasks, so a runner
        parallelizes and caches them.  None solves serially in-process.
    """
    from repro.runner.execute import run_tasks

    candidates = resolve_candidates(classes)
    tasks = selection_tasks(
        problem,
        candidates,
        do_rounding=do_rounding,
        run_length=run_length,
        backend=backend,
    )
    results = run_tasks(tasks, runner)
    return assemble_report(
        problem,
        candidates,
        results[0],
        results[1:],
        near_optimal_factor=near_optimal_factor,
        comparable_factor=comparable_factor,
    )
