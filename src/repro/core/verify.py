"""Independent verification of MC-PERF placements (compatibility shim).

.. deprecated::
    The implementation moved to :mod:`repro.audit.certificates` so the
    audit subsystem is the one source of truth for "is this result
    trustworthy".  This module re-exports the historical names
    (:func:`verify_placement`, :class:`PlacementReport`) unchanged;
    existing imports keep working.  New code should import from
    :mod:`repro.audit` — see docs/AUDIT.md for the migration note.
"""

from __future__ import annotations

from repro.audit.certificates import PlacementReport, verify_placement

__all__ = ["PlacementReport", "verify_placement"]
