"""Independent verification of MC-PERF placements.

:func:`verify_placement` checks a concrete (integral) store matrix against
everything a class-restricted MC-PERF solution must satisfy:

1. **Integrality** — every cell is 0 or 1.
2. **Creation legality** — every up-transition happens at an interval the
   class's Know/Hist/React fixing permits (constraints (20)/(20a)/(21)).
3. **Goal satisfaction** — the QoS or average-latency goal holds per scope.
4. **Cost** — the class-accounted cost, for comparison against bounds.

Used by tests, by the rounding pipeline's self-checks, and available to
users validating placements produced by their own heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.evaluate import CostBreakdown, meets_goal, solution_cost
from repro.core.formulation import Formulation, compute_allowed_create


@dataclass
class PlacementReport:
    """Outcome of verifying a placement."""

    valid: bool
    integral: bool
    creation_legal: bool
    goal_met: bool
    cost: Optional[CostBreakdown] = None
    problems: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.valid

    def __str__(self) -> str:
        if self.valid:
            return f"valid placement ({self.cost})"
        return "invalid placement: " + "; ".join(self.problems)


def verify_placement(
    form: Formulation,
    store: np.ndarray,
    tol: float = 1e-6,
    max_reported: int = 10,
) -> PlacementReport:
    """Verify a store matrix against a formulation's class and goal."""
    inst = form.instance
    problems: List[str] = []

    expected = (inst.num_storers, inst.num_intervals, inst.num_objects)
    if store.shape != expected:
        raise ValueError(f"store has shape {store.shape}, expected {expected}")

    # 1. integrality
    fractional = np.nonzero((store > tol) & (store < 1 - tol))
    integral = len(fractional[0]) == 0
    if not integral:
        for ns, i, k in list(zip(*fractional))[:max_reported]:
            problems.append(f"fractional store[{ns},{i},{k}]={store[ns, i, k]:.4f}")

    # 2. creation legality
    allowed = form.allowed_create
    creation_legal = True
    if allowed is not None:
        initial = (
            inst.initial_store
            if inst.initial_store is not None
            else np.zeros((store.shape[0], store.shape[2]))
        )
        reported = 0
        for ns in range(store.shape[0]):
            for k in range(store.shape[2]):
                prev = float(initial[ns, k])
                for i in range(store.shape[1]):
                    cur = float(store[ns, i, k])
                    if cur > prev + tol and not allowed[ns, i, k]:
                        creation_legal = False
                        if reported < max_reported:
                            problems.append(
                                f"creation at store[{ns},{i},{k}] violates the "
                                "class's history/knowledge restriction"
                            )
                            reported += 1
                    prev = cur

    # 3. goal
    goal_met = meets_goal(inst, form.problem.goal, store)
    if not goal_met:
        problems.append("performance goal not met")

    # 4. cost
    cost = solution_cost(
        inst,
        form.properties,
        form.problem.costs,
        store,
        goal=form.problem.goal,
        count_opening=form.open_index is not None,
    )

    return PlacementReport(
        valid=integral and creation_legal and goal_met,
        integral=integral,
        creation_legal=creation_legal,
        goal_met=goal_met,
        cost=cost,
        problems=problems,
    )
