"""Vectorized MC-PERF assembly — the fast path of ``build_formulation``.

The legacy builder in :mod:`repro.core.formulation` emits the O(Ns*I*K)
row families one ``add_row`` call at a time; at Figure-2 scale that is tens
of thousands of Python-level calls.  This module constructs the same model
from NumPy index/coeff blocks pushed through the bulk LP APIs
(:meth:`~repro.lp.model.LinearProgram.add_vars_bulk` /
:meth:`~repro.lp.model.LinearProgram.add_rows_bulk`).

The output is equivalent row-for-row to the legacy builder — same variable
order, names, bounds and objectives; same row order, names, senses,
sparsity patterns and coefficients (right-hand sides agree to floating-point
regrouping) — which the equivalence tests in
``tests/core/test_vectorized_formulation.py`` assert on randomized
instances.  Keep the two builders in lockstep: any structural change here
must land in the legacy builder too, and vice versa.

Cell ordering invariants (inherited from the legacy loops):

* store/create variables: object (``read_active`` order) outer, then storer
  ascending, then interval ascending, store before create within a cell;
* coupling rows follow the same cell order, skipping bound-only cells;
* sc rows are storer-major, rc rows object-major, open rows storer-major;
* covered variables/rows are demander-major, then object, then interval;
* QoS rows follow scope-key first-visit order.

The average-latency routing family (7)-(10) stays on the shared legacy
path — it is interleaved per cell and not a measured hot spot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.goals import AverageLatencyGoal, GoalScope, QoSGoal
from repro.core.problem import MCPerfProblem
from repro.core.properties import (
    HeuristicProperties,
    ReplicaConstraint,
    StorageConstraint,
)
from repro.lp.model import LinearProgram


def build_formulation_vectorized(
    problem: MCPerfProblem,
    properties: Optional[HeuristicProperties] = None,
    with_open_vars: Optional[bool] = None,
):
    """Assemble the MC-PERF LP for one heuristic class (vectorized)."""
    from repro.core.formulation import (
        Formulation,
        _build_average_latency,
        compute_allowed_create,
    )

    props = properties or HeuristicProperties()
    inst = problem.instance(props)
    costs = problem.costs
    goal = problem.goal
    nd_count, intervals, objects = inst.reads.shape
    ns_count = inst.num_storers
    use_open = with_open_vars if with_open_vars is not None else costs.zeta > 0

    lp = LinearProgram(name=f"mcperf[{props.describe()}]")

    reads = inst.qos_reads()
    demanded = reads.sum(axis=1) > 0
    read_active = np.nonzero(reads.sum(axis=(0, 1)) > 0)[0]
    ka_count = len(read_active)

    if isinstance(goal, AverageLatencyGoal):
        useful = (inst.serve.T.astype(np.int64) @ demanded.astype(np.int64)) > 0
    else:
        useful = (inst.reach.T.astype(np.int64) @ demanded.astype(np.int64)) > 0

    allowed = compute_allowed_create(inst, props)
    possible = None
    if allowed is not None:
        possible = np.logical_or.accumulate(allowed, axis=1)
        if inst.initial_store is not None:
            possible |= (inst.initial_store > 0)[:, None, :]

    sc = props.storage_constraint
    rc = props.replica_constraint
    if sc is not StorageConstraint.NONE:
        store_alpha = 0.0
    elif rc is not ReplicaConstraint.NONE:
        store_alpha = 0.0
    else:
        store_alpha = costs.alpha

    writes_per_ik = inst.writes.sum(axis=0)

    store_idx = np.full((ns_count, intervals, objects), -1, dtype=np.int64)
    create_idx = np.full((ns_count, intervals, objects), -1, dtype=np.int64)
    covered_idx = np.full((nd_count, intervals, objects), -1, dtype=np.int64)

    # --- store / create variables (one bulk block) --------------------------
    # Cell arrays in legacy order: object (read_active) outer, storer, interval.
    store_mask = np.broadcast_to(
        useful[:, read_active].T[:, :, None], (ka_count, ns_count, intervals)
    )
    if possible is not None:
        store_mask = store_mask & possible[:, :, read_active].transpose(2, 0, 1)
    if allowed is not None:
        create_mask = store_mask & allowed[:, :, read_active].transpose(2, 0, 1)
    else:
        create_mask = store_mask

    ka_l, ns_l, i_l = np.nonzero(store_mask)
    k_l = read_active[ka_l] if ka_count else ka_l
    has_create = create_mask[ka_l, ns_l, i_l]
    ncells = len(ka_l)
    widths = 1 + has_create.astype(np.int64)
    ends = np.cumsum(widths)
    store_off = ends - widths  # store variable's offset within the block
    total_vars = int(ends[-1]) if ncells else 0

    names_arr = np.empty(total_vars, dtype=object)
    names_arr[store_off] = [
        f"store[n{n},i{i},k{k}]"
        for n, i, k in zip(ns_l.tolist(), i_l.tolist(), k_l.tolist())
    ]
    create_off = store_off[has_create] + 1
    names_arr[create_off] = [
        f"create[n{n},i{i},k{k}]"
        for n, i, k in zip(
            ns_l[has_create].tolist(), i_l[has_create].tolist(), k_l[has_create].tolist()
        )
    ]
    obj_arr = np.full(total_vars, costs.beta, dtype=np.float64)
    obj_arr[store_off] = store_alpha + costs.delta * writes_per_ik[i_l, k_l]

    base = lp.num_variables
    lp.add_vars_bulk(names_arr.tolist(), lower=0.0, upper=1.0, obj=obj_arr)
    store_idx[ns_l, i_l, k_l] = base + store_off
    create_idx[ns_l[has_create], i_l[has_create], k_l[has_create]] = base + create_off

    # --- create coupling (3)/(4), in cell order -----------------------------
    init = inst.initial_store
    s_cur = base + store_off
    c_cur = create_idx[ns_l, i_l, k_l]
    s_prev = np.where(
        i_l > 0, store_idx[ns_l, np.maximum(i_l - 1, 0), k_l], -1
    ) if ncells else np.empty(0, dtype=np.int64)
    init_val = (
        init[ns_l, k_l].astype(np.float64)
        if init is not None
        else np.zeros(ncells, dtype=np.float64)
    )
    have_c = c_cur >= 0
    have_p = s_prev >= 0
    case_first_create = ~have_p & have_c  # (4): store <= create + initial
    case_first_fixed = ~have_p & ~have_c  # bound-only: store <= initial
    case_chain_create = have_p & have_c  # (3): store <= prev + create
    nnz = np.where(case_chain_create, 3, 2)
    nnz[case_first_fixed] = 0
    row_mask = ~case_first_fixed
    lengths = nnz[row_mask]
    nrows = len(lengths)
    if nrows:
        indptr = np.zeros(nrows + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        starts = indptr[:-1]
        fidx = np.empty(int(indptr[-1]), dtype=np.int64)
        fcf = np.empty(int(indptr[-1]), dtype=np.float64)
        fidx[starts] = s_cur[row_mask]
        fcf[starts] = 1.0
        fidx[starts + 1] = np.where(case_first_create, c_cur, s_prev)[row_mask]
        fcf[starts + 1] = -1.0
        third = case_chain_create[row_mask]
        fidx[starts[third] + 2] = c_cur[row_mask][third]
        fcf[starts[third] + 2] = -1.0
        rhs = np.where(case_first_create, init_val, 0.0)[row_mask]
        lp.add_rows_bulk(indptr, fidx, fcf, "<=", rhs)
    for c in np.flatnonzero(case_first_fixed):
        lp.set_bounds(int(s_cur[c]), 0.0, min(1.0, float(init_val[c])))

    # --- storage constraint (16)/(16a) --------------------------------------
    cap_index = None
    cap_node_index = None
    if sc is StorageConstraint.UNIFORM:
        cap_index = lp.var("capacity", obj=costs.alpha * ns_count * intervals).index
    elif sc is StorageConstraint.PER_NODE:
        cap_node_index = np.full(ns_count, -1, dtype=np.int64)
        for ns in range(ns_count):
            if (store_idx[ns] >= 0).any():
                cap_node_index[ns] = lp.var(
                    f"capacity[n{ns}]", obj=costs.alpha * intervals
                ).index
    if sc is not StorageConstraint.NONE:
        if cap_index is not None:
            cap_per_ns = np.full(ns_count, cap_index, dtype=np.int64)
        elif cap_node_index is not None:
            cap_per_ns = cap_node_index
        else:
            cap_per_ns = np.full(ns_count, -1, dtype=np.int64)
        S = store_idx[:, :, read_active]  # (Ns, I, Ka)
        mask = (S >= 0) & (cap_per_ns >= 0)[:, None, None]
        counts = mask.sum(axis=2)  # (Ns, I)
        row_ok = counts > 0
        ns_r, i_r = np.nonzero(row_ok)
        lengths = counts[row_ok]
        if len(lengths):
            _append_trailing_rows(
                lp,
                S[mask],
                lengths,
                cap_per_ns[ns_r],
                names=[f"sc[n{n},i{i}]" for n, i in zip(ns_r.tolist(), i_r.tolist())],
            )

    # --- replica constraint (17)/(17a) --------------------------------------
    rep_index = None
    rep_object_index = None
    charge_rc = rc is not ReplicaConstraint.NONE and sc is StorageConstraint.NONE
    if rc is ReplicaConstraint.UNIFORM:
        rep_obj = costs.alpha * intervals * len(read_active) if charge_rc else 0.0
        rep_index = lp.var("replicas", obj=rep_obj).index
    elif rc is ReplicaConstraint.PER_OBJECT:
        rep_object_index = np.full(objects, -1, dtype=np.int64)
        for k in read_active:
            rep_object_index[k] = lp.var(
                f"replicas[k{k}]", obj=costs.alpha * intervals if charge_rc else 0.0
            ).index
    if rc is not ReplicaConstraint.NONE:
        S2 = store_idx[:, :, read_active].transpose(2, 1, 0)  # (Ka, I, Ns)
        mask = S2 >= 0
        counts = mask.sum(axis=2)  # (Ka, I)
        row_ok = counts > 0
        ka_r, i_r = np.nonzero(row_ok)
        lengths = counts[row_ok]
        if len(lengths):
            rep_per_ka = (
                np.full(ka_count, rep_index, dtype=np.int64)
                if rep_index is not None
                else rep_object_index[read_active]
            )
            _append_trailing_rows(
                lp,
                S2[mask],
                lengths,
                rep_per_ka[ka_r],
                names=[
                    f"rc[i{i},k{k}]"
                    for i, k in zip(i_r.tolist(), read_active[ka_r].tolist())
                ],
            )

    # --- node opening (13)/(14) ---------------------------------------------
    open_index = None
    if use_open:
        open_index = np.full(ns_count, -1, dtype=np.int64)
        any_store = (store_idx >= 0).any(axis=(1, 2))
        rng = lp.add_vars_bulk(
            [f"open[n{n}]" for n in np.flatnonzero(any_store).tolist()],
            lower=0.0,
            upper=1.0,
            obj=costs.zeta,
        )
        open_index[any_store] = np.arange(rng.start, rng.stop, dtype=np.int64)
        S3 = store_idx[:, :, read_active].transpose(0, 2, 1)  # (Ns, Ka, I)
        sel = (S3 >= 0) & (open_index >= 0)[:, None, None]
        svals = S3[sel]
        n_open_rows = len(svals)
        if n_open_rows:
            openvals = np.repeat(open_index, sel.sum(axis=(1, 2)))
            fidx = np.empty(2 * n_open_rows, dtype=np.int64)
            fidx[0::2] = svals
            fidx[1::2] = openvals
            fcf = np.tile(np.array([1.0, -1.0]), n_open_rows)
            indptr = np.arange(n_open_rows + 1, dtype=np.int64) * 2
            lp.add_rows_bulk(indptr, fidx, fcf, "<=", np.zeros(n_open_rows))

    objective_constant = 0.0
    structurally_infeasible = False
    infeasible_reason = ""
    qos_meta: Dict[object, Tuple[int, float, float, float]] = {}

    if isinstance(goal, QoSGoal):
        gamma_pen = np.maximum(inst.origin_latency - goal.tlat_ms, 0.0) * costs.gamma
        cell_lists: Dict[object, List[Tuple[int, float]]] = {}
        covered_const: Dict[object, float] = {}
        total_reads: Dict[object, float] = {}
        scope = goal.scope

        def scope_key(nd: int, k: int):
            if scope is GoalScope.PER_USER:
                return nd
            if scope is GoalScope.OVERALL:
                return "all"
            if scope is GoalScope.PER_OBJECT:
                return ("k", k)
            return (nd, k)

        # Pass 1 (per demander): locate demand cells, extract each cell's
        # reachable holders, and accumulate covered-variable names/objectives
        # so the whole family lands in one bulk block.
        cov_names: List[str] = []
        cov_obj_chunks: List[np.ndarray] = []
        per_nd: List[Optional[tuple]] = []
        for nd in range(nd_count):
            cols = reads[nd][:, read_active]  # (I, Ka)
            ka_c, i_c = np.nonzero(cols.T > 0)
            if len(ka_c) == 0:
                per_nd.append(None)
                continue
            r_c = cols[i_c, ka_c]
            k_c = read_active[ka_c]
            if inst.origin_covers[nd]:
                per_nd.append((ka_c, i_c, k_c, r_c, None, None, None))
                continue
            reachable = np.nonzero(inst.reach[nd])[0]
            if len(reachable):
                holder_grid = store_idx[
                    reachable[:, None], i_c[None, :], k_c[None, :]
                ]  # (Rn, ncells)
                hmask = holder_grid >= 0
                hcounts = hmask.sum(axis=0)
                # Transposed selection flattens cell-major with storers
                # ascending within each cell — the legacy holder order.
                holders_flat = holder_grid.T[hmask.T]
            else:
                hcounts = np.zeros(len(ka_c), dtype=np.int64)
                holders_flat = np.empty(0, dtype=np.int64)
            elig = hcounts > 0
            if costs.gamma > 0 and gamma_pen[nd] > 0:
                objective_constant += float((gamma_pen[nd] * r_c).sum())
            cov_names.extend(
                f"covered[n{nd},i{i},k{k}]"
                for i, k in zip(i_c[elig].tolist(), k_c[elig].tolist())
            )
            if costs.gamma > 0:
                cov_obj_chunks.append(-(gamma_pen[nd] * r_c[elig]))
            else:
                cov_obj_chunks.append(np.zeros(int(elig.sum())))
            per_nd.append((ka_c, i_c, k_c, r_c, elig, hcounts, holders_flat))

        cov_base = lp.num_variables
        if cov_names:
            lp.add_vars_bulk(
                cov_names, lower=0.0, upper=1.0, obj=np.concatenate(cov_obj_chunks)
            )

        # Pass 2 (per demander): cover rows in cell order + per-scope-key
        # bookkeeping in first-visit order (drives QoS row emission).
        cov_at = cov_base
        for nd in range(nd_count):
            data = per_nd[nd]
            if data is None:
                continue
            ka_c, i_c, k_c, r_c, elig, hcounts, holders_flat = data
            run_starts = np.flatnonzero(
                np.r_[True, ka_c[1:] != ka_c[:-1]]
            )  # first cell of each object run
            run_ends = np.r_[run_starts[1:], len(ka_c)]
            if elig is None:  # origin-covered demander: constants only
                for s, e in zip(run_starts.tolist(), run_ends.tolist()):
                    key = scope_key(nd, int(k_c[s]))
                    rsum = float(r_c[s:e].sum())
                    total_reads[key] = total_reads.get(key, 0.0) + rsum
                    covered_const[key] = covered_const.get(key, 0.0) + rsum
                continue
            n_elig = int(elig.sum())
            cov_cells = np.full(len(ka_c), -1, dtype=np.int64)
            cov_cells[elig] = np.arange(cov_at, cov_at + n_elig, dtype=np.int64)
            cov_at += n_elig
            covered_idx[nd, i_c[elig], k_c[elig]] = cov_cells[elig]
            if n_elig:
                lengths = 1 + hcounts[elig]
                indptr = np.zeros(n_elig + 1, dtype=np.int64)
                np.cumsum(lengths, out=indptr[1:])
                starts = indptr[:-1]
                fidx = np.empty(int(indptr[-1]), dtype=np.int64)
                fcf = np.empty(int(indptr[-1]), dtype=np.float64)
                fidx[starts] = cov_cells[elig]
                fcf[starts] = 1.0
                hpos = (
                    np.arange(len(holders_flat), dtype=np.int64)
                    + np.repeat(np.arange(n_elig, dtype=np.int64), hcounts[elig])
                    + 1
                )
                fidx[hpos] = holders_flat
                fcf[hpos] = -1.0
                lp.add_rows_bulk(
                    indptr,
                    fidx,
                    fcf,
                    "<=",
                    np.zeros(n_elig),
                    names=[
                        f"cover[n{nd},i{i},k{k}]"
                        for i, k in zip(i_c[elig].tolist(), k_c[elig].tolist())
                    ],
                )
            for s, e in zip(run_starts.tolist(), run_ends.tolist()):
                key = scope_key(nd, int(k_c[s]))
                total_reads[key] = total_reads.get(key, 0.0) + float(r_c[s:e].sum())
                sel = elig[s:e]
                if sel.any():
                    cell_lists.setdefault(key, []).extend(
                        zip(cov_cells[s:e][sel].tolist(), r_c[s:e][sel].tolist())
                    )

        # --- QoS rows (2): identical to the legacy emission ------------------
        for key, denom in total_reads.items():
            if denom <= 0:
                continue
            required = goal.fraction * denom
            const = covered_const.get(key, 0.0)
            cells = cell_lists.get(key, [])
            max_possible = const + sum(r for _idx, r in cells)
            row_index = -1
            if cells:
                lp.add_row(
                    [idx for idx, _r in cells],
                    [r for _idx, r in cells],
                    ">=",
                    required - const,
                    name=f"qos[{key}]",
                )
                row_index = lp.num_constraints - 1
            qos_meta[key] = (row_index, float(denom), float(const), float(max_possible))
            if max_possible < required - 1e-9:
                structurally_infeasible = True
                infeasible_reason = (
                    f"goal scope {key!r}: at most {max_possible / denom:.5f} of reads "
                    f"coverable, goal requires {goal.fraction:.5f}"
                )
    else:
        _build_average_latency(lp, inst, goal, store_idx, read_active, covered_idx, props)

    form = Formulation(
        lp=lp,
        problem=problem,
        properties=props,
        instance=inst,
        store_idx=store_idx,
        create_idx=create_idx,
        covered_idx=covered_idx,
        active_objects=read_active,
        allowed_create=allowed,
        objective_constant=objective_constant,
        structurally_infeasible=structurally_infeasible,
        infeasible_reason=infeasible_reason,
        cap_index=cap_index,
        cap_node_index=cap_node_index,
        rep_index=rep_index,
        rep_object_index=rep_object_index,
        open_index=open_index,
    )
    if isinstance(goal, QoSGoal):
        form.qos_meta = qos_meta
    if isinstance(goal, AverageLatencyGoal):
        form.route_idx = getattr(lp, "_route_idx", {})
    return form


def _append_trailing_rows(lp, entries, lengths, trailing, names):
    """Bulk-add rows of the shape ``sum(entries_r) - trailing_r <= 0``.

    ``entries`` is the flat concatenation of each row's +1.0 columns (row
    major), ``lengths`` the per-row entry counts, ``trailing`` the per-row
    -1.0 column (a capacity/replica variable) appended last — the shared
    shape of the sc (16) and rc (17) families.
    """
    nrows = len(lengths)
    sizes = lengths + 1
    indptr = np.zeros(nrows + 1, dtype=np.int64)
    np.cumsum(sizes, out=indptr[1:])
    total = int(indptr[-1])
    fidx = np.empty(total, dtype=np.int64)
    fcf = np.empty(total, dtype=np.float64)
    # Entry e of row r lands at e + r: each completed row inserted exactly
    # one trailing column before it.
    pos = np.arange(len(entries), dtype=np.int64) + np.repeat(
        np.arange(nrows, dtype=np.int64), lengths
    )
    fidx[pos] = entries
    fcf[pos] = 1.0
    tail = indptr[1:] - 1
    fidx[tail] = trailing
    fcf[tail] = -1.0
    lp.add_rows_bulk(indptr, fidx, fcf, "<=", np.zeros(nrows), names=names)
