"""The domain-specific greedy rounding algorithm (Appendix C, Figures 5–7).

The LP relaxation leaves fractional ``store`` values.  The paper's rounding
algorithm alternates:

1. **Round up** the fractional value with the best cost-to-reward ratio
   (reward = newly covered demand, counting only demand not already covered
   by an integral replica — Figure 6).
2. **Round down** as many fractional values as possible without violating
   the QoS goal, best cost-savings-per-coverage-lost first (Figure 7).

until no fractional values remain.  The result is a *feasible integral*
solution whose cost demonstrates how tight the LP lower bound is.  Replica-
creation cost deltas are priced exactly from the neighbouring intervals
(the four cases of Figures 6/7 collapse into one exact recomputation of the
boundary ``create`` terms).  Final cost is re-derived from the integral
matrix with the storage/replica-constraint capacity adjustments of Figure 5.

The run-length optimization the paper reports (rounding runs of consecutive
intervals with the same fractional value as one unit, ~10× faster for <5 %
extra cost) is available via ``run_length=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.evaluate import (
    CostBreakdown,
    meets_goal,
    qos_by_scope,
    solution_cost,
)
from repro.core.formulation import Formulation
from repro.core.goals import GoalScope, QoSGoal

_FRAC_TOL = 1e-6
_QOS_TOL = 1e-7


@dataclass
class _Unit:
    """A roundable unit: one fractional cell, or a run of equal cells."""

    ns: int
    k: int
    start: int  # first interval of the run
    end: int  # last interval (inclusive)
    value: float

    @property
    def length(self) -> int:
        return self.end - self.start + 1


@dataclass
class RoundingResult:
    """Outcome of rounding an LP point to a feasible integral placement."""

    store: np.ndarray
    cost: CostBreakdown
    feasible: bool
    fractional_units: int
    rounded_up: int
    rounded_down: int
    repaired: int
    legalized: int = 0
    qos: Dict[object, float] = field(default_factory=dict)
    #: Attached AuditReport when the rounder ran with auditing on.
    audit: Optional[object] = None

    @property
    def total_cost(self) -> float:
        return self.cost.total

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe encoding for the runner's cache/artifact layer."""
        from repro.serialize import array_to_jsonable, scope_items_to_jsonable

        return {
            "store": array_to_jsonable(self.store),
            "cost": self.cost.to_dict(),
            "feasible": self.feasible,
            "fractional_units": self.fractional_units,
            "rounded_up": self.rounded_up,
            "rounded_down": self.rounded_down,
            "repaired": self.repaired,
            "legalized": self.legalized,
            "qos": scope_items_to_jsonable(self.qos),
            "audit": None if self.audit is None else self.audit.to_dict(),
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "RoundingResult":
        """Inverse of :meth:`to_dict`."""
        from repro.audit.report import AuditReport
        from repro.serialize import array_from_jsonable, scope_items_from_jsonable

        audit = payload.get("audit")
        return RoundingResult(
            store=array_from_jsonable(payload["store"]),
            cost=CostBreakdown.from_dict(payload["cost"]),
            feasible=bool(payload["feasible"]),
            fractional_units=int(payload["fractional_units"]),
            rounded_up=int(payload["rounded_up"]),
            rounded_down=int(payload["rounded_down"]),
            repaired=int(payload["repaired"]),
            legalized=int(payload.get("legalized", 0)),
            qos=scope_items_from_jsonable(payload.get("qos", [])),
            audit=None if audit is None else AuditReport.from_dict(audit),
        )


class _Rounder:
    """Stateful implementation of the Figure-5 loop."""

    def __init__(self, form: Formulation, store: np.ndarray, run_length: bool):
        self.form = form
        self.inst = form.instance
        self.goal = form.problem.goal
        if not isinstance(self.goal, QoSGoal):
            raise TypeError("rounding is defined for the QoS goal metric")
        self.costs = form.problem.costs
        self.store = store
        self.initial = (
            self.inst.initial_store.astype(float)
            if self.inst.initial_store is not None
            else np.zeros((store.shape[0], store.shape[2]))
        )
        self.run_length = run_length

        reach = self.inst.reach.astype(bool)
        self.reachers: List[np.ndarray] = [
            np.nonzero(reach[:, ns])[0] for ns in range(self.inst.num_storers)
        ]
        # Fractional coverage sums per demand cell.
        self.cov = np.einsum("ds,sik->dik", self.inst.reach.astype(float), store)
        self.reads = self.inst.qos_reads()
        # Integral-replica coverage counts (for Figure 6's reward): number of
        # already-rounded-to-1 stores reaching each demand cell.  Maintained
        # incrementally by _apply so reward lookups are O(affected cells).
        self.int_cov = np.einsum(
            "ds,sik->dik",
            self.inst.reach.astype(np.int64),
            (store >= 1.0 - _FRAC_TOL).astype(np.int64),
        )

        # Per-scope satisfied coverage and requirements.
        self.sat: Dict[object, float] = {}
        self.req: Dict[object, float] = {}
        self._init_scope_tracking()

        self.units = self._collect_units()
        self.rounded_up = 0
        self.rounded_down = 0

    # -- scope bookkeeping ---------------------------------------------------

    def _scope_key(self, nd: int, k: int):
        scope = self.goal.scope
        if scope is GoalScope.PER_USER:
            return nd
        if scope is GoalScope.OVERALL:
            return "all"
        if scope is GoalScope.PER_OBJECT:
            return ("k", k)
        return (nd, k)

    def _init_scope_tracking(self) -> None:
        inst = self.inst
        for nd in range(inst.num_demanders):
            origin = bool(inst.origin_covers[nd])
            nz = np.nonzero(self.reads[nd])
            for i, k in zip(*nz):
                r = float(self.reads[nd, i, k])
                key = self._scope_key(nd, int(k))
                self.req[key] = self.req.get(key, 0.0) + r
                covered = r if origin else r * min(1.0, float(self.cov[nd, i, k]))
                self.sat[key] = self.sat.get(key, 0.0) + covered
        for key in self.req:
            self.req[key] *= self.goal.fraction

    # -- unit collection -------------------------------------------------------

    def _collect_units(self) -> List[_Unit]:
        ns_count, intervals, _objects = self.store.shape
        # Snap near-integral values.
        self.store[self.store < _FRAC_TOL] = 0.0
        self.store[self.store > 1.0 - _FRAC_TOL] = 1.0
        units: List[_Unit] = []
        frac_ns, frac_i, frac_k = np.nonzero(
            (self.store > 0.0) & (self.store < 1.0)
        )
        if not self.run_length:
            for ns, i, k in zip(frac_ns, frac_i, frac_k):
                units.append(_Unit(int(ns), int(k), int(i), int(i), float(self.store[ns, i, k])))
            return units
        # Group consecutive equal-valued intervals per (ns, k).
        by_pair: Dict[Tuple[int, int], List[int]] = {}
        for ns, i, k in zip(frac_ns, frac_i, frac_k):
            by_pair.setdefault((int(ns), int(k)), []).append(int(i))
        for (ns, k), idxs in by_pair.items():
            idxs.sort()
            start = idxs[0]
            prev = idxs[0]
            value = float(self.store[ns, prev, k])
            for i in idxs[1:]:
                v = float(self.store[ns, i, k])
                if i == prev + 1 and abs(v - value) < 1e-9:
                    prev = i
                    continue
                units.append(_Unit(ns, k, start, prev, value))
                start, prev, value = i, i, v
            units.append(_Unit(ns, k, start, prev, value))
        return units

    # -- pricing ------------------------------------------------------------------

    def _beta_delta(self, unit: _Unit, target: float) -> float:
        """Exact change in replica-creation cost from setting the unit to target.

        Only the run boundaries change: the create into ``start`` and the
        create into ``end + 1`` (interior creates of an equal-valued run are
        zero before and after).
        """
        ns, k = unit.ns, unit.k
        before_prev = (
            self.store[ns, unit.start - 1, k] if unit.start > 0 else self.initial[ns, k]
        )
        old_in = max(0.0, unit.value - before_prev)
        new_in = max(0.0, target - before_prev)
        delta = new_in - old_in
        if unit.end + 1 < self.store.shape[1]:
            succ = self.store[ns, unit.end + 1, k]
            old_out = max(0.0, succ - unit.value)
            new_out = max(0.0, succ - target)
            delta += new_out - old_out
        return self.costs.beta * delta

    def _cost_delta(self, unit: _Unit, target: float) -> float:
        """Storage + creation cost change of rounding the unit to target."""
        alpha_part = self.costs.alpha * (target - unit.value) * unit.length
        return alpha_part + self._beta_delta(unit, target)

    def _qos_effects(self, unit: _Unit, target: float) -> Dict[object, float]:
        """Per-scope-key change in satisfied coverage (without mutating state)."""
        deltas: Dict[object, float] = {}
        change = target - unit.value
        for nd in self.reachers[unit.ns]:
            for i in range(unit.start, unit.end + 1):
                r = self.reads[nd, i, unit.k]
                if r <= 0 or self.inst.origin_covers[nd]:
                    continue
                old = float(self.cov[nd, i, unit.k])
                gain = min(1.0, old + change) - min(1.0, old)
                if gain != 0.0:
                    key = self._scope_key(int(nd), unit.k)
                    deltas[key] = deltas.get(key, 0.0) + float(r) * gain
        return deltas

    def _reward(self, unit: _Unit) -> float:
        """Figure-6 reward: demand reachable from the unit's node that no
        integral replica already covers (cached counts, O(affected cells))."""
        reward = 0.0
        for nd in self.reachers[unit.ns]:
            if self.inst.origin_covers[nd]:
                continue
            for i in range(unit.start, unit.end + 1):
                r = self.reads[nd, i, unit.k]
                if r > 0 and self.int_cov[nd, i, unit.k] == 0:
                    reward += float(r)
        return reward

    # -- mutation -------------------------------------------------------------------

    def _apply(self, unit: _Unit, target: float) -> None:
        change = target - unit.value
        int_delta = 1 if target >= 1.0 - _FRAC_TOL else 0
        for nd in self.reachers[unit.ns]:
            for i in range(unit.start, unit.end + 1):
                r = self.reads[nd, i, unit.k]
                old = float(self.cov[nd, i, unit.k])
                self.cov[nd, i, unit.k] = old + change
                if int_delta:
                    # A fractional unit became an integral replica.
                    self.int_cov[nd, i, unit.k] += 1
                if r <= 0 or self.inst.origin_covers[nd]:
                    continue
                gain = min(1.0, old + change) - min(1.0, old)
                if gain != 0.0:
                    key = self._scope_key(int(nd), unit.k)
                    self.sat[key] = self.sat.get(key, 0.0) + float(r) * gain
        self.store[unit.ns, unit.start : unit.end + 1, unit.k] = target
        unit.value = target

    def _down_feasible(self, unit: _Unit) -> Optional[Dict[object, float]]:
        """QoS deltas of rounding down, or None when the goal would break."""
        deltas = self._qos_effects(unit, 0.0)
        for key, delta in deltas.items():
            slack = _QOS_TOL * max(1.0, self.req.get(key, 0.0))
            if self.sat.get(key, 0.0) + delta < self.req.get(key, 0.0) - slack:
                return None
        return deltas

    # -- the Figure-5 loop ---------------------------------------------------------

    def run(self) -> Tuple[int, int]:
        pending = list(self.units)
        while pending:
            # Round-up step: lowest cost / reward ratio.
            best = None
            best_key = None
            for unit in pending:
                cost = max(self._cost_delta(unit, 1.0), 0.0)
                reward = self._reward(unit)
                ratio = cost / reward if reward > 0 else float("inf")
                key = (ratio, cost, unit.ns, unit.start, unit.k)
                if best_key is None or key < best_key:
                    best, best_key = unit, key
            assert best is not None
            self._apply(best, 1.0)
            self.rounded_up += 1
            pending.remove(best)

            # Round-down sweep: best savings per coverage lost, repeatedly.
            while True:
                candidate = None
                candidate_key = None
                candidate_deltas = None
                for unit in pending:
                    deltas = self._down_feasible(unit)
                    if deltas is None:
                        continue
                    savings = -self._cost_delta(unit, 0.0)
                    if savings <= 0:
                        continue
                    lost = -sum(min(d, 0.0) for d in deltas.values())
                    ratio = savings / (lost + 1e-12)
                    key = (-ratio, -savings, unit.ns, unit.start, unit.k)
                    if candidate_key is None or key < candidate_key:
                        candidate, candidate_key, candidate_deltas = unit, key, deltas
                if candidate is None:
                    break
                del candidate_deltas  # applied via _apply below
                self._apply(candidate, 0.0)
                self.rounded_down += 1
                pending.remove(candidate)
        return self.rounded_up, self.rounded_down


def _attach_audit(form: Formulation, result: RoundingResult, audit) -> RoundingResult:
    """Post-rounding hook: certify the placement when auditing is on."""
    from repro.audit import audit_rounding, resolve_mode

    mode = resolve_mode(audit)
    if mode != "off":
        result.audit = audit_rounding(form, result, lp_cost=None, mode=mode)
    return result


def round_solution(
    form: Formulation,
    solution,
    run_length: bool = False,
    repair: bool = True,
    audit: Optional[str] = None,
) -> RoundingResult:
    """Round an LP point to a feasible integral MC-PERF solution.

    Parameters
    ----------
    form:
        The formulation the LP point came from.
    solution:
        An optimal :class:`~repro.lp.solution.LPSolution` for ``form.lp``.
    run_length:
        Round runs of consecutive equal fractional values as single units
        (the paper's speed optimization).
    repair:
        Greedily add replicas if numerical drift left the integral solution
        short of the goal (rare; counted in the result).
    audit:
        Audit mode (None reads ``REPRO_AUDIT``); when on, the integral
        placement is re-certified from scratch (:mod:`repro.audit`) and the
        report attached to ``result.audit``.
    """
    store = form.store_array(solution.values)
    np.clip(store, 0.0, 1.0, out=store)
    rounder = _Rounder(form, store, run_length=run_length)
    num_units = len(rounder.units)
    up, down = rounder.run()
    store = rounder.store
    # Proposition 1 keeps zeros at zero, but independent up/down roundings in
    # one column can still imply a creation at a forbidden interval for
    # Know/Hist/React classes; backfill moves such creations to the latest
    # permitted interval (extra storage only — coverage can only grow).
    legalized = _enforce_create_legality(form, store)

    repaired = 0
    inst = form.instance
    goal = form.problem.goal
    if repair:
        repaired = _repair(form, store)

    cost = solution_cost(
        inst,
        form.properties,
        form.problem.costs,
        store,
        goal=goal,
        count_opening=form.open_index is not None,
    )
    feasible = meets_goal(inst, goal, store)
    result = RoundingResult(
        store=store,
        cost=cost,
        feasible=feasible,
        fractional_units=num_units,
        rounded_up=up,
        rounded_down=down,
        repaired=repaired,
        legalized=legalized,
        qos=qos_by_scope(inst, goal, store) if isinstance(goal, QoSGoal) else {},
    )
    return _attach_audit(form, result, audit)


def round_solution_iterative(
    form: Formulation,
    solution,
    backend: str = "auto",
    repair: bool = True,
    up_threshold: float = 0.9,
    audit: Optional[str] = None,
) -> RoundingResult:
    """LP-guided iterative rounding built on the patch API.

    Alternative to the Appendix-C greedy rounder: repeatedly fix fractional
    ``store`` variables to a bound (``fix_var``) and re-solve the patched
    LP, letting the solver re-optimize everything else.  Because fixings go
    through the patch API, every re-solve is assembly-free — the profile of
    a rounding run shows exactly one ``lp.assembly.rebuild`` (the initial
    assembly) and one ``round.iterative.fix`` per fixing.

    Each round fixes every variable at or above ``up_threshold`` to 1 in
    one batch (one re-solve for many fixings); when none qualify, the
    single largest fractional variable is pushed up instead.  Pushing up
    can violate capacity rows (16)/(17), so an infeasible batch falls back
    to fixing just the largest variable, and an infeasible single fix-up is
    retried as a fix-down before giving up.

    The original bounds of every touched variable are restored before
    returning (also via the patch API), so a formulation can be reused
    across sweep levels afterwards.
    """
    from repro.lp.solution import SolveStatus
    from repro.perf import PERF

    if not isinstance(form.problem.goal, QoSGoal):
        raise TypeError("rounding is defined for the QoS goal metric")
    lp = form.lp
    store_idx = form.store_idx
    var_list = [int(j) for j in store_idx[store_idx >= 0].ravel()]
    saved = [(j, lp.variables[j].lower, lp.variables[j].upper) for j in var_list]
    values = np.asarray(solution.values, dtype=float)

    def fractional():
        return [
            j for j in var_list
            if lp.variables[j].lower != lp.variables[j].upper
            and _FRAC_TOL < values[j] < 1.0 - _FRAC_TOL
        ]

    num_units = len(fractional())
    rounded_up = 0
    rounded_down = 0

    def fix_batch(targets: List[Tuple[int, float]]):
        nonlocal rounded_up, rounded_down
        undo = [(j, lp.variables[j].lower, lp.variables[j].upper) for j, _ in targets]
        for j, value in targets:
            lp.fix_var(j, value)
            PERF.count("round.iterative.fix")
        sol = lp.solve(backend=backend)
        if sol.status is not SolveStatus.OPTIMAL:
            for j, lo, up in undo:
                lp.set_bounds(j, lo, up)
            return None
        rounded_up += sum(1 for _, v in targets if v >= 0.5)
        rounded_down += sum(1 for _, v in targets if v < 0.5)
        return sol

    def can_reach_one(j: int) -> bool:
        up = lp.variables[j].upper
        return up is None or up >= 1.0 - _FRAC_TOL

    try:
        while True:
            frac = fractional()
            if not frac:
                break
            batch = [j for j in frac if values[j] >= up_threshold and can_reach_one(j)]
            sol = fix_batch([(j, 1.0) for j in batch]) if batch else None
            if sol is None:
                # No near-integral batch (or it broke a capacity row):
                # push the single most-committed variable up.
                j = max(frac, key=lambda idx: values[idx])
                sol = fix_batch([(j, 1.0)]) if can_reach_one(j) else None
                if sol is None:
                    sol = fix_batch([(j, 0.0)])
                if sol is None:
                    raise RuntimeError(
                        f"iterative rounding wedged: fixing variable {j} "
                        "either way leaves the LP infeasible"
                    )
            values = np.asarray(sol.values, dtype=float)
            solution = sol
    finally:
        for j, lo, up in saved:
            lp.set_bounds(j, lo, up)

    store = form.store_array(values)
    np.clip(store, 0.0, 1.0, out=store)
    store[store < _FRAC_TOL] = 0.0
    store[store > 1.0 - _FRAC_TOL] = 1.0
    legalized = _enforce_create_legality(form, store)
    repaired = _repair(form, store) if repair else 0
    inst = form.instance
    goal = form.problem.goal
    cost = solution_cost(
        inst,
        form.properties,
        form.problem.costs,
        store,
        goal=goal,
        count_opening=form.open_index is not None,
    )
    result = RoundingResult(
        store=store,
        cost=cost,
        feasible=meets_goal(inst, goal, store),
        fractional_units=num_units,
        rounded_up=rounded_up,
        rounded_down=rounded_down,
        repaired=repaired,
        legalized=legalized,
        qos=qos_by_scope(inst, goal, store),
    )
    return _attach_audit(form, result, audit)


def _enforce_create_legality(form: Formulation, store: np.ndarray) -> int:
    """Backfill creations that landed on forbidden intervals.

    For each column with an up-step at an interval whose create variable was
    fixed away (Know/Hist/React), extend the replica back to the latest
    interval where creation is permitted.  Returns the number of padded
    object-intervals.
    """
    allowed = form.allowed_create
    if allowed is None:
        return 0
    inst = form.instance
    initial = (
        inst.initial_store
        if inst.initial_store is not None
        else np.zeros((store.shape[0], store.shape[2]))
    )
    padded = 0
    ns_list, k_list = np.nonzero(store.sum(axis=1) > 0)
    for ns, k in zip(ns_list, k_list):
        prev = float(initial[ns, k])
        for i in range(store.shape[1]):
            cur = float(store[ns, i, k])
            if cur > prev + 1e-9 and not allowed[ns, i, k]:
                j = i
                while j > 0 and not allowed[ns, j, k]:
                    j -= 1
                if not allowed[ns, j, k] and float(initial[ns, k]) < 1.0:
                    raise RuntimeError(
                        f"no permitted creation interval for store[{ns},{i},{k}]"
                    )
                padded += int((store[ns, j:i, k] < 1.0).sum())
                store[ns, j:i, k] = 1.0
            prev = float(store[ns, i, k])
    return padded


def _repair(form: Formulation, store: np.ndarray, max_steps: int = 10_000) -> int:
    """Greedy round-up repair: add permitted replicas until the goal holds.

    Candidates are cells the formulation created store variables for (so all
    class restrictions remain respected).  Each step adds the replica with
    the best uncovered-demand gain.  Returns the number of replicas added.
    """
    inst = form.instance
    goal = form.problem.goal
    if not isinstance(goal, QoSGoal):
        return 0
    steps = 0
    for _ in range(max_steps):
        achieved = qos_by_scope(inst, goal, store)
        failing = {key for key, v in achieved.items() if v < goal.fraction - 1e-9}
        if not failing:
            return steps
        best = None
        best_gain = 0.0
        cov = np.einsum("ds,sik->dik", inst.reach.astype(float), store)
        candidates = np.nonzero((form.store_idx >= 0) & (store < 0.5))
        for ns, i, k in zip(*candidates):
            # Respect the class's create fixing: only add a replica where it
            # could legally be created (or carried over from the previous
            # interval).
            if (
                form.allowed_create is not None
                and not form.allowed_create[ns, i, k]
                and not (i > 0 and store[ns, i - 1, k] >= 0.5)
            ):
                continue
            gain = 0.0
            for nd in np.nonzero(inst.reach[:, ns])[0]:
                if inst.origin_covers[nd]:
                    continue
                key = _scope_key_for(goal, int(nd), int(k))
                if key not in failing:
                    continue
                r = inst.qos_reads()[nd, i, k] if inst.warmup_intervals else inst.reads[nd, i, k]
                if r > 0 and cov[nd, i, k] < 1.0:
                    gain += float(r) * (min(1.0, cov[nd, i, k] + 1.0) - min(1.0, cov[nd, i, k]))
            if gain > best_gain:
                best_gain = gain
                best = (int(ns), int(i), int(k))
        if best is None:
            raise RuntimeError("rounding repair cannot reach the QoS goal")
        ns, i, k = best
        store[ns, i, k] = 1.0
        steps += 1
    raise RuntimeError("rounding repair exceeded the step limit")


def _scope_key_for(goal: QoSGoal, nd: int, k: int):
    scope = goal.scope
    if scope is GoalScope.PER_USER:
        return nd
    if scope is GoalScope.OVERALL:
        return "all"
    if scope is GoalScope.PER_OBJECT:
        return ("k", k)
    return (nd, k)
