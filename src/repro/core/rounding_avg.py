"""Feasible integral solutions for the average-latency goal.

The paper's rounding algorithm (Appendix C) is defined for the QoS metric;
for the average-latency metric it only notes "the methodology ... is the
same".  This module supplies that missing piece with a greedy
add-then-trim constructor:

1. **Add** replicas in descending LP-support order (cells the relaxation
   liked most first) until every scope's mean latency meets the target —
   each step adds the replica with the best latency-improvement-per-cost
   ratio among the LP's support, falling back to all legal cells if the
   support alone cannot reach the goal.
2. **Trim** replicas in ascending LP-value order whenever removing one
   keeps every scope feasible.
3. **Legalize** creations against the class's Know/Hist/React fixing by the
   same backfill used for QoS rounding.

The result is integral, class-legal and goal-feasible, so
``feasible_cost >= lp_cost`` demonstrates the bound's tightness exactly as
in the QoS case.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.evaluate import average_latency_by_scope, meets_goal, solution_cost
from repro.core.formulation import Formulation
from repro.core.goals import AverageLatencyGoal
from repro.core.rounding import RoundingResult, _enforce_create_legality


def _scope_violations(form: Formulation, store: np.ndarray) -> float:
    """Total mean-latency excess over the target across scopes (0 = feasible)."""
    goal = form.problem.goal
    lat = average_latency_by_scope(form.instance, goal, store)
    return sum(max(0.0, v - goal.tavg_ms) for v in lat.values())


def round_average_latency(
    form: Formulation,
    solution,
    max_steps: int = 100_000,
) -> RoundingResult:
    """Build a feasible integral placement for an average-latency problem."""
    goal = form.problem.goal
    if not isinstance(goal, AverageLatencyGoal):
        raise TypeError("round_average_latency needs an AverageLatencyGoal problem")
    inst = form.instance

    lp_store = form.store_array(solution.values)
    store = (lp_store > 1.0 - 1e-6).astype(float)

    # Candidate cells, best LP support first; zero-support cells last so the
    # constructor can still reach goals the support alone cannot.
    cells: List[Tuple[float, int, int, int]] = []
    ns_idx, i_idx, k_idx = np.nonzero(form.store_idx >= 0)
    for ns, i, k in zip(ns_idx, i_idx, k_idx):
        value = float(lp_store[ns, i, k])
        if store[ns, i, k] < 0.5:
            cells.append((value, int(ns), int(i), int(k)))
    cells.sort(key=lambda item: (-item[0], item[1], item[2], item[3]))

    # --- add phase ---------------------------------------------------------
    added = 0
    violation = _scope_violations(form, store)
    for _step in range(max_steps):
        if violation <= 1e-9:
            break
        best = None
        best_gain = 0.0
        for rank, (value, ns, i, k) in enumerate(cells):
            if store[ns, i, k] > 0.5:
                continue
            store[ns, i, k] = 1.0
            new_violation = _scope_violations(form, store)
            store[ns, i, k] = 0.0
            gain = violation - new_violation
            # Prefer LP-supported cells; tiny epsilon keeps deterministic order.
            score = gain * (1.0 + value)
            if score > best_gain + 1e-12:
                best_gain = score
                best = (ns, i, k)
            if value > 0 and gain > 0 and rank < 32:
                # Good-enough early pick among the strongest support.
                break
        if best is None:
            raise RuntimeError(
                "cannot reach the average-latency goal with this class's "
                "placements (LP was feasible; candidate scan exhausted)"
            )
        ns, i, k = best
        store[ns, i, k] = 1.0
        added += 1
        violation = _scope_violations(form, store)

    # --- trim phase --------------------------------------------------------
    trimmed = 0
    occupied = [
        (float(lp_store[ns, i, k]), int(ns), int(i), int(k))
        for ns, i, k in zip(*np.nonzero(store > 0.5))
    ]
    occupied.sort()  # weakest LP support first
    for value, ns, i, k in occupied:
        store[ns, i, k] = 0.0
        if _scope_violations(form, store) > 1e-9:
            store[ns, i, k] = 1.0
        else:
            trimmed += 1

    legalized = _enforce_create_legality(form, store)
    cost = solution_cost(
        inst,
        form.properties,
        form.problem.costs,
        store,
        goal=goal,
        count_opening=form.open_index is not None,
    )
    return RoundingResult(
        store=store,
        cost=cost,
        feasible=meets_goal(inst, goal, store),
        fractional_units=int(
            ((lp_store > 1e-6) & (lp_store < 1 - 1e-6)).sum()
        ),
        rounded_up=added,
        rounded_down=trimmed,
        repaired=0,
        legalized=legalized,
    )
