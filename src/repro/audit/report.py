"""Structured audit outcomes: :class:`AuditViolation` and :class:`AuditReport`.

An audit *certifies* a result instead of trusting the solver: every check
that ran is named in ``checks``, every invariant that failed becomes a
first-class :class:`AuditViolation` record (never an exception — violations
must survive into run manifests and post-hoc reports), and checks that
could not run (e.g. the differential re-solve on a model too large for the
dense simplex) are listed in ``skipped`` with a reason, so "no violations"
is never silently conflated with "nothing was checked".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Recognized audit modes, in increasing strictness.
AUDIT_MODES = ("off", "fast", "full")

#: Default absolute/relative tolerance for float-arithmetic checks.
DEFAULT_TOL = 1e-6

#: Default slack for cost-ordering gates (rounded >= bound, simulated >=
#: bound).  Relative to the bound, floored at the absolute tolerance.
DEFAULT_EPS = 1e-6


@dataclass
class AuditViolation:
    """One violated invariant.

    Attributes
    ----------
    check:
        The invariant family, e.g. ``"constraint"``, ``"var-bound"``,
        ``"objective"``, ``"differential"``, ``"placement"``,
        ``"bound-gate"``, ``"sim-gate"``, ``"artifact"``.
    subject:
        What was violated — a constraint or variable name, a task content
        digest, or a (class, level) cell label.
    amount:
        Violation magnitude in the check's natural units (0.0 when the
        check is pass/fail).
    message:
        Human-readable detail.
    """

    check: str
    subject: str
    amount: float = 0.0
    message: str = ""

    def __str__(self) -> str:
        text = f"{self.check} {self.subject}: violated by {self.amount:.3g}"
        if self.message:
            text += f" ({self.message})"
        return text

    def to_dict(self) -> Dict[str, object]:
        return {
            "check": self.check,
            "subject": self.subject,
            "amount": float(self.amount),
            "message": self.message,
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "AuditViolation":
        return AuditViolation(
            check=str(payload["check"]),
            subject=str(payload["subject"]),
            amount=float(payload.get("amount", 0.0)),
            message=str(payload.get("message", "")),
        )


@dataclass
class AuditReport:
    """Outcome of auditing one result (or one run).

    ``ok`` is True iff no check produced a violation.  ``checks`` names
    every invariant family that actually ran; ``skipped`` carries
    ``"check: reason"`` strings for checks that could not run in this mode
    or at this size.
    """

    mode: str = "off"
    subject: str = ""
    checks: List[str] = field(default_factory=list)
    violations: List[AuditViolation] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok

    def ran(self, check: str) -> None:
        """Record that a check ran (idempotent, keeps first-run order)."""
        if check not in self.checks:
            self.checks.append(check)

    def skip(self, check: str, reason: str) -> None:
        self.skipped.append(f"{check}: {reason}")

    def flag(
        self, check: str, subject: str, amount: float = 0.0, message: str = ""
    ) -> AuditViolation:
        """Record a violation (also marks the check as run)."""
        self.ran(check)
        violation = AuditViolation(check, subject, amount, message)
        self.violations.append(violation)
        return violation

    def merge(self, other: Optional["AuditReport"]) -> "AuditReport":
        """Fold another report's checks/violations/skips into this one."""
        if other is not None:
            for check in other.checks:
                self.ran(check)
            self.violations.extend(other.violations)
            self.skipped.extend(other.skipped)
        return self

    def worst(self) -> Optional[AuditViolation]:
        """The largest-magnitude violation, or None when clean."""
        return max(self.violations, key=lambda v: v.amount, default=None)

    def render(self, max_violations: int = 10) -> str:
        """Human-readable summary (one line when clean)."""
        head = f"audit[{self.mode}]"
        if self.subject:
            head += f" {self.subject}"
        if self.ok:
            line = f"{head}: OK ({len(self.checks)} checks: {', '.join(self.checks)})"
            if self.skipped:
                line += f"; skipped {len(self.skipped)}"
            return line
        lines = [
            f"{head}: {len(self.violations)} violation(s) "
            f"across {len(self.checks)} checks"
        ]
        shown = sorted(self.violations, key=lambda v: -v.amount)[:max_violations]
        lines += [f"  - {v}" for v in shown]
        if len(self.violations) > len(shown):
            lines.append(f"  ... and {len(self.violations) - len(shown)} more")
        for entry in self.skipped:
            lines.append(f"  ~ skipped {entry}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe encoding for the runner's cache/artifact layer."""
        return {
            "mode": self.mode,
            "subject": self.subject,
            "checks": list(self.checks),
            "violations": [v.to_dict() for v in self.violations],
            "skipped": list(self.skipped),
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "AuditReport":
        """Inverse of :meth:`to_dict`."""
        return AuditReport(
            mode=str(payload.get("mode", "off")),
            subject=str(payload.get("subject", "")),
            checks=[str(c) for c in payload.get("checks", [])],
            violations=[
                AuditViolation.from_dict(v) for v in payload.get("violations", [])
            ],
            skipped=[str(s) for s in payload.get("skipped", [])],
        )
