"""Cross-backend differential checks.

The production backend (scipy/HiGHS) and the pure-Python two-phase simplex
are independent implementations of the same mathematics; on a correctly
assembled model they must agree on feasibility *and* on the optimal
objective.  A disagreement localizes a bug to the assembly/patch layer or a
backend — exactly the silent-drift class of failure the audit subsystem
exists to catch (a stale cached array after a ``fix_var``/``set_rhs`` patch
would show up here first).

The dense simplex is O(rows x cols) *per pivot*, so differential re-solves
are gated by :data:`MAX_DIFFERENTIAL_VARIABLES` (skipped-with-reason above
it) and can be sampled across a task population with
:func:`selected_for_sample` — a deterministic hash of the task's content
digest, so "re-solve 10 % of the bound tasks" picks the same 10 % on every
run and every machine.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.audit.report import AuditReport
from repro.lp.model import LinearProgram
from repro.lp.solution import LPSolution

#: Largest model (variables) the differential re-solve will attempt; the
#: dense simplex tableau is quadratic in this.
MAX_DIFFERENTIAL_VARIABLES = 600

#: Relative objective-agreement tolerance between backends.  Looser than the
#: certificate tolerance: two exact optimizers agree on the optimum, but
#: each reports it through its own float summation order.
DIFFERENTIAL_TOL = 1e-6

#: Environment override for the differential sampling fraction (0..1).
SAMPLE_ENV = "REPRO_AUDIT_SAMPLE"


def resolve_sample(fraction: Optional[float] = None) -> float:
    """The differential sampling fraction: explicit arg, else env, else 1.0."""
    if fraction is not None:
        return min(max(float(fraction), 0.0), 1.0)
    raw = os.environ.get(SAMPLE_ENV, "").strip()
    if not raw:
        return 1.0
    try:
        return min(max(float(raw), 0.0), 1.0)
    except ValueError:
        return 1.0


def selected_for_sample(digest: str, fraction: float) -> bool:
    """Deterministically include a task digest in a ``fraction`` sample.

    Maps the digest's leading hex into [0, 1); identical digests make
    identical decisions everywhere, so sampled audits are reproducible.
    """
    if fraction >= 1.0:
        return True
    if fraction <= 0.0 or not digest:
        return False
    try:
        bucket = int(digest[:12], 16) / float(16**12)
    except ValueError:
        return True
    return bucket < fraction


def audit_differential(
    model: LinearProgram,
    reference: LPSolution,
    mode: str = "full",
    tol: float = DIFFERENTIAL_TOL,
    max_variables: int = MAX_DIFFERENTIAL_VARIABLES,
    subject: str = "",
) -> AuditReport:
    """Re-solve ``model`` on the pure-Python simplex and compare objectives.

    ``subject`` should carry the offending task's content digest (or label)
    so a disagreement is traceable to the exact cached cell.  Models larger
    than ``max_variables`` are skipped with a reason rather than silently
    passed.
    """
    report = AuditReport(mode=mode, subject=subject)
    if reference.backend == "simplex":
        report.skip("differential", "reference solve already used the simplex backend")
        return report
    if model.num_variables > max_variables:
        report.skip(
            "differential",
            f"model has {model.num_variables} variables "
            f"(> {max_variables}); dense simplex re-solve skipped",
        )
        return report

    from repro.lp.simplex import SimplexError, solve_with_simplex

    report.ran("differential")
    name = subject or "differential"
    try:
        check = solve_with_simplex(model)
    except SimplexError as exc:
        report.flag("differential", name, message=f"simplex re-solve failed: {exc}")
        return report

    if check.status is not reference.status:
        report.flag(
            "differential", name,
            message=f"status disagreement: simplex says {check.status.value}, "
            f"reference backend ({reference.backend or 'unknown'}) says "
            f"{reference.status.value}",
        )
        return report
    if not reference.is_optimal:
        return report

    drift = abs(float(check.objective) - float(reference.objective))
    limit = max(tol, tol * abs(float(reference.objective)))
    if drift > limit:
        report.flag(
            "differential", name, drift,
            message=f"objective disagreement: simplex {check.objective:.9g} vs "
            f"{reference.backend or 'reference'} {reference.objective:.9g} "
            f"(tolerance {limit:.3g})",
        )
    return report


#: Largest monolithic LP (estimated variables) the backend-agreement check
#: will assemble and solve.  Far looser than the simplex gate above — the
#: reference here is the scipy path, which handles large sparse models.
MAX_BACKEND_AGREEMENT_VARIABLES = 400_000


def audit_backend_agreement(
    problem,
    properties,
    result,
    mode: str = "full",
    tol: float = DIFFERENTIAL_TOL,
    max_variables: int = MAX_BACKEND_AGREEMENT_VARIABLES,
    subject: str = "",
) -> AuditReport:
    """Differentially check a structural backend against the monolithic LP.

    ``result`` is a :class:`~repro.core.bounds.LowerBoundResult` produced by
    the tree-DP or decomposition backend; the check re-solves the *same*
    problem through the monolithic ``auto`` path and compares feasibility
    and ``lp_cost``.  Instances whose monolithic LP would exceed
    ``max_variables`` (estimated, never assembled) are skipped with a
    reason — the whole point of the structural backends is that the
    monolith is sometimes too big to build.
    """
    report = AuditReport(mode=mode, subject=subject)
    from repro.solvers.registry import estimated_lp_variables

    estimate = estimated_lp_variables(problem)
    if estimate > max_variables:
        report.skip(
            "backend-differential",
            f"monolithic LP would have ~{estimate} variables "
            f"(> {max_variables}); reference re-solve skipped",
        )
        return report

    from repro.core.bounds import compute_lower_bound

    report.ran("backend-differential")
    name = subject or "backend-differential"
    backend = result.backend_used or "structural"
    reference = compute_lower_bound(
        problem, properties, do_rounding=False, backend="auto", audit="off"
    )
    if bool(reference.feasible) != bool(result.feasible):
        report.flag(
            "backend-differential", name,
            message=f"feasibility disagreement: {backend} says "
            f"{'feasible' if result.feasible else 'infeasible'}, the monolithic "
            f"LP says {'feasible' if reference.feasible else 'infeasible'} "
            f"({reference.reason or reference.status})",
        )
        return report
    if not result.feasible:
        return report

    drift = abs(float(result.lp_cost) - float(reference.lp_cost))
    limit = max(tol, tol * abs(float(reference.lp_cost)))
    if drift > limit:
        report.flag(
            "backend-differential", name, drift,
            message=f"bound disagreement: {backend} {result.lp_cost:.9g} vs "
            f"monolithic LP {reference.lp_cost:.9g} (tolerance {limit:.3g})",
        )
    return report
