"""Post-hoc auditing of a completed run directory (``repro audit <run-dir>``).

A run directory (:mod:`repro.runner.artifacts`) records one manifest row and
one payload file per task.  This module re-opens those artifacts — possibly
days later, possibly after the cache or the disk has been touched — and
re-derives every certificate that the stored data supports:

* **per-cell** — payloads decode, internal consistency holds (status vs
  feasibility, stored ``feasible_cost`` vs the rounding's cost breakdown,
  rounding-store integrality, achieved QoS vs the cell's goal level), the
  ``rounded >= bound`` gate, and any violations the original run's in-solve
  audit recorded (``stored-audit``);
* **full placement re-verification** — when the caller supplies the original
  topology/workload (``problem_factory``), each bound cell's problem is
  rebuilt from its manifest metadata and the placement is re-certified from
  scratch (creation legality, goal, cost) via
  :func:`~repro.audit.certificates.audit_bound_result`;
* **cross-cell** — within each class, the LP bound must be non-decreasing
  in the QoS level (the feasible region only shrinks as the goal tightens —
  the duality-flavored monotonicity certificate), and every simulated
  heuristic that meets a level's goal must cost at least its class's bound
  at that level (``sim-gate``, the Figures 5-7 invariant).

The command exits nonzero iff any check records a violation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.audit.certificates import (
    HEURISTIC_CLASS,
    allowance,
    audit_bound_result,
    audit_sim_result,
    sim_gate_violation,
)
from repro.audit.report import DEFAULT_EPS, DEFAULT_TOL, AuditReport

#: Relative slack for the simulated-cost >= class-bound gate.  Looser than
#: the certificate tolerance: the simulator prices storage by occupancy
#: sampling while the LP prices it per interval, so tiny discretization
#: drift is expected even on honest data.
DEFAULT_SIM_EPS = 1e-3


def _load_records(run_dir: Path, report: AuditReport) -> List[Dict[str, object]]:
    manifest = run_dir / "manifest.json"
    report.ran("artifact")
    if not manifest.is_file():
        report.flag("artifact", str(run_dir), message="manifest.json not found")
        return []
    try:
        data = json.loads(manifest.read_text())
    except (OSError, ValueError) as exc:
        report.flag("artifact", str(manifest), message=f"unreadable manifest: {exc}")
        return []
    records = data.get("task_records", [])
    if not isinstance(records, list):
        report.flag("artifact", str(manifest), message="manifest has no task_records")
        return []
    return records


def _load_payload(
    run_dir: Path, rec: Dict[str, object], report: AuditReport
) -> Optional[Dict[str, object]]:
    rel = rec.get("file")
    label = str(rec.get("label", "?"))
    if not rel:
        report.flag("artifact", label, message="ok record without a payload file")
        return None
    path = run_dir / str(rel)
    try:
        body = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        report.flag("artifact", label, message=f"unreadable payload {rel}: {exc}")
        return None
    payload = body.get("payload")
    if not isinstance(payload, dict):
        report.flag("artifact", label, message=f"payload file {rel} carries no payload")
        return None
    return payload


def _check_stored_audit(rec: Dict[str, object], report: AuditReport) -> None:
    stored = rec.get("audit")
    if not isinstance(stored, dict):
        return
    report.ran("stored-audit")
    label = str(rec.get("label", "?"))
    for violation in stored.get("violations", []):
        report.flag(
            "stored-audit", label,
            amount=float(violation.get("amount", 0.0)),
            message=f"recorded by the original run: "
            f"{violation.get('check')}: {violation.get('message') or violation.get('subject')}",
        )


def _audit_bound_payload(
    result, meta: Dict[str, object], label: str,
    tol: float, eps: float, report: AuditReport,
) -> None:
    """Payload-internal checks that need no topology/workload."""
    report.ran("artifact")
    if result.feasible:
        if result.lp_cost is None or not np.isfinite(result.lp_cost):
            report.flag("artifact", label, message="feasible cell without a finite lp_cost")
            return
        if result.status and result.status != "optimal":
            report.flag(
                "artifact", label,
                message=f"feasible cell with non-optimal status {result.status!r}",
            )
    rounding = result.rounding
    if not result.feasible or rounding is None:
        return

    if result.feasible_cost is not None:
        drift = abs(result.feasible_cost - rounding.total_cost)
        if drift > allowance(tol, rounding.total_cost):
            report.flag(
                "artifact", label, drift,
                message=f"feasible_cost {result.feasible_cost:.9g} != "
                f"rounding cost {rounding.total_cost:.9g}",
            )

    report.ran("placement")
    store = np.asarray(rounding.store, dtype=float)
    fractional = np.nonzero((store > tol) & (store < 1 - tol))
    if len(fractional[0]):
        ns, i, k = (int(x[0]) for x in fractional)
        report.flag(
            "placement", label, float(store[ns, i, k]),
            message=f"fractional store[{ns},{i},{k}]={store[ns, i, k]:.4f} "
            "in a supposedly integral rounding",
        )

    level = meta.get("qos")
    if rounding.feasible and rounding.qos and level is not None:
        achieved = min(float(q) for q in rounding.qos.values())
        if achieved < float(level) - allowance(tol, 1.0):
            report.flag(
                "placement", label, float(level) - achieved,
                message=f"stored per-scope QoS {achieved:.6f} below "
                f"the cell's goal level {float(level):g}",
            )

    if rounding.feasible:
        report.ran("bound-gate")
        shortfall = result.lp_cost - rounding.total_cost
        if shortfall > allowance(eps, result.lp_cost):
            report.flag(
                "bound-gate", label, shortfall,
                message=f"rounded cost {rounding.total_cost:.9g} below "
                f"lower bound {result.lp_cost:.9g}",
            )


def _check_monotonicity(
    bound_cells: List[Tuple[Dict[str, object], object]],
    tol: float,
    report: AuditReport,
) -> None:
    """Within a class, the LP bound is non-decreasing in the QoS level."""
    by_class: Dict[str, List[Tuple[float, str, object]]] = {}
    for meta, result in bound_cells:
        cls = meta.get("class")
        level = meta.get("qos")
        if cls is None or level is None or not result.feasible:
            continue
        if result.lp_cost is None or not np.isfinite(result.lp_cost):
            continue
        by_class.setdefault(str(cls), []).append(
            (float(level), str(meta.get("label", cls)), result)
        )
    for cls, cells in by_class.items():
        if len(cells) < 2:
            continue
        report.ran("monotonicity")
        cells.sort(key=lambda c: c[0])
        for (lo_level, _lo_label, lo), (hi_level, hi_label, hi) in zip(cells, cells[1:]):
            if lo_level == hi_level:
                continue
            drop = lo.lp_cost - hi.lp_cost
            if drop > allowance(tol, lo.lp_cost):
                report.flag(
                    "monotonicity", hi_label, drop,
                    message=f"class {cls}: bound at level {hi_level:g} "
                    f"({hi.lp_cost:.9g}) below bound at easier level "
                    f"{lo_level:g} ({lo.lp_cost:.9g})",
                )


def _check_sim_gates(
    bound_cells: List[Tuple[Dict[str, object], object]],
    sim_cells: List[Tuple[Dict[str, object], object]],
    sim_eps: float,
    report: AuditReport,
) -> None:
    for sim_meta, sim in sim_cells:
        heuristic = str(sim_meta.get("heuristic", ""))
        cls = HEURISTIC_CLASS.get(heuristic)
        if cls is None:
            continue
        for meta, bound in bound_cells:
            if str(meta.get("class")) != cls or not bound.feasible:
                continue
            level = meta.get("qos")
            if level is None or bound.lp_cost is None:
                continue
            # The bound caps only heuristics that actually meet the goal: a
            # heuristic missing the level may legitimately be cheaper.
            if not sim.meets(float(level)):
                continue
            sim_gate_violation(
                report, float(sim.total_cost), float(bound.lp_cost), sim_eps,
                subject=f"{sim_meta.get('label', heuristic)} vs "
                f"{meta.get('label', cls)}@{float(level):g}",
            )


def audit_run_dir(
    run_dir,
    problem_factory: Optional[Callable[[Dict[str, object]], object]] = None,
    mode: str = "full",
    tol: float = DEFAULT_TOL,
    eps: float = DEFAULT_EPS,
    sim_eps: float = DEFAULT_SIM_EPS,
) -> AuditReport:
    """Re-verify every cell of a completed run directory.

    ``problem_factory`` (optional) maps a bound cell's manifest ``meta`` to
    its rebuilt :class:`~repro.core.problem.MCPerfProblem`; when provided
    (the CLI builds one from ``-t``/``-w``), each bound cell additionally
    gets the full from-scratch placement re-verification of
    :func:`~repro.audit.certificates.audit_bound_result`.
    """
    from repro.core.bounds import LowerBoundResult
    from repro.simulator.engine import SimulationResult

    run_dir = Path(run_dir)
    report = AuditReport(mode=mode, subject=str(run_dir))
    records = _load_records(run_dir, report)

    bound_cells: List[Tuple[Dict[str, object], object]] = []
    sim_cells: List[Tuple[Dict[str, object], object]] = []
    for rec in records:
        if rec.get("status") != "ok":
            continue
        label = str(rec.get("label", "?"))
        _check_stored_audit(rec, report)
        payload = _load_payload(run_dir, rec, report)
        if payload is None:
            continue
        meta = rec.get("meta") if isinstance(rec.get("meta"), dict) else {}
        meta = dict(meta)
        meta.setdefault("label", label)
        kind = rec.get("kind")
        if kind == "bound":
            try:
                result = LowerBoundResult.from_dict(payload)
            except Exception as exc:
                report.flag("artifact", label, message=f"undecodable bound payload: {exc}")
                continue
            _audit_bound_payload(result, meta, label, tol, eps, report)
            if problem_factory is not None:
                problem = problem_factory(meta)
                if problem is not None:
                    report.merge(
                        audit_bound_result(
                            problem, result.properties, result,
                            mode=mode, tol=tol, eps=eps, subject=label,
                        )
                    )
            bound_cells.append((meta, result))
        elif kind == "simulate":
            try:
                sim = SimulationResult.from_dict(payload)
            except Exception as exc:
                report.flag("artifact", label, message=f"undecodable simulate payload: {exc}")
                continue
            report.merge(audit_sim_result(sim, mode=mode, tol=tol, subject=label))
            sim_cells.append((meta, sim))

    _check_monotonicity(bound_cells, tol, report)
    _check_sim_gates(bound_cells, sim_cells, sim_eps, report)
    return report
