"""Solution auditing: certificates, differential checks, consistency gates.

The paper's method stands on a numerical claim — the LP relaxation is a
true lower bound, the rounded placement is feasible, and every simulated
heuristic's cost sits at or above its class's bound.  This package
*certifies* those invariants instead of trusting the solver:

* :mod:`repro.audit.report` — :class:`AuditReport` / :class:`AuditViolation`,
  the structured outcome every audit produces (violations are records, not
  exceptions — they flow into run manifests and post-hoc reports);
* :mod:`repro.audit.exact` — exact :class:`fractions.Fraction` re-checking
  of LP solutions (primal feasibility, variable bounds, objective);
* :mod:`repro.audit.certificates` — placement/rounding/bound-result
  certificates recomputed from scratch, plus the historical
  ``check_solution`` / ``verify_placement`` APIs (one source of truth;
  ``repro.lp`` and ``repro.core`` re-export them from here);
* :mod:`repro.audit.differential` — cross-backend re-solves on the
  pure-Python simplex with objective-agreement assertions;
* :mod:`repro.audit.posthoc` — ``repro audit <run-dir>``: re-verify a
  completed run's artifacts, including the cross-cell monotonicity and
  simulated-cost >= bound gates.

Modes (``--audit`` / ``REPRO_AUDIT``): ``off`` (default), ``fast``
(float-arithmetic objective recomputation + sampled constraint
spot-checks + from-scratch placement certificates), ``full`` (exact
arithmetic on every row/bound + differential re-solve).  See docs/AUDIT.md.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.audit.certificates import (
    HEURISTIC_CLASS,
    PlacementReport,
    ValidationReport,
    Violation,
    allowance,
    audit_bound_result,
    audit_placement,
    audit_rounding,
    audit_continuous_result,
    audit_sim_result,
    check_solution,
    sim_gate_violation,
    verify_placement,
)
from repro.audit.differential import (
    DIFFERENTIAL_TOL,
    audit_backend_agreement,
    audit_differential,
    resolve_sample,
    selected_for_sample,
)
from repro.audit.exact import audit_lp_solution, exact_objective
from repro.audit.posthoc import DEFAULT_SIM_EPS, audit_run_dir
from repro.audit.report import (
    AUDIT_MODES,
    DEFAULT_EPS,
    DEFAULT_TOL,
    AuditReport,
    AuditViolation,
)

#: Environment variable supplying the default audit mode.
MODE_ENV = "REPRO_AUDIT"

__all__ = [
    "AUDIT_MODES",
    "DEFAULT_EPS",
    "DEFAULT_SIM_EPS",
    "DEFAULT_TOL",
    "DIFFERENTIAL_TOL",
    "HEURISTIC_CLASS",
    "MODE_ENV",
    "AuditReport",
    "AuditViolation",
    "PlacementReport",
    "ValidationReport",
    "Violation",
    "allowance",
    "audit_backend_agreement",
    "audit_bound_result",
    "audit_differential",
    "audit_lp_solution",
    "audit_placement",
    "audit_rounding",
    "audit_run_dir",
    "audit_continuous_result",
    "audit_sim_result",
    "check_solution",
    "exact_objective",
    "resolve_mode",
    "resolve_sample",
    "selected_for_sample",
    "sim_gate_violation",
    "verify_placement",
]


def resolve_mode(mode: Optional[str] = None) -> str:
    """The effective audit mode: explicit argument, else ``REPRO_AUDIT``, else off.

    An explicit unknown mode raises; an unknown environment value is
    ignored (an env typo must not change results or crash a worker).
    """
    if mode:
        if mode not in AUDIT_MODES:
            raise ValueError(
                f"unknown audit mode {mode!r} (expected one of {', '.join(AUDIT_MODES)})"
            )
        return mode
    env = os.environ.get(MODE_ENV, "").strip().lower()
    return env if env in AUDIT_MODES else "off"
