"""Solution certificates: the one source of truth for "is this result trustworthy".

Consolidates the checks that historically lived in ``repro.lp.validate``
(float-tolerance LP feasibility) and ``repro.core.verify`` (placement
integrality / creation legality / goal / cost) — both deleted; ``repro.lp``
and ``repro.core`` re-export the names from here — and adds the
result-level certificates the audit subsystem is built on:

* :func:`check_solution` / :func:`verify_placement` — the historical APIs,
  unchanged semantics.
* :func:`audit_placement` — a placement certificate as an
  :class:`~repro.audit.report.AuditReport`: storage/replica-constraint/QoS
  satisfaction recomputed *from scratch* (instance arithmetic, never the LP
  arrays).
* :func:`audit_rounding` — placement certificate + independent cost
  recomputation + the ``rounded_cost >= lower_bound - eps`` gate.
* :func:`audit_bound_result` — the artifact-level certificate for a
  (possibly cache-served) :class:`~repro.core.bounds.LowerBoundResult`:
  internal consistency, from-scratch placement re-verification against a
  freshly lowered instance, and the bound gate.  This is what the runner
  runs on cache *hits* to catch on-disk corruption and stale digests.
* :func:`audit_sim_result` / :func:`sim_gate_violation` — simulate-side
  consistency and the ``simulated_cost >= class_lower_bound - eps`` gate.

Tolerance policy: float comparisons use an absolute-or-relative allowance
``max(tol, tol * |reference|)``; cost-ordering gates use the looser ``eps``
the caller supplies (see docs/AUDIT.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.audit.report import DEFAULT_EPS, DEFAULT_TOL, AuditReport

# repro.lp and repro.core imports stay function-local: both packages
# re-export this module's historical APIs from their __init__, so a
# module-level import here would close an import cycle during package
# initialization.
if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.bounds import LowerBoundResult
    from repro.core.evaluate import CostBreakdown
    from repro.core.formulation import Formulation
    from repro.core.problem import MCPerfProblem
    from repro.core.properties import HeuristicProperties
    from repro.lp.model import LinearProgram
    from repro.simulator.continuous import ContinuousResult
    from repro.simulator.engine import SimulationResult

#: Which Table-3 class bounds each simulated heuristic must respect: a
#: heuristic is a member of its class, so its measured cost can never beat
#: the class's lower bound (Figures 5-7's central claim).
HEURISTIC_CLASS: Dict[str, str] = {
    "lru": "caching",
    "lfu": "caching",
    "coop-lru": "cooperative-caching",
    "greedy-global": "storage-constrained",
    "qiu": "replica-constrained",
    "random": "replica-constrained",
}


def allowance(tol: float, reference: float) -> float:
    """Absolute-or-relative slack: ``max(tol, tol * |reference|)``."""
    return max(tol, tol * abs(reference))


# ---------------------------------------------------------------------------
# Historical APIs (formerly lp/validate.py and core/verify.py).
# ---------------------------------------------------------------------------


@dataclass
class Violation:
    """One violated constraint or bound."""

    kind: str  # "constraint" | "lower" | "upper"
    name: str
    amount: float

    def __str__(self) -> str:
        return f"{self.kind} {self.name}: violated by {self.amount:.3g}"


@dataclass
class ValidationReport:
    """Outcome of checking a point against a model."""

    feasible: bool
    objective: float
    violations: List[Violation] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.feasible


def check_solution(model: LinearProgram, values, tol: float = 1e-6) -> ValidationReport:
    """Check ``values`` against every bound and constraint of ``model``.

    Returns a :class:`ValidationReport`; ``report.feasible`` is True when all
    bounds and constraints hold within ``tol``.
    """
    from repro.lp.model import Sense

    if len(values) != model.num_variables:
        raise ValueError(
            f"value vector has length {len(values)}, model has {model.num_variables} variables"
        )
    violations: List[Violation] = []

    for v in model.variables:
        x = float(values[v.index])
        if x < v.lower - tol:
            violations.append(Violation("lower", v.name, v.lower - x))
        if v.upper is not None and x > v.upper + tol:
            violations.append(Violation("upper", v.name, x - v.upper))

    for con in model.constraints:
        act = con.activity(values)
        if con.sense is Sense.LE and act > con.rhs + tol:
            violations.append(Violation("constraint", con.name, act - con.rhs))
        elif con.sense is Sense.GE and act < con.rhs - tol:
            violations.append(Violation("constraint", con.name, con.rhs - act))
        elif con.sense is Sense.EQ and abs(act - con.rhs) > tol:
            violations.append(Violation("constraint", con.name, abs(act - con.rhs)))

    objective = sum(v.objective * float(values[v.index]) for v in model.variables)
    return ValidationReport(feasible=not violations, objective=objective, violations=violations)


@dataclass
class PlacementReport:
    """Outcome of verifying a placement."""

    valid: bool
    integral: bool
    creation_legal: bool
    goal_met: bool
    cost: Optional[CostBreakdown] = None
    problems: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.valid

    def __str__(self) -> str:
        if self.valid:
            return f"valid placement ({self.cost})"
        return "invalid placement: " + "; ".join(self.problems)


def _placement_report(
    instance,
    properties,
    goal,
    costs,
    store: np.ndarray,
    allowed: Optional[np.ndarray],
    count_opening: bool,
    tol: float,
    max_reported: int,
) -> PlacementReport:
    """The placement certificate against a lowered instance (no LP needed)."""
    from repro.core.evaluate import meets_goal, solution_cost

    problems: List[str] = []

    expected = (instance.num_storers, instance.num_intervals, instance.num_objects)
    if store.shape != expected:
        raise ValueError(f"store has shape {store.shape}, expected {expected}")

    # 1. integrality
    fractional = np.nonzero((store > tol) & (store < 1 - tol))
    integral = len(fractional[0]) == 0
    if not integral:
        for ns, i, k in list(zip(*fractional))[:max_reported]:
            problems.append(f"fractional store[{ns},{i},{k}]={store[ns, i, k]:.4f}")

    # 2. creation legality
    creation_legal = True
    if allowed is not None:
        initial = (
            instance.initial_store
            if instance.initial_store is not None
            else np.zeros((store.shape[0], store.shape[2]))
        )
        reported = 0
        for ns in range(store.shape[0]):
            for k in range(store.shape[2]):
                prev = float(initial[ns, k])
                for i in range(store.shape[1]):
                    cur = float(store[ns, i, k])
                    if cur > prev + tol and not allowed[ns, i, k]:
                        creation_legal = False
                        if reported < max_reported:
                            problems.append(
                                f"creation at store[{ns},{i},{k}] violates the "
                                "class's history/knowledge restriction"
                            )
                            reported += 1
                    prev = cur

    # 3. goal
    goal_met = meets_goal(instance, goal, store)
    if not goal_met:
        problems.append("performance goal not met")

    # 4. cost
    cost = solution_cost(
        instance,
        properties,
        costs,
        store,
        goal=goal,
        count_opening=count_opening,
    )

    return PlacementReport(
        valid=integral and creation_legal and goal_met,
        integral=integral,
        creation_legal=creation_legal,
        goal_met=goal_met,
        cost=cost,
        problems=problems,
    )


def verify_placement(
    form: Formulation,
    store: np.ndarray,
    tol: float = 1e-6,
    max_reported: int = 10,
) -> PlacementReport:
    """Verify a store matrix against a formulation's class and goal."""
    return _placement_report(
        form.instance,
        form.properties,
        form.problem.goal,
        form.problem.costs,
        store,
        form.allowed_create,
        form.open_index is not None,
        tol,
        max_reported,
    )


# ---------------------------------------------------------------------------
# Result-level certificates (AuditReport-producing).
# ---------------------------------------------------------------------------


def _fold_placement(report: AuditReport, placement: PlacementReport, subject: str) -> None:
    """Translate a PlacementReport into AuditViolation records."""
    report.ran("placement")
    if placement.valid:
        return
    for problem in placement.problems:
        report.flag("placement", subject, message=problem)


def audit_placement(
    form: Formulation,
    store: np.ndarray,
    mode: str = "fast",
    tol: float = DEFAULT_TOL,
    subject: str = "",
) -> AuditReport:
    """Certify an integral store matrix as a feasible class placement.

    Everything is recomputed from the lowered instance — coverage, goal
    satisfaction, creation legality, cost — never read back from LP arrays.
    """
    report = AuditReport(mode=mode, subject=subject)
    _fold_placement(report, verify_placement(form, store, tol=tol), subject or "store")
    return report


def audit_rounding(
    form: Formulation,
    rounding,
    lp_cost: Optional[float],
    mode: str = "fast",
    tol: float = DEFAULT_TOL,
    eps: float = DEFAULT_EPS,
    subject: str = "",
) -> AuditReport:
    """Certify a :class:`~repro.core.rounding.RoundingResult`.

    Placement certificate + independent cost recomputation (the stored
    :class:`CostBreakdown` must match a from-scratch ``solution_cost``) +
    the ``rounded_cost >= lower_bound - eps`` gate.  A rounding the rounder
    itself marked infeasible is a legitimate answer, not a violation — only
    the placement checks that still apply (integrality, legality) run then.
    """
    from repro.core.goals import QoSGoal

    report = AuditReport(mode=mode, subject=subject)
    placement = verify_placement(form, rounding.store, tol=tol)
    if rounding.feasible:
        _fold_placement(report, placement, subject or "rounding")
    else:
        # Expect the from-scratch check to agree that the goal is unmet.
        report.ran("placement")
        if placement.goal_met and isinstance(form.problem.goal, QoSGoal):
            report.flag(
                "placement", subject or "rounding",
                message="rounding flagged infeasible but the goal is met on recheck",
            )
        for problem in placement.problems:
            if "goal" not in problem:
                report.flag("placement", subject or "rounding", message=problem)

    report.ran("cost")
    recomputed = placement.cost.total if placement.cost is not None else None
    if recomputed is not None:
        drift = abs(recomputed - rounding.total_cost)
        if drift > allowance(tol, recomputed):
            report.flag(
                "cost", subject or "rounding", drift,
                message=f"stored cost {rounding.total_cost:.9g} != "
                f"recomputed {recomputed:.9g}",
            )

    if lp_cost is not None and rounding.feasible:
        report.ran("bound-gate")
        shortfall = lp_cost - rounding.total_cost
        if shortfall > allowance(eps, lp_cost):
            report.flag(
                "bound-gate", subject or "rounding", shortfall,
                message=f"rounded cost {rounding.total_cost:.9g} below "
                f"lower bound {lp_cost:.9g}",
            )
    return report


def audit_bound_result(
    problem: "MCPerfProblem",
    properties: Optional["HeuristicProperties"],
    result: "LowerBoundResult",
    mode: str = "fast",
    tol: float = DEFAULT_TOL,
    eps: float = DEFAULT_EPS,
    subject: str = "",
) -> AuditReport:
    """Artifact-level certificate for a (possibly cache-served) bound result.

    Works from the result payload alone plus the original problem — no LP
    assembly.  The problem is lowered to a fresh
    :class:`~repro.core.problem.PlacementInstance` (cheap numpy), and the
    rounding store (when present) is re-verified from scratch: integrality,
    creation legality, goal satisfaction, cost recomputation, and the
    ``rounded >= bound`` gate.  Run by the scheduler on every cache hit
    when auditing is on, so a flipped coefficient or truncated payload on
    disk is caught before it contaminates a sweep.
    """
    from repro.core.formulation import compute_allowed_create
    from repro.core.properties import HeuristicProperties

    report = AuditReport(mode=mode, subject=subject)
    props = properties or result.properties or HeuristicProperties()

    report.ran("artifact")
    if result.feasible:
        if result.lp_cost is None or not np.isfinite(result.lp_cost):
            report.flag(
                "artifact", subject or "bound", message="feasible result without a finite lp_cost"
            )
            return report
        if result.lp_cost < -allowance(tol, 1.0):
            report.flag(
                "artifact", subject or "bound", -result.lp_cost,
                message=f"negative lower bound {result.lp_cost:.9g}",
            )
        if result.status and result.status != "optimal":
            report.flag(
                "artifact", subject or "bound",
                message=f"feasible result with non-optimal status {result.status!r}",
            )
    else:
        if not result.status:
            report.flag(
                "artifact", subject or "bound",
                message="infeasible result without a status",
            )
        return report

    rounding = result.rounding
    if rounding is None:
        return report

    report.ran("artifact")
    if result.feasible_cost is not None:
        drift = abs(result.feasible_cost - rounding.total_cost)
        if drift > allowance(tol, rounding.total_cost):
            report.flag(
                "artifact", subject or "bound", drift,
                message=f"feasible_cost {result.feasible_cost:.9g} != "
                f"rounding cost {rounding.total_cost:.9g}",
            )

    # From-scratch placement re-verification against a freshly lowered
    # instance (never the LP arrays, which a cache hit does not even have).
    instance = problem.instance(props)
    allowed = compute_allowed_create(instance, props)
    try:
        placement = _placement_report(
            instance, props, problem.goal, problem.costs,
            np.asarray(rounding.store, dtype=float), allowed,
            count_opening=False, tol=tol, max_reported=10,
        )
    except ValueError as exc:
        report.flag("artifact", subject or "bound", message=str(exc))
        return report

    if rounding.feasible:
        _fold_placement(report, placement, subject or "bound")
    report.ran("cost")
    if placement.cost is not None:
        drift = abs(placement.cost.total - rounding.total_cost)
        if drift > allowance(tol, placement.cost.total):
            report.flag(
                "cost", subject or "bound", drift,
                message=f"stored rounding cost {rounding.total_cost:.9g} != "
                f"from-scratch cost {placement.cost.total:.9g}",
            )

    if rounding.feasible:
        report.ran("bound-gate")
        shortfall = result.lp_cost - rounding.total_cost
        if shortfall > allowance(eps, result.lp_cost):
            report.flag(
                "bound-gate", subject or "bound", shortfall,
                message=f"rounded cost {rounding.total_cost:.9g} below "
                f"lower bound {result.lp_cost:.9g}",
            )
    return report


def audit_sim_result(
    result: "SimulationResult",
    mode: str = "fast",
    tol: float = DEFAULT_TOL,
    subject: str = "",
) -> AuditReport:
    """Internal-consistency certificate for a simulation result payload.

    Catches the corruption a cache flip can introduce: negative cost
    components, covered reads exceeding served reads, per-node QoS outside
    [0, 1].
    """
    report = AuditReport(mode=mode, subject=subject)
    report.ran("artifact")
    name = subject or "simulate"
    for label, value in (
        ("storage_cost", result.storage_cost),
        ("creation_cost", result.creation_cost),
        ("update_cost", result.update_cost),
    ):
        if not np.isfinite(value) or value < -tol:
            report.flag(
                "artifact", name, abs(float(value)),
                message=f"{label} = {value!r} is negative or non-finite",
            )
    if result.covered_reads > result.reads:
        report.flag(
            "artifact", name, float(result.covered_reads - result.reads),
            message=f"covered_reads {result.covered_reads} exceeds reads {result.reads}",
        )
    if min(result.reads, result.covered_reads, result.creations) < 0:
        report.flag("artifact", name, message="negative event counter")
    for node, q in result.qos_per_node.items():
        if not (-tol <= q <= 1.0 + tol):
            report.flag(
                "artifact", name, abs(float(q)),
                message=f"qos_per_node[{node}] = {q!r} outside [0, 1]",
            )
    return report


def audit_continuous_result(
    result: "ContinuousResult",
    mode: str = "fast",
    tol: float = DEFAULT_TOL,
    subject: str = "",
) -> AuditReport:
    """Internal-consistency certificate for a continuous-run payload.

    The epoch reports are the source of truth the aggregates derive from;
    a cache flip that corrupts either side breaks one of these identities:
    non-finite/negative per-epoch costs or migration, availabilities
    outside [0, 1], SLO flags contradicting the stated target, or a final
    placement inconsistent with the last epoch's recorded size.
    """
    report = AuditReport(mode=mode, subject=subject)
    report.ran("artifact")
    name = subject or "continuous"
    for epoch in result.epochs:
        for label, value in (
            ("serve_cost", epoch.serve_cost),
            ("migration_bytes", epoch.migration_bytes),
        ):
            if not np.isfinite(value) or value < -tol:
                report.flag(
                    "artifact", name, abs(float(value)),
                    message=f"epoch {epoch.index} {label} = {value!r} "
                    "is negative or non-finite",
                )
        if not (-tol <= epoch.availability <= 1.0 + tol):
            report.flag(
                "artifact", name, abs(float(epoch.availability)),
                message=f"epoch {epoch.index} availability "
                f"{epoch.availability!r} outside [0, 1]",
            )
        if min(epoch.reads, epoch.unavailable_reads, epoch.creations) < 0:
            report.flag(
                "artifact", name,
                message=f"epoch {epoch.index} has a negative event counter",
            )
        if result.slo_target is not None:
            expect = epoch.availability < result.slo_target - tol
            if epoch.slo_violated != expect and abs(
                epoch.availability - result.slo_target
            ) > tol:
                report.flag(
                    "artifact", name,
                    message=f"epoch {epoch.index} slo_violated="
                    f"{epoch.slo_violated} contradicts availability "
                    f"{epoch.availability!r} vs target {result.slo_target!r}",
                )
    if result.epochs and len(result.final_placement) != result.epochs[-1].placement_size:
        report.flag(
            "artifact", name,
            message=f"final placement has {len(result.final_placement)} "
            f"replicas but the last epoch recorded "
            f"{result.epochs[-1].placement_size}",
        )
    return report


def sim_gate_violation(
    report: AuditReport,
    simulated_cost: float,
    class_bound: float,
    eps: float,
    subject: str,
) -> bool:
    """Apply the ``simulated_cost >= class_lower_bound - eps`` gate.

    Returns True (and records a ``sim-gate`` violation) when a heuristic's
    measured cost undercuts its class's lower bound — the end-to-end
    inconsistency the paper's method rules out.
    """
    report.ran("sim-gate")
    shortfall = class_bound - simulated_cost
    if shortfall > allowance(eps, class_bound):
        report.flag(
            "sim-gate", subject, shortfall,
            message=f"simulated cost {simulated_cost:.9g} below class "
            f"lower bound {class_bound:.9g}",
        )
        return True
    return False
