"""Exact-arithmetic re-checking of LP solutions.

The LP layer (:mod:`repro.lp`) runs in floating point end to end — assembly,
both backends, validation.  This module re-derives the certificates in
:class:`fractions.Fraction` arithmetic: every float is lifted *exactly*
(``Fraction(x)`` reproduces the binary float, no decimal rounding), every
constraint activity and the objective are recomputed as rationals, and
tolerance comparisons happen on exact numbers.  That rules out the one
failure mode a float checker shares with the solver under audit: accumulated
rounding in the *checker's own* sums masking (or fabricating) a violation.

Two entry points:

* :func:`audit_lp_solution` — the in-solve certificate: primal feasibility,
  variable bounds and objective recomputation for an :class:`LPSolution`
  against its :class:`LinearProgram`.  ``mode="fast"`` spot-checks a
  deterministic, evenly-spaced sample of constraint rows in float
  arithmetic; ``mode="full"`` checks every row and every bound exactly.
* :func:`exact_objective` — the rational objective value of a point.

Reports are capped at ``max_reported`` *worst* violations per family (sorted
by magnitude) with the total count noted, matching the ISSUE's
"per-constraint worst violations" contract without flooding manifests.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence

from repro.audit.report import DEFAULT_TOL, AuditReport, AuditViolation
from repro.lp.model import LinearProgram, Sense
from repro.lp.solution import LPSolution, SolveStatus

#: How many constraint rows a fast-mode audit samples (evenly spaced).
FAST_CONSTRAINT_SAMPLE = 512


def exact_objective(model: LinearProgram, values: Sequence[float]) -> Fraction:
    """The rational objective ``c . x`` of a point (no constant term)."""
    total = Fraction(0)
    for v in model.variables:
        if v.objective:
            total += Fraction(v.objective) * Fraction(float(values[v.index]))
    return total


def _constraint_violation_exact(con, values, tol: Fraction) -> Optional[Fraction]:
    """Exact violation magnitude of one row, or None when satisfied."""
    act = Fraction(0)
    for i, c in zip(con.indices, con.coeffs):
        act += Fraction(float(c)) * Fraction(float(values[int(i)]))
    rhs = Fraction(con.rhs)
    if con.sense is Sense.LE:
        excess = act - rhs
    elif con.sense is Sense.GE:
        excess = rhs - act
    else:
        excess = abs(act - rhs)
    return excess if excess > tol else None


def _constraint_violation_float(con, values, tol: float) -> Optional[float]:
    """Float violation magnitude of one row, or None when satisfied."""
    act = con.activity(values)
    if con.sense is Sense.LE:
        excess = act - con.rhs
    elif con.sense is Sense.GE:
        excess = con.rhs - act
    else:
        excess = abs(act - con.rhs)
    return excess if excess > tol else None


def _keep_worst(
    report: AuditReport, found: List[AuditViolation], check: str, max_reported: int
) -> None:
    """Attach the worst ``max_reported`` violations, noting any overflow."""
    found.sort(key=lambda v: -v.amount)
    report.violations.extend(found[:max_reported])
    if len(found) > max_reported:
        report.skip(
            check,
            f"{len(found) - max_reported} further violations "
            f"(worst {max_reported} reported)",
        )


def audit_lp_solution(
    model: LinearProgram,
    solution: LPSolution,
    mode: str = "fast",
    tol: float = DEFAULT_TOL,
    max_reported: int = 25,
    constraint_sample: int = FAST_CONSTRAINT_SAMPLE,
) -> AuditReport:
    """Certify an LP solution against the original model.

    Checks (all recorded in the report's ``checks`` list):

    * ``status`` — the solve claims optimality;
    * ``var-bound`` — every value within its variable's [lower, upper];
    * ``constraint`` — primal feasibility of every row (``full``) or an
      evenly-spaced sample of ``constraint_sample`` rows (``fast``);
    * ``objective`` — ``c . x`` matches the solver-reported objective
      within ``tol`` (relative to the objective's magnitude).

    ``full`` runs every comparison in exact :class:`fractions.Fraction`
    arithmetic; ``fast`` uses floats.
    """
    report = AuditReport(mode=mode)
    report.ran("status")
    if solution.status is not SolveStatus.OPTIMAL:
        report.flag(
            "status", solution.status.value,
            message="audited solution does not claim optimality",
        )
        return report

    values = solution.values
    if len(values) != model.num_variables:
        report.flag(
            "status", "shape", amount=abs(len(values) - model.num_variables),
            message=f"value vector has length {len(values)}, "
            f"model has {model.num_variables} variables",
        )
        return report

    exact = mode == "full"
    ftol = Fraction(tol) if exact else tol

    # Variable bounds.
    report.ran("var-bound")
    found: List[AuditViolation] = []
    for v in model.variables:
        x = float(values[v.index])
        if exact:
            fx = Fraction(x)
            below = Fraction(v.lower) - fx
            above = (
                fx - Fraction(v.upper) if v.upper is not None else Fraction(-1)
            )
            if below > ftol:
                found.append(AuditViolation("var-bound", v.name, float(below)))
            elif above > ftol:
                found.append(AuditViolation("var-bound", v.name, float(above)))
        else:
            if x < v.lower - tol:
                found.append(AuditViolation("var-bound", v.name, v.lower - x))
            elif v.upper is not None and x > v.upper + tol:
                found.append(AuditViolation("var-bound", v.name, x - v.upper))
    _keep_worst(report, found, "var-bound", max_reported)

    # Primal feasibility.
    report.ran("constraint")
    found = []
    rows = len(model.constraints)
    if exact or rows <= constraint_sample:
        iter_rows = range(rows)
    else:
        stride = max(1, rows // constraint_sample)
        iter_rows = range(0, rows, stride)
        report.skip(
            "constraint",
            f"fast mode sampled {len(iter_rows)} of {rows} rows "
            f"(stride {stride}); use --audit full for every row",
        )
    for row in iter_rows:
        con = model.constraints[row]
        if exact:
            excess = _constraint_violation_exact(con, values, ftol)
        else:
            excess = _constraint_violation_float(con, values, tol)
        if excess is not None:
            found.append(
                AuditViolation("constraint", con.name, float(excess))
            )
    _keep_worst(report, found, "constraint", max_reported)

    # Objective recomputation.
    report.ran("objective")
    if exact:
        recomputed = exact_objective(model, values)
        drift = abs(recomputed - Fraction(float(solution.objective)))
        allowance = Fraction(tol) * max(Fraction(1), abs(recomputed))
    else:
        recomputed = sum(
            v.objective * float(values[v.index])
            for v in model.variables
            if v.objective
        )
        drift = abs(recomputed - float(solution.objective))
        allowance = tol * max(1.0, abs(recomputed))
    if drift > allowance:
        report.flag(
            "objective", "objective", float(drift),
            message=f"recomputed c.x = {float(recomputed):.9g}, "
            f"solver reported {float(solution.objective):.9g}",
        )
    return report
