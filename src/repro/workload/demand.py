"""Demand matrices — the workload view consumed by MC-PERF.

The IP formulation never sees individual requests: it sees ``read[n, i, k]``
(and optionally ``write[n, i, k]``) counts per node, evaluation interval and
object.  :class:`DemandMatrix` buckets a trace into those counts and offers
the aggregations the formulation and the rounding algorithm need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.workload.trace import Trace


@dataclass
class DemandMatrix:
    """Per-(node, interval, object) read/write counts.

    Attributes
    ----------
    reads / writes:
        ``(N, I, K)`` non-negative count arrays.
    interval_s:
        Length of one evaluation interval in seconds (the paper's Δ).
    """

    reads: np.ndarray
    writes: Optional[np.ndarray] = None
    interval_s: float = 3600.0

    def __post_init__(self) -> None:
        self.reads = np.asarray(self.reads, dtype=float)
        if self.reads.ndim != 3:
            raise ValueError("reads must be a (nodes, intervals, objects) array")
        if np.any(self.reads < 0):
            raise ValueError("read counts must be non-negative")
        if self.writes is None:
            self.writes = np.zeros_like(self.reads)
        else:
            self.writes = np.asarray(self.writes, dtype=float)
            if self.writes.shape != self.reads.shape:
                raise ValueError("writes must match the shape of reads")
            if np.any(self.writes < 0):
                raise ValueError("write counts must be non-negative")
        if self.interval_s <= 0:
            raise ValueError("interval length must be positive")

    # -- construction --------------------------------------------------------

    @staticmethod
    def _accumulate(
        reads: np.ndarray,
        writes: np.ndarray,
        interval_s: float,
        nodes,
        times_s,
        objs,
        is_write,
    ) -> None:
        """Scatter-add one batch of requests into the count arrays."""
        nodes = np.asarray(nodes, dtype=np.int64)
        objs = np.asarray(objs, dtype=np.int64)
        is_write = np.asarray(is_write, dtype=bool)
        intervals = np.minimum(
            (np.asarray(times_s, dtype=float) / interval_s).astype(np.int64),
            reads.shape[1] - 1,
        )
        if is_write.any():
            w = is_write
            np.add.at(writes, (nodes[w], intervals[w], objs[w]), 1.0)
        if not is_write.all():
            r = ~is_write
            np.add.at(reads, (nodes[r], intervals[r], objs[r]), 1.0)

    @staticmethod
    def from_trace(trace: Trace, num_intervals: int) -> "DemandMatrix":
        """Bucket a trace into ``num_intervals`` equal evaluation intervals."""
        if num_intervals <= 0:
            raise ValueError("num_intervals must be positive")
        interval_s = trace.duration_s / num_intervals
        reads = np.zeros((trace.num_nodes, num_intervals, trace.num_objects))
        writes = np.zeros_like(reads)
        reqs = trace.requests
        if reqs:
            DemandMatrix._accumulate(
                reads, writes, interval_s,
                [q.node for q in reqs],
                [q.time_s for q in reqs],
                [q.obj for q in reqs],
                [q.is_write for q in reqs],
            )
        return DemandMatrix(reads=reads, writes=writes, interval_s=interval_s)

    @staticmethod
    def from_stream(
        chunks,
        num_nodes: int,
        num_objects: int,
        num_intervals: int,
        duration_s: float,
    ) -> "DemandMatrix":
        """Bucket a streamed request sequence without materializing it.

        ``chunks`` yields ``(nodes, times_s, objs, is_write)`` array
        batches (see
        :func:`repro.workload.generators.synthetic_request_stream`); each
        batch is scatter-added into the ``(N, I, K)`` counts and dropped.
        Peak memory is one chunk plus the counts — million-request traces
        bucket without a million ``Request`` objects ever existing.
        """
        if num_intervals <= 0:
            raise ValueError("num_intervals must be positive")
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        interval_s = duration_s / num_intervals
        reads = np.zeros((num_nodes, num_intervals, num_objects))
        writes = np.zeros_like(reads)
        for nodes, times_s, objs, is_write in chunks:
            DemandMatrix._accumulate(
                reads, writes, interval_s, nodes, times_s, objs, is_write
            )
        return DemandMatrix(reads=reads, writes=writes, interval_s=interval_s)

    # -- shape ----------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.reads.shape[0]

    @property
    def num_intervals(self) -> int:
        return self.reads.shape[1]

    @property
    def num_objects(self) -> int:
        return self.reads.shape[2]

    # -- aggregations ----------------------------------------------------------

    @property
    def total_reads(self) -> float:
        return float(self.reads.sum())

    def reads_per_node(self) -> np.ndarray:
        """Total reads per node — the QoS constraint denominators."""
        return self.reads.sum(axis=(1, 2))

    def reads_per_object(self) -> np.ndarray:
        """Total reads per object (popularity)."""
        return self.reads.sum(axis=(0, 1))

    def reads_per_interval(self) -> np.ndarray:
        return self.reads.sum(axis=(0, 2))

    def active_objects(self) -> np.ndarray:
        """Indices of objects with at least one read or write."""
        activity = self.reads.sum(axis=(0, 1)) + self.writes.sum(axis=(0, 1))
        return np.nonzero(activity > 0)[0]

    def first_access_interval(self) -> np.ndarray:
        """``(N, K)`` first interval in which node n reads object k (−1 = never).

        Used by the activity-history/reactive fixings.
        """
        n, i, k = self.reads.shape
        first = np.full((n, k), -1, dtype=np.int64)
        accessed = self.reads > 0
        for interval in range(i - 1, -1, -1):
            mask = accessed[:, interval, :]
            first[mask] = interval
        return first

    def accessed(self) -> np.ndarray:
        """Boolean ``(N, I, K)``: node n read object k during interval i."""
        return self.reads > 0

    def coarsen(self, factor: int) -> "DemandMatrix":
        """Merge every ``factor`` consecutive intervals (Theorem 2 experiments)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        n, i, k = self.reads.shape
        out_i = (i + factor - 1) // factor
        reads = np.zeros((n, out_i, k))
        writes = np.zeros_like(reads)
        for interval in range(i):
            reads[:, interval // factor, :] += self.reads[:, interval, :]
            writes[:, interval // factor, :] += self.writes[:, interval, :]
        return DemandMatrix(reads=reads, writes=writes, interval_s=self.interval_s * factor)

    def restrict_nodes(self, keep) -> "DemandMatrix":
        """Project onto a node subset (order preserved) without remapping demand."""
        keep = list(keep)
        return DemandMatrix(
            reads=self.reads[keep].copy(),
            writes=self.writes[keep].copy(),
            interval_s=self.interval_s,
        )

    def restrict_objects(self, keep) -> "DemandMatrix":
        """Project onto an object subset (order preserved).

        The per-object decomposition (:mod:`repro.solvers.decompose`)
        slices one object out per subproblem with this.
        """
        keep = list(keep)
        return DemandMatrix(
            reads=self.reads[:, :, keep].copy(),
            writes=self.writes[:, :, keep].copy(),
            interval_s=self.interval_s,
        )

    def __repr__(self) -> str:
        return (
            f"DemandMatrix(nodes={self.num_nodes}, intervals={self.num_intervals}, "
            f"objects={self.num_objects}, reads={self.total_reads:.0f})"
        )
