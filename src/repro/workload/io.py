"""Trace serialization (JSON-compatible dicts).

Compact column-oriented encoding so a 300 K-request trace stays a few MB.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Union

from repro.errors import ValidationError
from repro.workload.trace import Request, Trace

_FORMAT_VERSION = 1


def trace_to_dict(trace: Trace) -> dict:
    """A JSON-serializable, column-oriented representation of a trace."""
    return {
        "version": _FORMAT_VERSION,
        "name": trace.name,
        "duration_s": trace.duration_s,
        "num_nodes": trace.num_nodes,
        "num_objects": trace.num_objects,
        "times": [round(r.time_s, 6) for r in trace.requests],
        "nodes": [r.node for r in trace.requests],
        "objects": [r.obj for r in trace.requests],
        "writes": [int(r.is_write) for r in trace.requests],
    }


def trace_from_dict(data: dict) -> Trace:
    """Rebuild a trace from :func:`trace_to_dict` output.

    Raises :class:`~repro.errors.ValidationError` on empty traces,
    non-positive durations/dimensions, NaN/±inf request times, or
    out-of-range node/object ids: a NaN timestamp lands the request in no
    demand interval at all, silently shrinking request counts downstream.
    """
    version = data.get("version", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version: {version}")
    columns = (data["times"], data["nodes"], data["objects"], data["writes"])
    lengths = {len(col) for col in columns}
    if len(lengths) != 1:
        raise ValueError("trace columns have inconsistent lengths")

    duration_s = float(data["duration_s"])
    num_nodes = int(data["num_nodes"])
    num_objects = int(data["num_objects"])
    if not math.isfinite(duration_s) or duration_s <= 0:
        raise ValidationError(
            f"trace duration_s = {duration_s!r}: must be finite and positive"
        )
    if num_nodes <= 0 or num_objects <= 0:
        raise ValidationError(
            f"trace covers {num_nodes} node(s) and {num_objects} object(s): "
            "both counts must be positive"
        )
    if not data["times"]:
        raise ValidationError("trace contains no requests")

    requests = []
    for idx, (t, n, k, w) in enumerate(zip(*columns)):
        time_s, node, obj = float(t), int(n), int(k)
        if not math.isfinite(time_s) or time_s < 0:
            raise ValidationError(
                f"request {idx}: time {time_s!r} is negative or non-finite"
            )
        if not 0 <= node < num_nodes:
            raise ValidationError(
                f"request {idx}: node {node} outside [0, {num_nodes})"
            )
        if not 0 <= obj < num_objects:
            raise ValidationError(
                f"request {idx}: object {obj} outside [0, {num_objects})"
            )
        requests.append(Request(time_s, node, obj, bool(w)))
    return Trace(
        requests=requests,
        duration_s=duration_s,
        num_nodes=num_nodes,
        num_objects=num_objects,
        name=str(data.get("name", "trace")),
    )


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to a JSON file."""
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace from a JSON file."""
    return trace_from_dict(json.loads(Path(path).read_text()))
