"""Trace serialization (JSON-compatible dicts).

Compact column-oriented encoding so a 300 K-request trace stays a few MB.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.workload.trace import Request, Trace

_FORMAT_VERSION = 1


def trace_to_dict(trace: Trace) -> dict:
    """A JSON-serializable, column-oriented representation of a trace."""
    return {
        "version": _FORMAT_VERSION,
        "name": trace.name,
        "duration_s": trace.duration_s,
        "num_nodes": trace.num_nodes,
        "num_objects": trace.num_objects,
        "times": [round(r.time_s, 6) for r in trace.requests],
        "nodes": [r.node for r in trace.requests],
        "objects": [r.obj for r in trace.requests],
        "writes": [int(r.is_write) for r in trace.requests],
    }


def trace_from_dict(data: dict) -> Trace:
    """Rebuild a trace from :func:`trace_to_dict` output."""
    version = data.get("version", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version: {version}")
    columns = (data["times"], data["nodes"], data["objects"], data["writes"])
    lengths = {len(col) for col in columns}
    if len(lengths) != 1:
        raise ValueError("trace columns have inconsistent lengths")
    requests = [
        Request(float(t), int(n), int(k), bool(w))
        for t, n, k, w in zip(*columns)
    ]
    return Trace(
        requests=requests,
        duration_s=float(data["duration_s"]),
        num_nodes=int(data["num_nodes"]),
        num_objects=int(data["num_objects"]),
        name=str(data.get("name", "trace")),
    )


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to a JSON file."""
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace from a JSON file."""
    return trace_from_dict(json.loads(Path(path).read_text()))
