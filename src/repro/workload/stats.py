"""Workload characterization.

Used to sanity-check that the synthetic traces reproduce the paper's
aggregate statistics, and to compute the minimum inter-reference time needed
for Theorem 3's per-access evaluation-interval selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.workload.trace import Trace


@dataclass
class WorkloadStats:
    """Summary statistics of a trace."""

    name: str
    num_requests: int
    num_reads: int
    num_writes: int
    num_nodes: int
    num_objects: int
    duration_s: float
    max_object_count: int
    min_object_count: int
    active_objects: int
    zipf_exponent: Optional[float]
    reads_per_node: np.ndarray

    def __str__(self) -> str:
        zipf = f"{self.zipf_exponent:.2f}" if self.zipf_exponent is not None else "n/a"
        return (
            f"{self.name}: {self.num_requests} requests "
            f"({self.num_reads} reads / {self.num_writes} writes) over "
            f"{self.active_objects}/{self.num_objects} objects, "
            f"popularity {self.min_object_count}..{self.max_object_count}, "
            f"zipf~{zipf}"
        )


def object_counts(trace: Trace) -> np.ndarray:
    """Read counts per object id."""
    counts = np.zeros(trace.num_objects, dtype=np.int64)
    for req in trace.requests:
        if not req.is_write:
            counts[req.obj] += 1
    return counts


def fit_zipf_exponent(counts: np.ndarray) -> Optional[float]:
    """Least-squares slope of log(count) vs log(rank) over active objects.

    Returns None when fewer than three distinct active ranks exist.
    """
    active = np.sort(counts[counts > 0])[::-1].astype(float)
    if len(active) < 3:
        return None
    ranks = np.arange(1, len(active) + 1, dtype=float)
    slope, _intercept = np.polyfit(np.log(ranks), np.log(active), 1)
    return float(-slope)


def characterize(trace: Trace) -> WorkloadStats:
    """Compute a :class:`WorkloadStats` summary for a trace."""
    counts = object_counts(trace)
    active = counts[counts > 0]
    per_node = np.zeros(trace.num_nodes, dtype=np.int64)
    for req in trace.requests:
        if not req.is_write:
            per_node[req.node] += 1
    return WorkloadStats(
        name=trace.name,
        num_requests=len(trace),
        num_reads=trace.num_reads,
        num_writes=trace.num_writes,
        num_nodes=trace.num_nodes,
        num_objects=trace.num_objects,
        duration_s=trace.duration_s,
        max_object_count=int(active.max()) if len(active) else 0,
        min_object_count=int(active.min()) if len(active) else 0,
        active_objects=int((counts > 0).sum()),
        zipf_exponent=fit_zipf_exponent(counts),
        reads_per_node=per_node,
    )


def min_interarrival(
    trace: Trace, interaction: Optional[np.ndarray] = None
) -> Tuple[float, float]:
    """The two smallest distinct inter-access gaps m1 < m2 across interacting nodes.

    This is the quantity Theorem 3 needs: the minimum time between any two
    accesses among node pairs ``(n, m)`` with ``A[n][m] == 1`` (nodes that can
    affect each other).  When ``interaction`` is omitted, all nodes interact
    (global knowledge).

    Returns ``(m1, m2)``; ``m2 == inf`` when no second distinct gap exists.
    """
    groups: Dict[int, List[float]] = {}
    if interaction is None:
        times = sorted(r.time_s for r in trace.requests)
        gaps = _distinct_gaps(times)
    else:
        interaction = np.asarray(interaction)
        gaps = []
        # Times visible to each node = accesses on nodes in its sphere.
        for n in range(trace.num_nodes):
            groups[n] = []
        for req in trace.requests:
            for n in range(trace.num_nodes):
                if interaction[n][req.node]:
                    groups[n].append(req.time_s)
        for times in groups.values():
            gaps.extend(_distinct_gaps(sorted(times)))
    gaps = sorted(set(gaps))
    if not gaps:
        return float("inf"), float("inf")
    m1 = gaps[0]
    m2 = gaps[1] if len(gaps) > 1 else float("inf")
    return m1, m2


def _distinct_gaps(sorted_times: List[float]) -> List[float]:
    return [
        b - a
        for a, b in zip(sorted_times, sorted_times[1:])
        if b - a > 0
    ]
