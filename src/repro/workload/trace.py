"""Request traces.

A :class:`Trace` is an ordered sequence of timestamped object accesses, the
common currency between the workload generators, the demand-matrix builder
(LP side) and the trace-driven simulator (deployed-heuristic side).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional


@dataclass(frozen=True, order=True)
class Request:
    """One object access.

    Ordering is by time (then node/object/kind) so traces can be sorted and
    merged cheaply.
    """

    time_s: float
    node: int
    obj: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("request time must be non-negative")
        if self.node < 0 or self.obj < 0:
            raise ValueError("node and object ids must be non-negative")


@dataclass
class Trace:
    """An ordered request trace with known extent.

    Attributes
    ----------
    requests:
        Requests sorted by time.
    duration_s:
        Trace extent in seconds; requests must fall in ``[0, duration_s)``.
    num_nodes / num_objects:
        Declared universe sizes (must cover every request).
    """

    requests: List[Request]
    duration_s: float
    num_nodes: int
    num_objects: int
    name: str = "trace"

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.num_nodes <= 0 or self.num_objects <= 0:
            raise ValueError("universe sizes must be positive")
        self.requests = sorted(self.requests)
        for req in self.requests:
            if req.time_s >= self.duration_s:
                raise ValueError(
                    f"request at {req.time_s}s outside trace duration {self.duration_s}s"
                )
            if req.node >= self.num_nodes:
                raise ValueError(f"request node {req.node} >= num_nodes {self.num_nodes}")
            if req.obj >= self.num_objects:
                raise ValueError(f"request object {req.obj} >= num_objects {self.num_objects}")

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    @property
    def num_reads(self) -> int:
        return sum(1 for r in self.requests if not r.is_write)

    @property
    def num_writes(self) -> int:
        return sum(1 for r in self.requests if r.is_write)

    # -- slicing -------------------------------------------------------------

    def between(self, start_s: float, end_s: float) -> List[Request]:
        """Requests with ``start_s <= time < end_s`` (binary search on the sorted list)."""
        lo = bisect.bisect_left(self.requests, Request(max(start_s, 0.0), 0, 0))
        out = []
        for req in self.requests[lo:]:
            if req.time_s >= end_s:
                break
            out.append(req)
        return out

    def for_node(self, node: int) -> List[Request]:
        return [r for r in self.requests if r.node == node]

    def for_object(self, obj: int) -> List[Request]:
        return [r for r in self.requests if r.obj == obj]

    def filter(self, predicate) -> "Trace":
        """A new trace keeping requests where ``predicate(request)`` is true."""
        return Trace(
            requests=[r for r in self.requests if predicate(r)],
            duration_s=self.duration_s,
            num_nodes=self.num_nodes,
            num_objects=self.num_objects,
            name=self.name,
        )

    def remap_nodes(self, mapping: dict, num_nodes: Optional[int] = None) -> "Trace":
        """Reassign request origins through ``mapping`` (deployment scenario).

        Nodes missing from the mapping keep their id.  Used when the users of
        a closed site are assigned to a nearby open node.
        """
        new_n = num_nodes if num_nodes is not None else self.num_nodes
        return Trace(
            requests=[
                Request(r.time_s, int(mapping.get(r.node, r.node)), r.obj, r.is_write)
                for r in self.requests
            ],
            duration_s=self.duration_s,
            num_nodes=new_n,
            num_objects=self.num_objects,
            name=self.name,
        )

    @staticmethod
    def concat(traces: Iterable["Trace"], name: str = "concat") -> "Trace":
        """Play traces back to back: each starts when the previous one ends.

        Used for workload-shift experiments (e.g. WEB-like traffic turning
        GROUP-like mid-day for the on-line adaptation extension).
        """
        traces = list(traces)
        if not traces:
            raise ValueError("need at least one trace to concatenate")
        requests = []
        offset = 0.0
        for t in traces:
            for r in t.requests:
                requests.append(Request(r.time_s + offset, r.node, r.obj, r.is_write))
            offset += t.duration_s
        return Trace(
            requests=requests,
            duration_s=offset,
            num_nodes=max(t.num_nodes for t in traces),
            num_objects=max(t.num_objects for t in traces),
            name=name,
        )

    @staticmethod
    def merge(traces: Iterable["Trace"], name: str = "merged") -> "Trace":
        """Union of traces over a common universe (max of extents/sizes)."""
        traces = list(traces)
        if not traces:
            raise ValueError("need at least one trace to merge")
        return Trace(
            requests=[r for t in traces for r in t.requests],
            duration_s=max(t.duration_s for t in traces),
            num_nodes=max(t.num_nodes for t in traces),
            num_objects=max(t.num_objects for t in traces),
            name=name,
        )

    def __repr__(self) -> str:
        return (
            f"Trace(name={self.name!r}, requests={len(self.requests)}, "
            f"nodes={self.num_nodes}, objects={self.num_objects}, "
            f"duration={self.duration_s:.0f}s)"
        )
