"""Epoch-to-epoch workload drift.

The continuous-placement loop (:mod:`repro.simulator.continuous`) replays
one trace per epoch; this module generates those traces with *drift* — the
demand a placement was optimized for slowly stops being the demand it
serves, which is what forces re-placement (and hence migration traffic)
in long-running systems:

* **popularity drift** — the Zipf rank order rotates a little each epoch,
  so yesterday's hot objects cool off and new ones heat up;
* **locality drift** — per-node demand weights blend toward a rotated copy
  of themselves, so the geographic hotspot wanders across sites.

``drift`` in ``[0, 1]`` scales both: 0 reproduces the same workload every
epoch (placement converges, migration goes to zero), 1 decorrelates
adjacent epochs almost completely.  Everything is deterministic in
``seed``: epoch ``e`` draws from substream ``seed + 7919 * e``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.workload.generators import WorkloadSpec, synthetic_workload
from repro.workload.trace import Trace
from repro.workload.zipf import zipf_weights


def drifting_traces(
    num_nodes: int,
    num_objects: int,
    *,
    epochs: int,
    epoch_s: float,
    requests_per_epoch: int,
    drift: float = 0.25,
    zipf_exponent: float = 0.9,
    populations: Optional[Sequence[float]] = None,
    write_fraction: float = 0.0,
    seed: int = 0,
    name: str = "drift",
) -> List[Trace]:
    """One trace per epoch with drifting popularity and locality.

    Parameters
    ----------
    epochs / epoch_s / requests_per_epoch:
        Number of epochs, the length of each, and the request volume per
        epoch (volume is held constant; only *where* demand points drifts).
    drift:
        Per-epoch drift intensity in ``[0, 1]``; rotates the popularity
        ranking by ``round(drift * num_objects)`` objects and blends node
        weights ``(1 - drift) * w + drift * roll(w, 1)`` each epoch.
    zipf_exponent:
        Popularity skew (0 = uniform).
    populations:
        Epoch-0 per-node demand weights (uniform when omitted).
    """
    if epochs < 1:
        raise ValueError("need at least one epoch")
    if not 0.0 <= drift <= 1.0:
        raise ValueError("drift must be in [0, 1]")
    if requests_per_epoch < 1:
        raise ValueError("need at least one request per epoch")
    weights = zipf_weights(num_objects, zipf_exponent)
    pops = (
        np.ones(num_nodes, dtype=float)
        if populations is None
        else np.asarray(populations, dtype=float).copy()
    )
    if pops.shape != (num_nodes,):
        raise ValueError("populations must have one entry per node")
    rank_shift = int(round(drift * num_objects))
    traces: List[Trace] = []
    rank_of = np.arange(num_objects)
    for epoch in range(epochs):
        counts = np.round(
            weights[rank_of] / weights.sum() * requests_per_epoch
        ).astype(np.int64)
        spec = WorkloadSpec(
            num_nodes=num_nodes,
            num_objects=num_objects,
            counts=counts,
            populations=pops.copy(),
            duration_s=epoch_s,
            write_fraction=write_fraction,
            seed=seed + 7919 * epoch,
            name=f"{name}[{epoch}]",
        )
        traces.append(synthetic_workload(spec))
        rank_of = (rank_of + rank_shift) % num_objects
        pops = (1.0 - drift) * pops + drift * np.roll(pops, 1)
    return traces


def epoch_slices(trace: Trace, epoch_s: float) -> List[Trace]:
    """Cut one long trace into epoch-length traces rebased at t=0.

    The inverse convenience of :func:`drifting_traces` for measured traces:
    feeds an existing workload through the continuous loop without
    resynthesizing it.  The final epoch may be shorter than ``epoch_s``.
    """
    if epoch_s <= 0:
        raise ValueError("epoch length must be positive")
    from repro.workload.trace import Request

    traces: List[Trace] = []
    start = 0.0
    index = 0
    while start < trace.duration_s:
        end = min(start + epoch_s, trace.duration_s)
        requests = [
            Request(r.time_s - start, r.node, r.obj, r.is_write)
            for r in trace.between(start, end)
        ]
        traces.append(
            Trace(
                requests=requests,
                duration_s=end - start,
                num_nodes=trace.num_nodes,
                num_objects=trace.num_objects,
                name=f"{trace.name}[{index}]",
            )
        )
        start = end
        index += 1
    return traces
