"""Synthetic workload generators (WEB and GROUP stand-ins).

Both paper workloads span one day over a common object set accessed from all
sites, with request volume per site proportional to its user population:

* ``web_workload`` — Zipf popularity anchored to the paper's aggregates
  (most-popular 36 K accesses, least-popular 1, 1 000 objects, ≈300 K
  requests at full scale).
* ``group_workload`` — uniform popularity, every object popular
  (8.5 K–36 K accesses per object at full scale, ≈16 M requests in the paper;
  the default here scales that down — see ``requests_scale``).

All generators are deterministic for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.workload.trace import Request, Trace
from repro.workload.zipf import zipf_mandelbrot_counts

DAY_S = 86_400.0


@dataclass
class WorkloadSpec:
    """Declarative description of a synthetic workload.

    Attributes
    ----------
    num_nodes / num_objects:
        Universe sizes.
    counts:
        Per-object access counts (popularity curve), length ``num_objects``.
    populations:
        Per-node demand weights; uniform when omitted.
    duration_s:
        Trace extent (paper: one day).
    write_fraction:
        Fraction of requests that are writes (paper experiments: 0).
    diurnal:
        When true, request times follow a day/night intensity curve instead
        of a homogeneous process.
    """

    num_nodes: int
    num_objects: int
    counts: np.ndarray
    populations: Optional[np.ndarray] = None
    duration_s: float = DAY_S
    write_fraction: float = 0.0
    diurnal: bool = False
    seed: int = 0
    name: str = "synthetic"

    def __post_init__(self) -> None:
        self.counts = np.asarray(self.counts, dtype=np.int64)
        if self.num_nodes <= 0 or self.num_objects <= 0:
            raise ValueError("universe sizes must be positive")
        if self.counts.shape != (self.num_objects,):
            raise ValueError("counts must have one entry per object")
        if np.any(self.counts < 0):
            raise ValueError("counts must be non-negative")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if self.populations is not None:
            self.populations = np.asarray(self.populations, dtype=float)
            if self.populations.shape != (self.num_nodes,):
                raise ValueError("populations must have one entry per node")
            if self.populations.sum() <= 0:
                raise ValueError("populations must have positive total weight")


def _sample_times(rng: np.random.Generator, size: int, duration_s: float, diurnal: bool):
    """Request timestamps: homogeneous, or thinned to a diurnal intensity."""
    if not diurnal:
        return rng.uniform(0.0, duration_s, size=size)
    # Diurnal curve: intensity 1 + sin-bump peaking mid-day; inverse-CDF via
    # rejection on the (bounded) density.
    times = np.empty(size)
    filled = 0
    while filled < size:
        batch = max(size - filled, 64)
        t = rng.uniform(0.0, duration_s, size=2 * batch)
        intensity = 1.0 + np.sin(np.pi * (t / duration_s))  # in [1, 2]
        keep = t[rng.uniform(0.0, 2.0, size=t.shape) < intensity][: size - filled]
        times[filled : filled + len(keep)] = keep
        filled += len(keep)
    return times


def synthetic_workload(spec: WorkloadSpec) -> Trace:
    """Materialize a :class:`WorkloadSpec` into a request trace.

    Each object's accesses are spread across nodes with a multinomial draw
    proportional to node populations, and across time per
    ``spec.diurnal``.
    """
    rng = np.random.default_rng(spec.seed)
    pops = (
        spec.populations
        if spec.populations is not None
        else np.ones(spec.num_nodes, dtype=float)
    )
    probs = pops / pops.sum()

    requests = []
    for obj, count in enumerate(spec.counts):
        if count == 0:
            continue
        node_counts = rng.multinomial(int(count), probs)
        for node, node_count in enumerate(node_counts):
            if node_count == 0:
                continue
            times = _sample_times(rng, int(node_count), spec.duration_s, spec.diurnal)
            writes = (
                rng.random(int(node_count)) < spec.write_fraction
                if spec.write_fraction > 0
                else np.zeros(int(node_count), dtype=bool)
            )
            for t, w in zip(times, writes):
                # Guard the open upper end of the trace extent.
                requests.append(Request(min(float(t), spec.duration_s * (1 - 1e-12)), node, obj, bool(w)))

    return Trace(
        requests=requests,
        duration_s=spec.duration_s,
        num_nodes=spec.num_nodes,
        num_objects=spec.num_objects,
        name=spec.name,
    )


def synthetic_request_stream(spec: WorkloadSpec, chunk_size: int = 65_536):
    """Stream a :class:`WorkloadSpec` as ``(nodes, times_s, objs, is_write)`` batches.

    The streaming counterpart of :func:`synthetic_workload` for traces too
    large to materialize as :class:`~repro.workload.trace.Request` lists:
    each yielded batch holds at most ``chunk_size`` requests as parallel
    numpy arrays, ready for
    :meth:`~repro.workload.demand.DemandMatrix.from_stream`.  Requests are
    drawn i.i.d. from the spec's popularity/population curves (a
    multinomial view of the same distribution ``synthetic_workload``
    realizes with exact per-object counts); the total request count equals
    ``spec.counts.sum()`` and the draw is deterministic per seed.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    rng = np.random.default_rng(spec.seed)
    pops = (
        spec.populations
        if spec.populations is not None
        else np.ones(spec.num_nodes, dtype=float)
    )
    node_probs = pops / pops.sum()
    total = int(spec.counts.sum())
    if total == 0:
        return
    obj_probs = spec.counts / float(total)

    remaining = total
    while remaining > 0:
        size = min(chunk_size, remaining)
        objs = rng.choice(spec.num_objects, size=size, p=obj_probs)
        nodes = rng.choice(spec.num_nodes, size=size, p=node_probs)
        times = np.minimum(
            _sample_times(rng, size, spec.duration_s, spec.diurnal),
            spec.duration_s * (1 - 1e-12),
        )
        is_write = (
            rng.random(size) < spec.write_fraction
            if spec.write_fraction > 0
            else np.zeros(size, dtype=bool)
        )
        yield nodes, times, objs, is_write
        remaining -= size


def web_workload(
    num_nodes: int = 20,
    num_objects: int = 1000,
    populations: Optional[Sequence[float]] = None,
    requests_scale: float = 1.0,
    duration_s: float = DAY_S,
    seed: int = 0,
    diurnal: bool = False,
) -> Trace:
    """The WEB workload: heavy-tailed Zipf popularity (WorldCup98-like).

    At ``requests_scale == 1`` and 1 000 objects the popularity curve is a
    Zipf–Mandelbrot fit to the paper's three aggregates: rank 1 gets 36 000
    accesses, the last rank gets 1, and the trace totals ≈300 K requests.
    Scaling shrinks the counts proportionally while keeping the least-popular
    object at a single access, preserving the heavy tail that drives the
    paper's WEB conclusions.
    """
    if requests_scale <= 0:
        raise ValueError("requests_scale must be positive")
    max_count = max(int(round(36_000 * requests_scale)), 2)
    total = int(round(300_000 * requests_scale))
    total = min(max(total, max_count, num_objects), num_objects * max_count)
    counts = zipf_mandelbrot_counts(num_objects, max_count=max_count, min_count=1, total=total)
    spec = WorkloadSpec(
        num_nodes=num_nodes,
        num_objects=num_objects,
        counts=counts,
        populations=None if populations is None else np.asarray(populations, dtype=float),
        duration_s=duration_s,
        seed=seed,
        diurnal=diurnal,
        name="WEB",
    )
    return synthetic_workload(spec)


def flash_crowd_workload(
    num_nodes: int = 20,
    num_objects: int = 100,
    populations: Optional[Sequence[float]] = None,
    base_scale: float = 0.05,
    flash_object: int = 0,
    flash_start_frac: float = 0.5,
    flash_duration_frac: float = 0.25,
    flash_multiplier: float = 50.0,
    duration_s: float = DAY_S,
    seed: int = 0,
) -> Trace:
    """A WEB-like trace with a flash crowd on one object.

    The background is the standard heavy-tailed WEB traffic; during the
    flash window, ``flash_object`` receives ``flash_multiplier`` times its
    fair share of extra requests from every site — the classic stressor for
    placement heuristics (popularity changes faster than a daily planner
    reacts, which is exactly where the evaluation-interval and history
    properties bite).
    """
    if not 0 <= flash_object < num_objects:
        raise ValueError("flash_object out of range")
    if not 0.0 <= flash_start_frac < 1.0:
        raise ValueError("flash_start_frac must be in [0, 1)")
    if flash_duration_frac <= 0 or flash_start_frac + flash_duration_frac > 1.0:
        raise ValueError("flash window must fit inside the trace")
    if flash_multiplier <= 0:
        raise ValueError("flash_multiplier must be positive")

    base = web_workload(
        num_nodes=num_nodes,
        num_objects=num_objects,
        populations=populations,
        requests_scale=base_scale,
        duration_s=duration_s,
        seed=seed,
    )
    rng = np.random.default_rng(seed + 7_919)
    pops = (
        np.asarray(populations, dtype=float)
        if populations is not None
        else np.ones(num_nodes)
    )
    probs = pops / pops.sum()
    extra = int(round(len(base) / num_objects * flash_multiplier))
    start = flash_start_frac * duration_s
    width = flash_duration_frac * duration_s
    node_counts = rng.multinomial(extra, probs)
    flash_requests = []
    for node, count in enumerate(node_counts):
        times = rng.uniform(start, start + width, size=int(count))
        for t in times:
            flash_requests.append(
                Request(min(float(t), duration_s * (1 - 1e-12)), node, flash_object)
            )
    return Trace(
        requests=base.requests + flash_requests,
        duration_s=duration_s,
        num_nodes=num_nodes,
        num_objects=num_objects,
        name="FLASH",
    )


def group_workload(
    num_nodes: int = 20,
    num_objects: int = 1000,
    populations: Optional[Sequence[float]] = None,
    requests_scale: float = 1.0,
    duration_s: float = DAY_S,
    seed: int = 0,
    diurnal: bool = False,
) -> Trace:
    """The GROUP workload: uniform popularity, all objects active.

    At full scale each object draws between 8 500 and 36 000 accesses
    (uniformly), matching the paper's collaborative-project trace (~16 M
    requests over 1 000 objects).  ``requests_scale`` shrinks the band
    proportionally (floored at one access per object) so laptop-scale runs
    keep the defining property that *no* object is unpopular.
    """
    if requests_scale <= 0:
        raise ValueError("requests_scale must be positive")
    rng = np.random.default_rng(seed + 1_000_003)
    low = max(int(round(8_500 * requests_scale)), 1)
    high = max(int(round(36_000 * requests_scale)), low + 1)
    counts = rng.integers(low, high + 1, size=num_objects)
    spec = WorkloadSpec(
        num_nodes=num_nodes,
        num_objects=num_objects,
        counts=counts,
        populations=None if populations is None else np.asarray(populations, dtype=float),
        duration_s=duration_s,
        seed=seed,
        diurnal=diurnal,
        name="GROUP",
    )
    return synthetic_workload(spec)
