"""Workload substrate.

Synthetic stand-ins for the paper's two traces (see DESIGN.md):

* **WEB** — heavy-tailed Zipf popularity derived from the WorldCup98 logs in
  the paper; many unpopular objects, most-popular ≈ 36 K accesses, the least
  popular object accessed once, over one day.
* **GROUP** — a collaborative working-group workload where every object is
  popular (uniform popularity, least popular ≈ 8.5 K accesses at paper scale).

The MC-PERF formulation consumes only the per-(node, interval, object) demand
matrix, so matching the popularity distribution and aggregate statistics
reproduces the phenomena the paper studies.
"""

from repro.workload.trace import Request, Trace
from repro.workload.demand import DemandMatrix
from repro.workload.zipf import ZipfSampler, zipf_counts, zipf_mandelbrot_counts
from repro.workload.generators import (
    WorkloadSpec,
    flash_crowd_workload,
    group_workload,
    synthetic_request_stream,
    synthetic_workload,
    web_workload,
)
from repro.workload.drift import drifting_traces, epoch_slices
from repro.workload.emulate import (
    EmulationPlan,
    emulated_traces,
    emulation_envelope,
    parse_emulation,
)
from repro.workload.stats import (
    WorkloadStats,
    characterize,
    fit_zipf_exponent,
    min_interarrival,
)
from repro.workload.io import trace_from_dict, trace_to_dict
from repro.workload.adapters import ImportedTrace, trace_from_csv, trace_from_jsonl

__all__ = [
    "Request",
    "Trace",
    "DemandMatrix",
    "ZipfSampler",
    "zipf_counts",
    "zipf_mandelbrot_counts",
    "WorkloadSpec",
    "web_workload",
    "flash_crowd_workload",
    "group_workload",
    "synthetic_request_stream",
    "synthetic_workload",
    "drifting_traces",
    "epoch_slices",
    "EmulationPlan",
    "emulated_traces",
    "emulation_envelope",
    "parse_emulation",
    "WorkloadStats",
    "characterize",
    "fit_zipf_exponent",
    "min_interarrival",
    "trace_to_dict",
    "trace_from_dict",
    "ImportedTrace",
    "trace_from_csv",
    "trace_from_jsonl",
]
