"""Adapters for importing real access logs as traces.

Users with production logs (the paper used WorldCup98 web-server logs) can
feed them to the method through these parsers:

* :func:`trace_from_csv` — ``time,node,object[,op]`` rows with arbitrary
  node/object labels (mapped to dense ids).
* :func:`trace_from_jsonl` — one JSON object per line with configurable
  field names.
* :func:`relabel` helpers are exposed so callers can recover the
  label-to-id mappings for reporting.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.workload.trace import Request, Trace


@dataclass
class ImportedTrace:
    """A parsed trace plus the label mappings used to densify ids."""

    trace: Trace
    node_ids: Dict[str, int] = field(default_factory=dict)
    object_ids: Dict[str, int] = field(default_factory=dict)

    def node_label(self, node: int) -> str:
        for label, idx in self.node_ids.items():
            if idx == node:
                return label
        raise KeyError(node)

    def object_label(self, obj: int) -> str:
        for label, idx in self.object_ids.items():
            if idx == obj:
                return label
        raise KeyError(obj)


class _Densifier:
    """Assigns dense integer ids to labels in first-seen order."""

    def __init__(self) -> None:
        self.mapping: Dict[str, int] = {}

    def __call__(self, label: str) -> int:
        label = str(label)
        if label not in self.mapping:
            self.mapping[label] = len(self.mapping)
        return self.mapping[label]


_WRITE_OPS = {"write", "put", "post", "update", "w"}


def _build(
    rows: Iterable[Tuple[float, str, str, Optional[str]]],
    duration_s: Optional[float],
    name: str,
) -> ImportedTrace:
    nodes = _Densifier()
    objects = _Densifier()
    requests: List[Request] = []
    max_time = 0.0
    for time_s, node, obj, op in rows:
        t = float(time_s)
        if t < 0:
            raise ValueError(f"negative timestamp: {t}")
        max_time = max(max_time, t)
        is_write = bool(op) and str(op).strip().lower() in _WRITE_OPS
        requests.append(Request(t, nodes(node), objects(obj), is_write))
    if not requests:
        raise ValueError("no requests parsed")
    extent = duration_s if duration_s is not None else max_time + 1.0
    trace = Trace(
        requests=requests,
        duration_s=extent,
        num_nodes=len(nodes.mapping),
        num_objects=len(objects.mapping),
        name=name,
    )
    return ImportedTrace(trace=trace, node_ids=nodes.mapping, object_ids=objects.mapping)


def trace_from_csv(
    source: Union[str, Path, io.TextIOBase],
    duration_s: Optional[float] = None,
    has_header: bool = True,
    name: str = "imported-csv",
) -> ImportedTrace:
    """Parse ``time,node,object[,op]`` CSV rows into a trace.

    ``op`` values like ``write``/``put``/``update`` mark writes; anything
    else (or a missing column) is a read.  Node and object labels may be any
    strings; they are densified in first-seen order.
    """
    if isinstance(source, (str, Path)):
        handle: io.TextIOBase = open(source, newline="")
        close = True
    else:
        handle, close = source, False
    try:
        reader = csv.reader(handle)
        rows = []
        for lineno, row in enumerate(reader):
            if not row or (lineno == 0 and has_header):
                continue
            if len(row) < 3:
                raise ValueError(f"CSV row {lineno + 1}: need time,node,object")
            op = row[3] if len(row) > 3 else None
            rows.append((float(row[0]), row[1], row[2], op))
        return _build(rows, duration_s, name)
    finally:
        if close:
            handle.close()


def trace_from_jsonl(
    source: Union[str, Path, io.TextIOBase],
    time_field: str = "time",
    node_field: str = "node",
    object_field: str = "object",
    op_field: Optional[str] = "op",
    duration_s: Optional[float] = None,
    name: str = "imported-jsonl",
) -> ImportedTrace:
    """Parse newline-delimited JSON records into a trace."""
    if isinstance(source, (str, Path)):
        text = Path(source).read_text()
    else:
        text = source.read()
    rows = []
    for lineno, line in enumerate(text.splitlines()):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        try:
            time_s = record[time_field]
            node = record[node_field]
            obj = record[object_field]
        except KeyError as exc:
            raise ValueError(f"JSONL line {lineno + 1}: missing field {exc}") from None
        op = record.get(op_field) if op_field else None
        rows.append((float(time_s), node, obj, op))
    return _build(rows, duration_s, name)
