"""Composable workload emulation for the continuous-placement epoch loop.

:func:`drifting_traces` models slow demand drift; real wide-area services
additionally see *shaped* load — day/night cycles, flash crowds on single
objects, regional bursts, write-heavy maintenance windows.  This module
layers those shapes on top of the drift substrate with a clause grammar
mirroring :mod:`repro.faults.spec` (semicolon-separated
``kind:key=value,…``)::

    diurnal:amp=0.5,period=8,phase=0
    flashcrowd:epochs=1-2,object=0,mult=40
    burst:epochs=2-3,nodes=2+3,mult=5
    burst:epochs=2-3,zone=1,mult=5
    writes:fraction=0.3,epochs=1-3
    clock_skew:ms=500,seed=3

Two properties the chaos campaign (and the property tests) rely on:

* **determinism** — for a fixed seed the emitted traces are identical
  call-to-call (epoch ``e`` draws from substream ``seed + 7919 * e``,
  matching :func:`drifting_traces`);
* **mass conservation** — each epoch's trace holds *exactly*
  ``envelope[e]`` requests, where the envelope is computed arithmetically
  from the clauses (:func:`emulation_envelope`), so "total request count
  matches the requested rate envelope" is an equality, not a statistic.
  Per-object counts are apportioned by largest remainder, and clock skew
  wraps timestamps inside the epoch instead of shifting them out of it.

The spec threads through :class:`repro.runner.tasks.ContinuousTask` via
its ``workload`` field, so the batch loop, the service daemon and crash
recovery all see byte-identical traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.workload.generators import WorkloadSpec, synthetic_workload
from repro.workload.trace import Request, Trace
from repro.workload.zipf import zipf_weights


@dataclass(frozen=True)
class Diurnal:
    """Volume modulation: ``1 + amp * sin(2π (e + phase) / period)``."""

    amp: float = 0.5
    period: float = 8.0
    phase: float = 0.0

    def factor(self, epoch: int) -> float:
        return 1.0 + self.amp * math.sin(
            2.0 * math.pi * (epoch + self.phase) / self.period
        )


@dataclass(frozen=True)
class FlashCrowd:
    """Extra volume on one object inside an epoch window.

    ``mult`` follows :func:`~repro.workload.generators.flash_crowd_workload`:
    the object receives ``mult`` times its fair share
    (``base / num_objects``) of *additional* requests per windowed epoch.
    """

    start: int
    end: int
    obj: int = 0
    mult: float = 20.0

    def extra(self, epoch: int, base: int, num_objects: int) -> int:
        if not self.start <= epoch <= self.end:
            return 0
        return int(round(base / num_objects * self.mult))


@dataclass(frozen=True)
class RegionBurst:
    """Scale a node group's demand weight inside a window (volume unchanged)."""

    start: int
    end: int
    nodes: Tuple[int, ...] = ()
    zone: Optional[int] = None
    mult: float = 4.0


@dataclass(frozen=True)
class WriteWindow:
    """Write fraction override inside a window."""

    fraction: float
    start: int = 0
    end: int = 10**9


@dataclass(frozen=True)
class ClockSkew:
    """Per-node clock offsets applied to request timestamps.

    Each node's offset is a deterministic draw in ``[-ms, +ms]``; shifted
    timestamps wrap modulo the epoch length, so the request count per
    epoch is untouched — skew reorders demand, it never loses it.
    """

    ms: float
    seed: int = 0


@dataclass(frozen=True)
class EmulationPlan:
    """Parsed emulation clauses; compose onto the drift substrate."""

    clauses: Tuple[str, ...] = ()
    diurnal: Optional[Diurnal] = None
    flashes: Tuple[FlashCrowd, ...] = ()
    bursts: Tuple[RegionBurst, ...] = ()
    writes: Tuple[WriteWindow, ...] = ()
    skew: Optional[ClockSkew] = None


def _bad(clause: str, why: str) -> ValidationError:
    return ValidationError(f"bad workload clause {clause!r}: {why}")


def _params(body: str, clause: str) -> Dict[str, str]:
    params: Dict[str, str] = {}
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep or not key.strip() or not value.strip():
            raise _bad(clause, f"malformed key=value pair {item!r}")
        params[key.strip().lower()] = value.strip()
    return params


def _pop_float(params: Dict[str, str], key: str, clause: str, default=None) -> float:
    if key not in params:
        if default is None:
            raise _bad(clause, f"missing required key {key!r}")
        return float(default)
    raw = params.pop(key)
    try:
        return float(raw)
    except ValueError:
        raise _bad(clause, f"{key}={raw!r} is not a number") from None


def _pop_int(params: Dict[str, str], key: str, clause: str, default=None) -> int:
    return int(_pop_float(params, key, clause, default))


def _pop_window(params: Dict[str, str], clause: str, default=None) -> Tuple[int, int]:
    if "epochs" not in params:
        if default is None:
            raise _bad(clause, "missing required key 'epochs'")
        return default
    raw = params.pop("epochs")
    lo, sep, hi = raw.partition("-")
    try:
        start = int(lo)
        end = int(hi) if sep else start
    except ValueError:
        raise _bad(clause, f"epochs window {raw!r} is not 'a-b'") from None
    if start < 0 or end < start:
        raise _bad(clause, f"epochs window {raw!r} must satisfy 0 <= a <= b")
    return start, end


def parse_emulation(spec: str) -> EmulationPlan:
    """Parse an emulation spec string; raises ``ValidationError`` on errors."""
    if not isinstance(spec, str) or not spec.strip():
        raise ValidationError("empty workload emulation spec")
    clauses: List[str] = []
    diurnal: Optional[Diurnal] = None
    flashes: List[FlashCrowd] = []
    bursts: List[RegionBurst] = []
    writes: List[WriteWindow] = []
    skew: Optional[ClockSkew] = None
    for raw in spec.split(";"):
        clause = raw.strip()
        if not clause:
            continue
        clauses.append(clause)
        kind, _, body = clause.partition(":")
        kind = kind.strip().lower()
        params = _params(body, clause)
        if kind == "diurnal":
            amp = _pop_float(params, "amp", clause, default=0.5)
            if not 0.0 <= amp < 1.0:
                raise _bad(clause, "amp must be in [0, 1)")
            period = _pop_float(params, "period", clause, default=8.0)
            if period <= 0:
                raise _bad(clause, "period must be positive")
            diurnal = Diurnal(
                amp=amp, period=period,
                phase=_pop_float(params, "phase", clause, default=0.0),
            )
        elif kind == "flashcrowd":
            start, end = _pop_window(params, clause, default=(0, 10**9))
            mult = _pop_float(params, "mult", clause, default=20.0)
            if mult <= 0:
                raise _bad(clause, "mult must be positive")
            flashes.append(
                FlashCrowd(
                    start=start, end=end,
                    obj=_pop_int(params, "object", clause, default=0),
                    mult=mult,
                )
            )
        elif kind == "burst":
            start, end = _pop_window(params, clause)
            mult = _pop_float(params, "mult", clause, default=4.0)
            if mult <= 0:
                raise _bad(clause, "mult must be positive")
            nodes: Tuple[int, ...] = ()
            zone = None
            if "nodes" in params:
                raw_nodes = params.pop("nodes")
                try:
                    nodes = tuple(int(n) for n in raw_nodes.split("+"))
                except ValueError:
                    raise _bad(clause, f"nodes={raw_nodes!r} is not 'a+b+…'") from None
            elif "zone" in params:
                zone = _pop_int(params, "zone", clause)
            else:
                raise _bad(clause, "burst needs nodes= or zone=")
            bursts.append(
                RegionBurst(start=start, end=end, nodes=nodes, zone=zone, mult=mult)
            )
        elif kind == "writes":
            fraction = _pop_float(params, "fraction", clause)
            if not 0.0 <= fraction <= 1.0:
                raise _bad(clause, "fraction must be in [0, 1]")
            start, end = _pop_window(params, clause, default=(0, 10**9))
            writes.append(WriteWindow(fraction=fraction, start=start, end=end))
        elif kind == "clock_skew":
            ms = _pop_float(params, "ms", clause)
            if ms < 0:
                raise _bad(clause, "ms must be >= 0")
            skew = ClockSkew(ms=ms, seed=_pop_int(params, "seed", clause, default=0))
        else:
            raise _bad(clause, "unknown clause kind")
        if params:
            raise _bad(clause, f"unknown keys {sorted(params)}")
    if not clauses:
        raise ValidationError("empty workload emulation spec")
    return EmulationPlan(
        clauses=tuple(clauses),
        diurnal=diurnal,
        flashes=tuple(flashes),
        bursts=tuple(bursts),
        writes=tuple(writes),
        skew=skew,
    )


def emulation_envelope(
    plan: EmulationPlan,
    *,
    epochs: int,
    requests_per_epoch: int,
    num_objects: int,
) -> List[int]:
    """The exact per-epoch request counts the emulated traces must hit.

    This is the arithmetic side of the mass-conservation contract: the
    generator emits exactly these totals, and the property test checks
    both against each other.
    """
    envelope: List[int] = []
    for epoch in range(epochs):
        base = requests_per_epoch
        if plan.diurnal is not None:
            base = max(1, int(round(base * plan.diurnal.factor(epoch))))
        extra = sum(f.extra(epoch, base, num_objects) for f in plan.flashes)
        envelope.append(base + extra)
    return envelope


def _apportion(weights: np.ndarray, total: int) -> np.ndarray:
    """Integer counts summing exactly to ``total``, by largest remainder."""
    if total <= 0:
        return np.zeros(len(weights), dtype=np.int64)
    shares = weights / weights.sum() * total
    counts = np.floor(shares).astype(np.int64)
    short = total - int(counts.sum())
    if short > 0:
        remainders = shares - counts
        # Stable tie-break on index keeps the apportionment deterministic.
        order = np.lexsort((np.arange(len(weights)), -remainders))
        counts[order[:short]] += 1
    return counts


def _write_fraction(plan: EmulationPlan, epoch: int, default: float) -> float:
    for window in plan.writes:
        if window.start <= epoch <= window.end:
            return window.fraction
    return default


def _burst_populations(
    plan: EmulationPlan,
    epoch: int,
    pops: np.ndarray,
    zones: Optional[Sequence[int]],
) -> np.ndarray:
    scaled = pops
    for burst in plan.bursts:
        if not burst.start <= epoch <= burst.end:
            continue
        if scaled is pops:
            scaled = pops.copy()
        if burst.nodes:
            for node in burst.nodes:
                if not 0 <= node < len(scaled):
                    raise ValidationError(
                        f"burst clause names node {node}, topology has "
                        f"{len(scaled)} nodes"
                    )
                scaled[node] *= burst.mult
        elif burst.zone is not None:
            if zones is None:
                raise ValidationError(
                    "burst clause with zone= needs a zone map "
                    "(topology zones or --zones)"
                )
            members = [n for n, z in enumerate(zones) if z == burst.zone]
            if not members:
                raise ValidationError(
                    f"burst clause names zone {burst.zone}, which is empty"
                )
            for node in members:
                scaled[node] *= burst.mult
    return scaled


def _skewed(trace: Trace, skew: ClockSkew, epoch: int, epoch_s: float) -> Trace:
    rng = np.random.default_rng(skew.seed + 104_729 * epoch)
    offsets = (rng.random(trace.num_nodes) * 2.0 - 1.0) * skew.ms / 1000.0
    requests = [
        Request(
            min((r.time_s + offsets[r.node]) % epoch_s, epoch_s * (1 - 1e-12)),
            r.node,
            r.obj,
            r.is_write,
        )
        for r in trace.requests
    ]
    return Trace(
        requests=requests,
        duration_s=trace.duration_s,
        num_nodes=trace.num_nodes,
        num_objects=trace.num_objects,
        name=trace.name,
    )


def emulated_traces(
    num_nodes: int,
    num_objects: int,
    *,
    epochs: int,
    epoch_s: float,
    requests_per_epoch: int,
    spec,
    drift: float = 0.25,
    zipf_exponent: float = 0.9,
    populations: Optional[Sequence[float]] = None,
    zones: Optional[Sequence[int]] = None,
    write_fraction: float = 0.0,
    seed: int = 0,
    name: str = "emulated",
) -> List[Trace]:
    """One trace per epoch: the drift substrate shaped by emulation clauses.

    ``spec`` is a spec string or a pre-parsed :class:`EmulationPlan`.  The
    drift mechanics (popularity-rank rotation, node-weight blending, the
    per-epoch seed substream) are identical to :func:`drifting_traces`, so
    a plan with no clauses addressed to an epoch reproduces the plain
    drifting workload there.
    """
    plan = parse_emulation(spec) if isinstance(spec, str) else spec
    if epochs < 1:
        raise ValueError("need at least one epoch")
    if not 0.0 <= drift <= 1.0:
        raise ValueError("drift must be in [0, 1]")
    if requests_per_epoch < 1:
        raise ValueError("need at least one request per epoch")
    for flash in plan.flashes:
        if not 0 <= flash.obj < num_objects:
            raise ValidationError(
                f"flashcrowd object {flash.obj} out of range "
                f"(universe has {num_objects} objects)"
            )
    weights = zipf_weights(num_objects, zipf_exponent)
    pops = (
        np.ones(num_nodes, dtype=float)
        if populations is None
        else np.asarray(populations, dtype=float).copy()
    )
    if pops.shape != (num_nodes,):
        raise ValueError("populations must have one entry per node")
    envelope = emulation_envelope(
        plan,
        epochs=epochs,
        requests_per_epoch=requests_per_epoch,
        num_objects=num_objects,
    )
    rank_shift = int(round(drift * num_objects))
    rank_of = np.arange(num_objects)
    traces: List[Trace] = []
    for epoch in range(epochs):
        base = requests_per_epoch
        if plan.diurnal is not None:
            base = max(1, int(round(base * plan.diurnal.factor(epoch))))
        counts = _apportion(weights[rank_of], base)
        # Flash-crowd extras land entirely on their target objects — the
        # spike is a popularity inversion, not a uniform volume bump.
        # base + extras == envelope[epoch] by construction (same arithmetic
        # as emulation_envelope), keeping mass conservation an equality.
        for flash in plan.flashes:
            counts[flash.obj] += flash.extra(epoch, base, num_objects)
        assert int(counts.sum()) == envelope[epoch]
        spec_epoch = WorkloadSpec(
            num_nodes=num_nodes,
            num_objects=num_objects,
            counts=counts,
            populations=_burst_populations(plan, epoch, pops, zones),
            duration_s=epoch_s,
            write_fraction=_write_fraction(plan, epoch, write_fraction),
            seed=seed + 7919 * epoch,
            name=f"{name}[{epoch}]",
        )
        trace = synthetic_workload(spec_epoch)
        if plan.skew is not None and plan.skew.ms > 0:
            trace = _skewed(trace, plan.skew, epoch, epoch_s)
        traces.append(trace)
        rank_of = (rank_of + rank_shift) % num_objects
        pops = (1.0 - drift) * pops + drift * np.roll(pops, 1)
    return traces
