"""Zipf popularity utilities.

The WEB workload is heavy-tailed: request counts per popularity rank follow
``count(rank) ∝ rank^-s``.  Two entry points:

* :func:`zipf_counts` — deterministic expected counts matched to anchor
  statistics (most/least-popular counts), used by the generators so traces
  reproduce the paper's reported aggregates exactly.
* :class:`ZipfSampler` — draws object ranks from a Zipf pmf, used where a
  stochastic stream is wanted.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np


def zipf_weights(num_objects: int, exponent: float) -> np.ndarray:
    """Unnormalized Zipf weights ``rank^-exponent`` for ranks 1..num_objects."""
    if num_objects <= 0:
        raise ValueError("num_objects must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    ranks = np.arange(1, num_objects + 1, dtype=float)
    return ranks ** (-exponent)


def zipf_exponent_for_anchors(num_objects: int, max_count: float, min_count: float) -> float:
    """The exponent for which rank-1 gets ``max_count`` and rank-N gets ``min_count``.

    Solves ``max_count / min_count == N^s`` for s.  With the paper's WEB
    anchors (36 K and 1 access over 1 000 objects) this gives s ≈ 1.52.
    """
    if num_objects < 2:
        raise ValueError("need at least 2 objects to anchor an exponent")
    if max_count < min_count or min_count <= 0:
        raise ValueError("require max_count >= min_count > 0")
    return math.log(max_count / min_count) / math.log(num_objects)


def zipf_counts(
    num_objects: int,
    max_count: int,
    min_count: int = 1,
    exponent: Optional[float] = None,
) -> np.ndarray:
    """Deterministic per-rank access counts for a Zipf popularity curve.

    ``counts[0]`` equals ``max_count`` and ``counts[-1]`` is at least
    ``min_count``; intermediate ranks follow ``max_count * rank^-s``.  When
    ``exponent`` is omitted it is chosen so the last rank lands on
    ``min_count`` exactly (:func:`zipf_exponent_for_anchors`).
    """
    if max_count < 1 or min_count < 1:
        raise ValueError("counts must be at least 1")
    if num_objects == 1:
        return np.array([max_count], dtype=np.int64)
    s = exponent if exponent is not None else zipf_exponent_for_anchors(
        num_objects, max_count, min_count
    )
    counts = np.maximum(np.round(max_count * zipf_weights(num_objects, s)), min_count)
    return counts.astype(np.int64)


def zipf_mandelbrot_counts(
    num_objects: int,
    max_count: int,
    min_count: int = 1,
    total: Optional[int] = None,
    shift_bounds: tuple = (1e-6, 1e4),
) -> np.ndarray:
    """Per-rank counts from a Zipf–Mandelbrot curve matched to three anchors.

    ``count(rank) = C / (rank + q)^s`` with ``C, q, s`` chosen so rank 1 gets
    ``max_count``, the last rank gets ``min_count``, and (when ``total`` is
    given) the counts sum approximately to ``total``.  The paper's WEB trace
    (WorldCup98) reports all three aggregates — 36 K, 1 and ≈300 K — which a
    pure Zipf curve cannot satisfy simultaneously; the Mandelbrot shift can.

    Falls back to :func:`zipf_counts` when ``total`` is omitted.
    """
    if total is None:
        return zipf_counts(num_objects, max_count, min_count)
    if num_objects < 3:
        return zipf_counts(num_objects, max_count, min_count)
    if total < num_objects * min_count or total > num_objects * max_count:
        raise ValueError("total is inconsistent with the per-object count anchors")

    ranks = np.arange(1, num_objects + 1, dtype=float)
    ratio = math.log(max_count / min_count)

    def curve(q: float) -> np.ndarray:
        s = ratio / math.log((num_objects + q) / (1.0 + q))
        # Work in log space: large shifts make s huge and overflow powers.
        log_counts = math.log(max_count) + s * (np.log(1.0 + q) - np.log(ranks + q))
        return np.exp(log_counts)

    def total_for(q: float) -> float:
        return float(curve(q).sum())

    lo, hi = shift_bounds
    # total_for is increasing in q (larger shift flattens the curve).
    t_lo, t_hi = total_for(lo), total_for(hi)
    target = float(total)
    if target <= t_lo:
        q = lo
    elif target >= t_hi:
        q = hi
    else:
        for _ in range(200):
            mid = math.sqrt(lo * hi)  # geometric bisection over decades
            if total_for(mid) < target:
                lo = mid
            else:
                hi = mid
            if hi / lo < 1 + 1e-9:
                break
        q = math.sqrt(lo * hi)
    counts = np.maximum(np.round(curve(q)), min_count).astype(np.int64)
    counts[0] = max_count
    return counts


class ZipfSampler:
    """Draws popularity ranks (0-based object ids) from a Zipf distribution."""

    def __init__(self, num_objects: int, exponent: float, seed: Optional[int] = None):
        weights = zipf_weights(num_objects, exponent)
        self.num_objects = num_objects
        self.exponent = exponent
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)
        self._rng = np.random.default_rng(seed)

    def sample(self, size: int = 1) -> np.ndarray:
        """Draw ``size`` object ids (0 = most popular)."""
        if size < 0:
            raise ValueError("size must be non-negative")
        u = self._rng.random(size)
        return np.searchsorted(self._cdf, u, side="right").clip(0, self.num_objects - 1)

    def pmf(self, obj: int) -> float:
        """Probability of drawing object ``obj``."""
        return float(self._pmf[obj])
