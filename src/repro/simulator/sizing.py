"""Sizing searches: the smallest configuration that meets a QoS goal.

Figure 2 plots each heuristic at its cheapest goal-meeting configuration —
the smallest cache capacity (storage-constrained heuristics) or replication
factor (replica-constrained heuristics).  LRU's stack property makes hit
rate monotone in capacity, so binary search is exact there; for the other
heuristics monotonicity is near-universal in practice and the search
verifies its answer by simulation either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.heuristics.base import PlacementHeuristic
from repro.simulator.engine import SimulationResult, Simulator
from repro.topology.graph import Topology
from repro.workload.trace import Trace


@dataclass
class SizingResult:
    """Smallest goal-meeting parameter and the simulation at that point."""

    feasible: bool
    value: Optional[int] = None
    result: Optional[SimulationResult] = None
    simulations: int = 0

    def __str__(self) -> str:
        if not self.feasible:
            return f"no feasible size found ({self.simulations} simulations)"
        return f"size={self.value}: {self.result} ({self.simulations} simulations)"


def _search_min(
    build: Callable[[int], PlacementHeuristic],
    run: Callable[[PlacementHeuristic], SimulationResult],
    meets: Callable[[SimulationResult], bool],
    lo: int,
    hi: int,
) -> SizingResult:
    """Binary search for the smallest parameter in [lo, hi] meeting the goal."""
    if hi < lo:
        raise ValueError("empty search range")
    sims = 0
    top = run(build(hi))
    sims += 1
    if not meets(top):
        return SizingResult(feasible=False, simulations=sims)
    best_value, best_result = hi, top
    low = lo
    high = hi - 1
    while low <= high:
        mid = (low + high) // 2
        result = run(build(mid))
        sims += 1
        if meets(result):
            best_value, best_result = mid, result
            high = mid - 1
        else:
            low = mid + 1
    return SizingResult(feasible=True, value=best_value, result=best_result, simulations=sims)


def min_capacity_for_goal(
    make_heuristic: Callable[[int], PlacementHeuristic],
    topology: Topology,
    trace: Trace,
    tlat_ms: float,
    fraction: float,
    per_user: bool = True,
    max_capacity: Optional[int] = None,
    warmup_s: float = 0.0,
    assignment=None,
    **sim_kwargs,
) -> SizingResult:
    """Smallest cache capacity meeting the QoS goal.

    ``make_heuristic(capacity)`` builds the heuristic under test (e.g.
    ``lambda c: LRUCaching(c)``).
    """
    hi = max_capacity if max_capacity is not None else trace.num_objects

    def run(h: PlacementHeuristic) -> SimulationResult:
        return Simulator(
            topology, trace, h, tlat_ms, warmup_s=warmup_s, assignment=assignment, **sim_kwargs
        ).run()

    return _search_min(
        make_heuristic, run, lambda r: r.meets(fraction, per_user=per_user), 0, hi
    )


def min_replicas_for_goal(
    make_heuristic: Callable[[int], PlacementHeuristic],
    topology: Topology,
    trace: Trace,
    tlat_ms: float,
    fraction: float,
    per_user: bool = True,
    max_replicas: Optional[int] = None,
    warmup_s: float = 0.0,
    assignment=None,
    **sim_kwargs,
) -> SizingResult:
    """Smallest replication factor meeting the QoS goal."""
    hi = max_replicas if max_replicas is not None else topology.num_nodes - 1

    def run(h: PlacementHeuristic) -> SimulationResult:
        return Simulator(
            topology, trace, h, tlat_ms, warmup_s=warmup_s, assignment=assignment, **sim_kwargs
        ).run()

    return _search_min(
        make_heuristic, run, lambda r: r.meets(fraction, per_user=per_user), 0, hi
    )
