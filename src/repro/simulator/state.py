"""Replica state and cost tracking during simulation.

:class:`ReplicaState` is the authoritative record of which node holds which
object at the current simulation time.  It integrates storage cost over time
(alpha per object per evaluation-interval-equivalent of wall time) and
counts replica creations (beta each), mirroring the MC-PERF cost function
(1) so simulated heuristic costs are directly comparable to the bounds.

The origin node implicitly stores every object for free and is not tracked.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.topology.graph import Topology


class ReplicaState:
    """Which node stores which objects, with cost integration.

    Parameters
    ----------
    topology:
        The system; ``topology.origin`` stores everything for free.
    num_objects:
        Object universe size.
    alpha / beta:
        Unit storage (per object per ``interval_s``) and creation costs.
    interval_s:
        The wall-time equivalent of one storage-cost unit (the paper: one
        hour costs 1).
    """

    def __init__(
        self,
        topology: Topology,
        num_objects: int,
        alpha: float = 1.0,
        beta: float = 1.0,
        delta: float = 0.0,
        interval_s: float = 3600.0,
    ):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.topology = topology
        self.num_objects = num_objects
        self.alpha = alpha
        self.beta = beta
        self.delta = delta
        self.interval_s = interval_s

        self._held: List[Set[int]] = [set() for _ in topology.nodes()]
        self._since: Dict[Tuple[int, int], float] = {}
        self.storage_cost = 0.0
        self.creation_cost = 0.0
        self.update_cost = 0.0
        self.creations = 0
        self.drops = 0
        self.peak_occupancy = np.zeros(topology.num_nodes, dtype=np.int64)
        self.max_replicas_per_object = np.zeros(num_objects, dtype=np.int64)
        self._replica_counts = np.zeros(num_objects, dtype=np.int64)
        #: Liveness/link state under fault injection; None = fault-free run
        #: (the masking branches below are then skipped entirely).
        self.faults = None

    # -- queries ---------------------------------------------------------------

    def holds(self, node: int, obj: int) -> bool:
        """Whether ``node`` currently stores ``obj`` (origin always does)."""
        if node == self.topology.origin:
            return True
        return obj in self._held[node]

    def holders(self, obj: int) -> Set[int]:
        """All non-origin nodes currently storing ``obj``."""
        return {n for n in self.topology.nodes() if n != self.topology.origin and obj in self._held[n]}

    def occupancy(self, node: int) -> int:
        return len(self._held[node])

    def contents(self, node: int) -> Set[int]:
        return set(self._held[node])

    # -- mutation -----------------------------------------------------------------

    def create(self, node: int, obj: int, time_s: float) -> bool:
        """Place a replica; returns False (no-op) if already held or at origin.

        Under fault injection a creation on a crashed node also fails (and
        charges nothing) — healing policies retry with backoff.
        """
        if node == self.topology.origin:
            return False
        if obj in self._held[node]:
            return False
        if self.faults is not None and not self.faults.is_alive(node):
            return False
        if not 0 <= obj < self.num_objects:
            raise IndexError(f"object {obj} out of range")
        self._held[node].add(obj)
        self._since[(node, obj)] = time_s
        self.creations += 1
        self.creation_cost += self.beta
        self.peak_occupancy[node] = max(self.peak_occupancy[node], len(self._held[node]))
        self._replica_counts[obj] += 1
        self.max_replicas_per_object[obj] = max(
            self.max_replicas_per_object[obj], self._replica_counts[obj]
        )
        return True

    def record_write(self, obj: int) -> float:
        """Charge one update message per current replica (extension (12)).

        Returns the cost charged.  The origin's permanent copy is free, as
        in the bound's accounting.
        """
        if self.delta <= 0:
            return 0.0
        cost = self.delta * float(self._replica_counts[obj])
        self.update_cost += cost
        return cost

    def drop(self, node: int, obj: int, time_s: float) -> bool:
        """Remove a replica, accruing its storage cost.  Returns False if absent."""
        if obj not in self._held[node]:
            return False
        self._held[node].discard(obj)
        start = self._since.pop((node, obj))
        if time_s < start:
            raise ValueError("drop before create")
        self.storage_cost += self.alpha * (time_s - start) / self.interval_s
        self._replica_counts[obj] -= 1
        self.drops += 1
        return True

    def lose_all(self, node: int, time_s: float) -> List[Tuple[int, int]]:
        """Drop every replica held by a crashed node, charging its storage up
        to the crash instant.  Returns the ``(node, obj)`` pairs lost."""
        lost = [(node, obj) for obj in sorted(self._held[node])]
        for _, obj in lost:
            self.drop(node, obj, time_s)
        return lost

    def finalize(self, end_time_s: float) -> None:
        """Accrue storage cost for replicas still held at the end of the run."""
        for (node, obj), start in list(self._since.items()):
            if end_time_s < start:
                raise ValueError("finalize before last create")
            self.storage_cost += self.alpha * (end_time_s - start) / self.interval_s
            self._since[(node, obj)] = end_time_s  # idempotent finalize

    # -- serving ---------------------------------------------------------------------

    def best_latency(
        self, node: int, obj: int, scope: str = "global", holders: Optional[Set[int]] = None
    ) -> float:
        """Lowest access latency for ``node`` to reach ``obj``.

        ``scope="local"`` restricts serving to the node itself plus the
        origin (plain caching); ``"global"`` allows any holder (cooperative
        caching, centralized placement).

        Under fault injection, dead nodes and degraded links are masked out:
        a request from a crashed node, or one partitioned from every replica
        and the origin, gets ``inf`` (an unavailable read).  Requests are
        otherwise served by the closest *surviving* replica or the origin.
        """
        if self.faults is not None:
            return self._best_latency_faulty(node, obj, scope, holders)
        lat = self.topology.latency
        best = float(lat[node][self.topology.origin])
        if scope == "local":
            if self.holds(node, obj):
                best = 0.0
            return best
        if scope != "global":
            raise ValueError(f"unknown routing scope: {scope!r}")
        candidates = holders if holders is not None else self.holders(obj)
        for m in candidates:
            best = min(best, float(lat[node][m]))
        if self.holds(node, obj):
            best = 0.0
        return best

    def _best_latency_faulty(
        self, node: int, obj: int, scope: str, holders: Optional[Set[int]]
    ) -> float:
        """The liveness-masked variant of :meth:`best_latency`."""
        faults = self.faults
        if not faults.is_alive(node):
            return float("inf")
        best = faults.lat(node, self.topology.origin)
        if scope == "local":
            if self.holds(node, obj):
                best = 0.0
            return best
        if scope != "global":
            raise ValueError(f"unknown routing scope: {scope!r}")
        candidates = holders if holders is not None else self.holders(obj)
        for m in candidates:
            best = min(best, faults.lat(node, m))
        if self.holds(node, obj):
            best = 0.0
        return best

    def covered(self, node: int, obj: int, tlat_ms: float, scope: str = "global") -> bool:
        """Whether ``node`` can read ``obj`` within the latency threshold."""
        return self.best_latency(node, obj, scope) <= tlat_ms
