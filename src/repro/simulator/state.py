"""Replica state and cost tracking during simulation.

:class:`ReplicaState` is the authoritative record of which node holds which
object at the current simulation time.  It integrates storage cost over time
(alpha per object per evaluation-interval-equivalent of wall time) and
counts replica creations (beta each), mirroring the MC-PERF cost function
(1) so simulated heuristic costs are directly comparable to the bounds.

The origin node implicitly stores every object for free and is not tracked.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.perf import PERF
from repro.topology.graph import Topology


class ReplicaState:
    """Which node stores which objects, with cost integration.

    Parameters
    ----------
    topology:
        The system; ``topology.origin`` stores everything for free.
    num_objects:
        Object universe size.
    alpha / beta:
        Unit storage (per object per ``interval_s``) and creation costs.
    interval_s:
        The wall-time equivalent of one storage-cost unit (the paper: one
        hour costs 1).
    """

    def __init__(
        self,
        topology: Topology,
        num_objects: int,
        alpha: float = 1.0,
        beta: float = 1.0,
        delta: float = 0.0,
        interval_s: float = 3600.0,
    ):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.topology = topology
        self.num_objects = num_objects
        self.alpha = alpha
        self.beta = beta
        self.delta = delta
        self.interval_s = interval_s

        self._held: List[Set[int]] = [set() for _ in topology.nodes()]
        #: Inverse index: per-object holder sets, so ``holders()`` is O(1)
        #: instead of a scan over every node.
        self._holders: List[Set[int]] = [set() for _ in range(num_objects)]
        self._lat = np.asarray(topology.latency, dtype=float)
        #: Nearest-live-replica cache: ``_best[n, k]`` = min latency from n
        #: to the origin or any holder of k (ignoring n's own copy, which
        #: short-circuits to 0 at read time).  Columns validate lazily and
        #: update incrementally on ``create``; ``drop``/faults invalidate.
        self._best = np.empty((topology.num_nodes, num_objects), dtype=float)
        self._best_valid = np.zeros(num_objects, dtype=bool)
        self._since: Dict[Tuple[int, int], float] = {}
        self.storage_cost = 0.0
        self.creation_cost = 0.0
        self.update_cost = 0.0
        self.creations = 0
        self.drops = 0
        self.peak_occupancy = np.zeros(topology.num_nodes, dtype=np.int64)
        self.max_replicas_per_object = np.zeros(num_objects, dtype=np.int64)
        self._replica_counts = np.zeros(num_objects, dtype=np.int64)
        #: Liveness/link state under fault injection; None = fault-free run
        #: (the masking branches below are then skipped entirely).
        self.faults = None

    # -- queries ---------------------------------------------------------------

    def holds(self, node: int, obj: int) -> bool:
        """Whether ``node`` currently stores ``obj`` (origin always does)."""
        if node == self.topology.origin:
            return True
        return obj in self._held[node]

    def holders(self, obj: int) -> Set[int]:
        """All non-origin nodes currently storing ``obj``."""
        return set(self._holders[obj])

    def occupancy(self, node: int) -> int:
        return len(self._held[node])

    def contents(self, node: int) -> Set[int]:
        return set(self._held[node])

    # -- mutation -----------------------------------------------------------------

    def create(self, node: int, obj: int, time_s: float) -> bool:
        """Place a replica; returns False (no-op) if already held or at origin.

        Under fault injection a creation on a crashed node also fails (and
        charges nothing) — healing policies retry with backoff.
        """
        if node == self.topology.origin:
            return False
        if obj in self._held[node]:
            return False
        if self.faults is not None and not self.faults.is_alive(node):
            return False
        if not 0 <= obj < self.num_objects:
            raise IndexError(f"object {obj} out of range")
        self._held[node].add(obj)
        self._holders[obj].add(node)
        if self._best_valid[obj]:
            # A new holder can only lower latencies: fold its column in.
            np.minimum(self._best[:, obj], self._lat[:, node], out=self._best[:, obj])
        self._since[(node, obj)] = time_s
        self.creations += 1
        self.creation_cost += self.beta
        self.peak_occupancy[node] = max(self.peak_occupancy[node], len(self._held[node]))
        self._replica_counts[obj] += 1
        self.max_replicas_per_object[obj] = max(
            self.max_replicas_per_object[obj], self._replica_counts[obj]
        )
        return True

    def adopt(self, node: int, obj: int, time_s: float) -> bool:
        """Install a replica carried over from a previous run segment.

        Identical to :meth:`create` except that no creation cost (beta) is
        charged and ``creations`` does not advance — the replica was paid
        for when it was first created; an epoch boundary
        (:mod:`repro.simulator.continuous`) merely hands it to the next
        simulator instance.  Storage accrues from ``time_s`` as usual.
        """
        if node == self.topology.origin:
            return False
        if obj in self._held[node]:
            return False
        if self.faults is not None and not self.faults.is_alive(node):
            return False
        if not 0 <= obj < self.num_objects:
            raise IndexError(f"object {obj} out of range")
        self._held[node].add(obj)
        self._holders[obj].add(node)
        if self._best_valid[obj]:
            np.minimum(self._best[:, obj], self._lat[:, node], out=self._best[:, obj])
        self._since[(node, obj)] = time_s
        self.peak_occupancy[node] = max(self.peak_occupancy[node], len(self._held[node]))
        self._replica_counts[obj] += 1
        self.max_replicas_per_object[obj] = max(
            self.max_replicas_per_object[obj], self._replica_counts[obj]
        )
        return True

    def record_write(self, obj: int) -> float:
        """Charge one update message per current replica (extension (12)).

        Returns the cost charged.  The origin's permanent copy is free, as
        in the bound's accounting.
        """
        if self.delta <= 0:
            return 0.0
        cost = self.delta * float(self._replica_counts[obj])
        self.update_cost += cost
        return cost

    def drop(self, node: int, obj: int, time_s: float) -> bool:
        """Remove a replica, accruing its storage cost.  Returns False if absent."""
        if obj not in self._held[node]:
            return False
        self._held[node].discard(obj)
        self._holders[obj].discard(node)
        # Losing a holder can raise latencies; recompute the column lazily.
        self._best_valid[obj] = False
        start = self._since.pop((node, obj))
        if time_s < start:
            raise ValueError("drop before create")
        self.storage_cost += self.alpha * (time_s - start) / self.interval_s
        self._replica_counts[obj] -= 1
        self.drops += 1
        return True

    def lose_all(self, node: int, time_s: float) -> List[Tuple[int, int]]:
        """Drop every replica held by a crashed node, charging its storage up
        to the crash instant.  Returns the ``(node, obj)`` pairs lost."""
        lost = [(node, obj) for obj in sorted(self._held[node])]
        for _, obj in lost:
            self.drop(node, obj, time_s)
        return lost

    def finalize(self, end_time_s: float) -> None:
        """Accrue storage cost for replicas still held at the end of the run."""
        for (node, obj), start in list(self._since.items()):
            if end_time_s < start:
                raise ValueError("finalize before last create")
            self.storage_cost += self.alpha * (end_time_s - start) / self.interval_s
            self._since[(node, obj)] = end_time_s  # idempotent finalize

    # -- serving ---------------------------------------------------------------------

    def best_latency(
        self, node: int, obj: int, scope: str = "global", holders: Optional[Set[int]] = None
    ) -> float:
        """Lowest access latency for ``node`` to reach ``obj``.

        ``scope="local"`` restricts serving to the node itself plus the
        origin (plain caching); ``"global"`` allows any holder (cooperative
        caching, centralized placement).

        Under fault injection, dead nodes and degraded links are masked out:
        a request from a crashed node, or one partitioned from every replica
        and the origin, gets ``inf`` (an unavailable read).  Requests are
        otherwise served by the closest *surviving* replica or the origin.

        The common path — fault-free, global scope, no explicit candidate
        set — answers from the nearest-live-replica cache in O(1); explicit
        ``holders`` and fault runs take the scan (:meth:`scan_latency`),
        which is also the oracle the cache is cross-checked against in
        tests.
        """
        if self.faults is not None:
            return self._best_latency_faulty(node, obj, scope, holders)
        if scope == "local":
            if self.holds(node, obj):
                return 0.0
            return float(self.topology.latency[node][self.topology.origin])
        if scope != "global":
            raise ValueError(f"unknown routing scope: {scope!r}")
        if holders is not None:
            return self.scan_latency(node, obj, holders=holders)
        PERF.count("sim.serve.fast")
        if not self._best_valid[obj]:
            self._repair_column(obj)
        if node == self.topology.origin or obj in self._held[node]:
            return 0.0
        return float(self._best[node, obj])

    def scan_latency(
        self, node: int, obj: int, holders: Optional[Set[int]] = None
    ) -> float:
        """Full-scan global-scope serve latency (the cache's oracle).

        Identical semantics to the cached path: closest of the origin and
        every (given or current) holder, 0 for a node holding the object.
        """
        PERF.count("sim.serve.scan")
        lat = self.topology.latency
        best = float(lat[node][self.topology.origin])
        candidates = holders if holders is not None else self._holders[obj]
        for m in candidates:
            best = min(best, float(lat[node][m]))
        if self.holds(node, obj):
            best = 0.0
        return best

    def _repair_column(self, obj: int) -> None:
        """Recompute one object's nearest-replica column (vectorized)."""
        PERF.count("sim.cache.repair")
        col = self._best[:, obj]
        np.copyto(col, self._lat[:, self.topology.origin])
        for m in self._holders[obj]:
            np.minimum(col, self._lat[:, m], out=col)
        self._best_valid[obj] = True

    def invalidate_serve_cache(self) -> None:
        """Drop every cached nearest-replica column (fault events call this:
        liveness and link changes shift effective latencies wholesale)."""
        self._best_valid[:] = False

    def _best_latency_faulty(
        self, node: int, obj: int, scope: str, holders: Optional[Set[int]]
    ) -> float:
        """The liveness-masked variant of :meth:`best_latency`."""
        PERF.count("sim.serve.scan")
        faults = self.faults
        if not faults.is_alive(node):
            return float("inf")
        best = faults.lat(node, self.topology.origin)
        if scope == "local":
            if self.holds(node, obj):
                best = 0.0
            return best
        if scope != "global":
            raise ValueError(f"unknown routing scope: {scope!r}")
        candidates = holders if holders is not None else self.holders(obj)
        for m in candidates:
            best = min(best, faults.lat(node, m))
        if self.holds(node, obj):
            best = 0.0
        return best

    def covered(self, node: int, obj: int, tlat_ms: float, scope: str = "global") -> bool:
        """Whether ``node`` can read ``obj`` within the latency threshold."""
        return self.best_latency(node, obj, scope) <= tlat_ms
