"""The trace-replay engine.

Replays a request trace in time order against a placement heuristic:

1. At each period boundary (for periodic heuristics), fire
   ``on_interval`` with the demand of the closed period (and the coming
   period's demand for clairvoyant heuristics).
2. For each request, measure the latency under the heuristic's routing
   scope *before* letting the heuristic react (a cache miss is a miss even
   though the object is inserted right after), count it against the QoS
   goal, then fire ``on_access``.

Costs accrue in :class:`~repro.simulator.state.ReplicaState` with the same
units as the MC-PERF objective, so simulated costs are directly comparable
to the computed lower bounds (Figure 2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.heuristics.base import PlacementHeuristic
from repro.simulator.state import ReplicaState
from repro.topology.graph import Topology
from repro.workload.trace import Trace


@dataclass
class SimulationResult:
    """Measured cost and QoS of a deployed heuristic on a trace."""

    heuristic: str
    storage_cost: float
    creation_cost: float
    update_cost: float
    creations: int
    reads: int
    covered_reads: int
    qos_per_node: Dict[int, float] = field(default_factory=dict)
    peak_occupancy: Optional[np.ndarray] = None
    max_replicas_per_object: Optional[np.ndarray] = None
    mean_latency_ms: float = 0.0

    @property
    def total_cost(self) -> float:
        return self.storage_cost + self.creation_cost + self.update_cost

    @property
    def qos(self) -> float:
        """Overall covered-read fraction."""
        return self.covered_reads / self.reads if self.reads else 1.0

    @property
    def min_node_qos(self) -> float:
        """Worst per-node QoS — what a per-user goal is judged on."""
        return min(self.qos_per_node.values()) if self.qos_per_node else 1.0

    def meets(self, fraction: float, per_user: bool = True) -> bool:
        level = self.min_node_qos if per_user else self.qos
        return level >= fraction - 1e-12

    def __str__(self) -> str:
        return (
            f"{self.heuristic}: cost={self.total_cost:.1f} "
            f"(storage={self.storage_cost:.1f}, creation={self.creation_cost:.1f}), "
            f"QoS={self.qos:.5f} (worst node {self.min_node_qos:.5f})"
        )


class SimulationContext:
    """What heuristics see while the trace plays."""

    def __init__(
        self,
        topology: Topology,
        trace: Trace,
        state: ReplicaState,
        tlat_ms: float,
        assignment: Optional[np.ndarray] = None,
    ):
        self.topology = topology
        self.trace = trace
        self.state = state
        self.tlat_ms = tlat_ms
        self.assignment = assignment
        self.now_s = 0.0

    @property
    def num_nodes(self) -> int:
        return self.topology.num_nodes

    @property
    def num_objects(self) -> int:
        return self.trace.num_objects

    def create_replica(self, node: int, obj: int) -> bool:
        return self.state.create(node, obj, self.now_s)

    def drop_replica(self, node: int, obj: int) -> bool:
        return self.state.drop(node, obj, self.now_s)

    def holds(self, node: int, obj: int) -> bool:
        return self.state.holds(node, obj)


class Simulator:
    """Replays a trace against one heuristic.

    Parameters
    ----------
    topology / trace:
        The system and workload.
    heuristic:
        The placement heuristic under test.
    tlat_ms:
        Latency threshold for QoS accounting.
    alpha / beta / delta:
        Storage, creation and per-replica update-message unit costs (match
        the bound's cost model; delta implements extension (12)).
    cost_interval_s:
        Wall time worth one storage-cost unit (paper: 1 hour).
    warmup_s:
        Requests before this time do not count toward QoS (they still warm
        caches and accrue cost) — pair with the bound's ``warmup_intervals``.
    assignment:
        Optional per-site access node (deployment scenario §6.2): a request
        from site s is served through ``assignment[s]``; latency is the
        user-to-assigned-node leg plus the serving leg.
    """

    def __init__(
        self,
        topology: Topology,
        trace: Trace,
        heuristic: PlacementHeuristic,
        tlat_ms: float,
        alpha: float = 1.0,
        beta: float = 1.0,
        delta: float = 0.0,
        cost_interval_s: float = 3600.0,
        warmup_s: float = 0.0,
        assignment: Optional[np.ndarray] = None,
    ):
        if trace.num_nodes > topology.num_nodes:
            raise ValueError("trace references more nodes than the topology has")
        self.topology = topology
        self.trace = trace
        self.heuristic = heuristic
        self.tlat_ms = tlat_ms
        self.warmup_s = warmup_s
        self.assignment = assignment
        self.state = ReplicaState(
            topology,
            trace.num_objects,
            alpha=alpha,
            beta=beta,
            delta=delta,
            interval_s=cost_interval_s,
        )
        self.ctx = SimulationContext(topology, trace, self.state, tlat_ms, assignment)

    # -- serving --------------------------------------------------------------

    def _served_latency(self, node: int, obj: int) -> float:
        """Latency experienced by a request under the heuristic's routing."""
        scope = self.heuristic.routing
        if self.assignment is None:
            return self.state.best_latency(node, obj, scope)
        access = int(self.assignment[node])
        leg = float(self.topology.latency[node][access])
        return leg + self.state.best_latency(access, obj, scope)

    # -- driving -----------------------------------------------------------------

    def run(self) -> SimulationResult:
        trace = self.trace
        heuristic = self.heuristic
        period = heuristic.period_s
        demands: Optional[np.ndarray] = None
        if period is not None:
            num_periods = max(1, int(np.ceil(trace.duration_s / period)))
            demands = np.zeros((num_periods, trace.num_nodes, trace.num_objects))
            for req in trace.requests:
                if not req.is_write:
                    p = min(int(req.time_s / period), num_periods - 1)
                    demands[p, req.node, req.obj] += 1

        heuristic.on_start(self.ctx)

        reads = 0
        covered = 0
        lat_sum = 0.0
        per_node_reads: Dict[int, int] = {}
        per_node_covered: Dict[int, int] = {}
        next_boundary = 0.0
        period_index = 0

        for req in trace.requests:
            while period is not None and req.time_s >= next_boundary:
                past = (
                    demands[period_index - 1]
                    if period_index > 0
                    else np.zeros((trace.num_nodes, trace.num_objects))
                )
                nxt = (
                    demands[period_index]
                    if heuristic.clairvoyant and period_index < len(demands)
                    else None
                )
                self.ctx.now_s = next_boundary
                heuristic.on_interval(period_index, self.ctx, past, nxt)
                period_index += 1
                next_boundary += period

            self.ctx.now_s = req.time_s
            if not req.is_write:
                latency = self._served_latency(req.node, req.obj)
                if req.time_s >= self.warmup_s:
                    reads += 1
                    lat_sum += latency
                    per_node_reads[req.node] = per_node_reads.get(req.node, 0) + 1
                    if latency <= self.tlat_ms:
                        covered += 1
                        per_node_covered[req.node] = per_node_covered.get(req.node, 0) + 1
            else:
                latency = 0.0
                self.state.record_write(req.obj)
            heuristic.on_access(req, latency, self.ctx)

        self.ctx.now_s = trace.duration_s
        self.state.finalize(trace.duration_s)

        qos_per_node = {
            n: per_node_covered.get(n, 0) / cnt for n, cnt in per_node_reads.items()
        }
        return SimulationResult(
            heuristic=heuristic.describe(),
            storage_cost=self.state.storage_cost,
            creation_cost=self.state.creation_cost,
            update_cost=self.state.update_cost,
            creations=self.state.creations,
            reads=reads,
            covered_reads=covered,
            qos_per_node=qos_per_node,
            peak_occupancy=self.state.peak_occupancy.copy(),
            max_replicas_per_object=self.state.max_replicas_per_object.copy(),
            mean_latency_ms=lat_sum / reads if reads else 0.0,
        )


def simulate(
    topology: Topology,
    trace: Trace,
    heuristic: PlacementHeuristic,
    tlat_ms: float,
    **kwargs,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulator`."""
    return Simulator(topology, trace, heuristic, tlat_ms, **kwargs).run()
