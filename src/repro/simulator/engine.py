"""The trace-replay engine.

Replays a request trace in time order against a placement heuristic:

1. At each period boundary (for periodic heuristics), fire
   ``on_interval`` with the demand of the closed period (and the coming
   period's demand for clairvoyant heuristics).
2. For each request, measure the latency under the heuristic's routing
   scope *before* letting the heuristic react (a cache miss is a miss even
   though the object is inserted right after), count it against the QoS
   goal, then fire ``on_access``.

Costs accrue in :class:`~repro.simulator.state.ReplicaState` with the same
units as the MC-PERF objective, so simulated costs are directly comparable
to the computed lower bounds (Figure 2 of the paper).

With a :class:`~repro.faults.schedule.FaultSchedule` the engine additionally
fires fault events in time order between requests: crashed nodes drop their
replicas (storage charged up to the crash instant) and are masked out of
routing, degraded links inflate the effective latency, and the
``on_failure`` / ``on_recovery`` heuristic hooks let placement react.  Reads
with no live path are counted as *unavailable* rather than slow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.heuristics.base import PlacementHeuristic
from repro.simulator.state import ReplicaState
from repro.topology.graph import Topology
from repro.workload.trace import Trace


@dataclass
class SimulationResult:
    """Measured cost and QoS of a deployed heuristic on a trace."""

    heuristic: str
    storage_cost: float
    creation_cost: float
    update_cost: float
    creations: int
    reads: int
    covered_reads: int
    #: Covered-read fraction per node, over the nodes that issued at least
    #: one served post-warmup read.  Nodes with zero such reads (e.g. down
    #: for the whole run) are *excluded*, not reported as a perfect 1.0.
    qos_per_node: Dict[int, float] = field(default_factory=dict)
    peak_occupancy: Optional[np.ndarray] = None
    max_replicas_per_object: Optional[np.ndarray] = None
    mean_latency_ms: float = 0.0
    # -- availability under fault injection (all zero on fault-free runs) --
    #: Post-warmup reads with no live path to any replica or the origin
    #: (requester crashed, or partitioned from everything).  Excluded from
    #: ``reads`` — QoS is judged on the reads the system could serve.
    unavailable_reads: int = 0
    #: Lost replicas re-replicated by a healing policy.
    repairs: int = 0
    #: Mean loss-to-heal latency over those repairs.
    mean_repair_time_s: float = 0.0
    #: Replica creations performed by healing (included in creation_cost).
    healing_creations: int = 0
    #: Re-replication cost in cost units (healing_creations * beta).
    healing_cost: float = 0.0
    #: Total node-seconds spent down across the run.
    node_downtime_s: float = 0.0
    # -- SLO verdict (stamped by repro.faults.slo.apply_slo; None = unjudged) --
    #: Availability target this run was judged against, if any.
    slo_target: Optional[float] = None
    #: Whether the run's availability fell below ``slo_target``.
    slo_violated: bool = False

    @property
    def total_cost(self) -> float:
        return self.storage_cost + self.creation_cost + self.update_cost

    @property
    def qos(self) -> float:
        """Covered fraction of the reads the system could serve."""
        return self.covered_reads / self.reads if self.reads else 1.0

    @property
    def availability(self) -> float:
        """Fraction of issued post-warmup reads that found a live path."""
        issued = self.reads + self.unavailable_reads
        return self.reads / issued if issued else 1.0

    @property
    def min_node_qos(self) -> float:
        """Worst per-node QoS — what a per-user goal is judged on.

        Nodes that issued zero served reads are excluded (a node that was
        down the whole run must not count as a perfectly-served user).
        """
        return min(self.qos_per_node.values()) if self.qos_per_node else 1.0

    def meets(self, fraction: float, per_user: bool = True) -> bool:
        level = self.min_node_qos if per_user else self.qos
        return level >= fraction - 1e-12

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe encoding for the runner's cache/artifact layer."""
        from repro.serialize import array_to_jsonable, json_key_pairs

        return {
            "heuristic": self.heuristic,
            "storage_cost": self.storage_cost,
            "creation_cost": self.creation_cost,
            "update_cost": self.update_cost,
            "creations": self.creations,
            "reads": self.reads,
            "covered_reads": self.covered_reads,
            "qos_per_node": json_key_pairs(self.qos_per_node),
            "peak_occupancy": array_to_jsonable(self.peak_occupancy),
            "max_replicas_per_object": array_to_jsonable(self.max_replicas_per_object),
            "mean_latency_ms": self.mean_latency_ms,
            "unavailable_reads": self.unavailable_reads,
            "repairs": self.repairs,
            "mean_repair_time_s": self.mean_repair_time_s,
            "healing_creations": self.healing_creations,
            "healing_cost": self.healing_cost,
            "node_downtime_s": self.node_downtime_s,
            "slo_target": self.slo_target,
            "slo_violated": self.slo_violated,
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "SimulationResult":
        """Inverse of :meth:`to_dict`."""
        from repro.serialize import array_from_jsonable, int_key_pairs

        return SimulationResult(
            heuristic=str(payload["heuristic"]),
            storage_cost=float(payload["storage_cost"]),
            creation_cost=float(payload["creation_cost"]),
            update_cost=float(payload["update_cost"]),
            creations=int(payload["creations"]),
            reads=int(payload["reads"]),
            covered_reads=int(payload["covered_reads"]),
            qos_per_node=int_key_pairs(payload.get("qos_per_node", {})),
            peak_occupancy=array_from_jsonable(payload.get("peak_occupancy")),
            max_replicas_per_object=array_from_jsonable(
                payload.get("max_replicas_per_object")
            ),
            mean_latency_ms=float(payload.get("mean_latency_ms", 0.0)),
            unavailable_reads=int(payload.get("unavailable_reads", 0)),
            repairs=int(payload.get("repairs", 0)),
            mean_repair_time_s=float(payload.get("mean_repair_time_s", 0.0)),
            healing_creations=int(payload.get("healing_creations", 0)),
            healing_cost=float(payload.get("healing_cost", 0.0)),
            node_downtime_s=float(payload.get("node_downtime_s", 0.0)),
            slo_target=(
                None
                if payload.get("slo_target") is None
                else float(payload["slo_target"])
            ),
            slo_violated=bool(payload.get("slo_violated", False)),
        )

    def __str__(self) -> str:
        text = (
            f"{self.heuristic}: cost={self.total_cost:.1f} "
            f"(storage={self.storage_cost:.1f}, creation={self.creation_cost:.1f}), "
            f"QoS={self.qos:.5f} (worst node {self.min_node_qos:.5f})"
        )
        if self.unavailable_reads or self.node_downtime_s or self.repairs:
            text += (
                f", availability={self.availability:.5f} "
                f"({self.unavailable_reads} unavailable reads, "
                f"{self.repairs} repairs, "
                f"MTTR={self.mean_repair_time_s:.0f}s)"
            )
        if self.slo_target is not None:
            verdict = "VIOLATED" if self.slo_violated else "met"
            text += f", SLO>={self.slo_target:g} {verdict}"
        return text


class SimulationContext:
    """What heuristics see while the trace plays."""

    def __init__(
        self,
        topology: Topology,
        trace: Trace,
        state: ReplicaState,
        tlat_ms: float,
        assignment: Optional[np.ndarray] = None,
        fault_state=None,
        availability=None,
    ):
        self.topology = topology
        self.trace = trace
        self.state = state
        self.tlat_ms = tlat_ms
        self.assignment = assignment
        self.now_s = 0.0
        #: Liveness under fault injection (None on fault-free runs).
        self.fault_state = fault_state
        #: Availability counters (always present; healing policies write here).
        self.availability = availability

    def is_alive(self, node: int) -> bool:
        """Whether ``node`` is up (always True without fault injection)."""
        return self.fault_state is None or self.fault_state.is_alive(node)

    @property
    def num_nodes(self) -> int:
        return self.topology.num_nodes

    @property
    def num_objects(self) -> int:
        return self.trace.num_objects

    def create_replica(self, node: int, obj: int) -> bool:
        return self.state.create(node, obj, self.now_s)

    def drop_replica(self, node: int, obj: int) -> bool:
        return self.state.drop(node, obj, self.now_s)

    def holds(self, node: int, obj: int) -> bool:
        return self.state.holds(node, obj)


class Simulator:
    """Replays a trace against one heuristic.

    Parameters
    ----------
    topology / trace:
        The system and workload.
    heuristic:
        The placement heuristic under test.
    tlat_ms:
        Latency threshold for QoS accounting.
    alpha / beta / delta:
        Storage, creation and per-replica update-message unit costs (match
        the bound's cost model; delta implements extension (12)).
    cost_interval_s:
        Wall time worth one storage-cost unit (paper: 1 hour).
    warmup_s:
        Requests before this time do not count toward QoS (they still warm
        caches and accrue cost) — pair with the bound's ``warmup_intervals``.
    assignment:
        Optional per-site access node (deployment scenario §6.2): a request
        from site s is served through ``assignment[s]``; latency is the
        user-to-assigned-node leg plus the serving leg.
    faults:
        Optional :class:`~repro.faults.schedule.FaultSchedule` consumed in
        time order alongside the trace.  An empty (or absent) schedule takes
        the exact fault-free code path.
    initial_placement:
        Optional ``(node, obj)`` pairs adopted (creation-cost-free) before
        the trace starts — replicas carried across an epoch boundary by
        :mod:`repro.simulator.continuous`.  When given, the heuristic is
        started via ``on_adopt`` instead of ``on_start`` so it inherits the
        pre-existing state instead of assuming an empty system.
    """

    def __init__(
        self,
        topology: Topology,
        trace: Trace,
        heuristic: PlacementHeuristic,
        tlat_ms: float,
        alpha: float = 1.0,
        beta: float = 1.0,
        delta: float = 0.0,
        cost_interval_s: float = 3600.0,
        warmup_s: float = 0.0,
        assignment: Optional[np.ndarray] = None,
        faults=None,
        initial_placement: Optional[List[Tuple[int, int]]] = None,
    ):
        if trace.num_nodes > topology.num_nodes:
            raise ValueError("trace references more nodes than the topology has")
        self.topology = topology
        self.trace = trace
        self.heuristic = heuristic
        self.tlat_ms = tlat_ms
        self.warmup_s = warmup_s
        self.assignment = assignment
        self.state = ReplicaState(
            topology,
            trace.num_objects,
            alpha=alpha,
            beta=beta,
            delta=delta,
            interval_s=cost_interval_s,
        )
        from repro.faults.runtime import AvailabilityStats, FaultState

        self.fault_events = []
        self.fault_state = None
        if faults is not None and len(faults) > 0:
            faults.validate_for(topology)
            self.fault_events = list(faults)
            self.fault_state = FaultState(topology)
            self.state.faults = self.fault_state
        self.initial_placement = initial_placement
        self.stats = AvailabilityStats()
        self.ctx = SimulationContext(
            topology,
            trace,
            self.state,
            tlat_ms,
            assignment,
            fault_state=self.fault_state,
            availability=self.stats,
        )

    # -- serving --------------------------------------------------------------

    def _served_latency(self, node: int, obj: int) -> float:
        """Latency experienced by a request under the heuristic's routing."""
        scope = self.heuristic.routing
        if self.assignment is None:
            return self.state.best_latency(node, obj, scope)
        access = int(self.assignment[node])
        if self.fault_state is not None:
            leg = self.fault_state.lat(node, access)  # inf if the access node is down
        else:
            leg = float(self.topology.latency[node][access])
        return leg + self.state.best_latency(access, obj, scope)

    # -- fault handling -----------------------------------------------------------

    def _apply_fault(self, event) -> None:
        """Apply one fault event: liveness, replica accounting, hooks."""
        from repro.faults.events import (
            LinkDegrade,
            LinkRestore,
            NodeCrash,
            NodeRecover,
            ReplicaLoss,
        )

        self.ctx.now_s = event.time_s
        self.fault_state.apply(event)
        # Liveness/link changes shift effective latencies wholesale; drop
        # the nearest-replica cache (drops below re-invalidate per column).
        self.state.invalidate_serve_cache()
        if isinstance(event, NodeCrash):
            lost = self.state.lose_all(event.node, event.time_s)
            self.heuristic.on_failure(event, self.ctx, lost)
        elif isinstance(event, ReplicaLoss):
            lost: List[Tuple[int, int]] = []
            if self.state.drop(event.node, event.obj, event.time_s):
                lost = [(event.node, event.obj)]
            self.heuristic.on_failure(event, self.ctx, lost)
        elif isinstance(event, LinkDegrade):
            self.heuristic.on_failure(event, self.ctx, [])
        elif isinstance(event, (NodeRecover, LinkRestore)):
            self.heuristic.on_recovery(event, self.ctx)
        else:  # pragma: no cover - future event kinds
            raise TypeError(f"unknown fault event: {event!r}")

    # -- driving -----------------------------------------------------------------

    def run(self) -> SimulationResult:
        trace = self.trace
        heuristic = self.heuristic
        period = heuristic.period_s
        demands: Optional[np.ndarray] = None
        zero_demand: Optional[np.ndarray] = None
        if period is not None:
            num_periods = max(1, int(np.ceil(trace.duration_s / period)))
            demands = np.zeros((num_periods, trace.num_nodes, trace.num_objects))
            for req in trace.requests:
                if not req.is_write:
                    p = min(int(req.time_s / period), num_periods - 1)
                    demands[p, req.node, req.obj] += 1
            # Shared "no past demand yet" matrix for boundaries before
            # period 1 (was reallocated per boundary inside the loop).
            zero_demand = np.zeros((trace.num_nodes, trace.num_objects))

        if self.initial_placement is not None:
            for node, obj in self.initial_placement:
                self.state.adopt(int(node), int(obj), 0.0)
            heuristic.on_adopt(self.ctx)
        else:
            heuristic.on_start(self.ctx)

        reads = 0
        covered = 0
        lat_sum = 0.0
        per_node_reads: Dict[int, int] = {}
        per_node_covered: Dict[int, int] = {}
        next_boundary = 0.0
        period_index = 0
        fstate = self.fault_state
        fevents = self.fault_events
        stats = self.stats
        fi = 0

        for req in trace.requests:
            # Fire fault events and period boundaries in time order (faults
            # first on ties, so placement decisions see the post-fault world).
            while True:
                fault_t = fevents[fi].time_s if fi < len(fevents) else math.inf
                boundary_t = next_boundary if period is not None else math.inf
                if fault_t > req.time_s and boundary_t > req.time_s:
                    break
                if fault_t <= boundary_t:
                    self._apply_fault(fevents[fi])
                    fi += 1
                    continue
                past = demands[period_index - 1] if period_index > 0 else zero_demand
                nxt = (
                    demands[period_index]
                    if heuristic.clairvoyant and period_index < len(demands)
                    else None
                )
                self.ctx.now_s = next_boundary
                heuristic.on_interval(period_index, self.ctx, past, nxt)
                period_index += 1
                next_boundary += period

            self.ctx.now_s = req.time_s
            if fstate is not None and not fstate.is_alive(req.node):
                # The requesting site is down: its users see the outage, not
                # a slow read.  The request is never issued to the system.
                if not req.is_write and req.time_s >= self.warmup_s:
                    stats.unavailable_reads += 1
                continue
            if not req.is_write:
                latency = self._served_latency(req.node, req.obj)
                if math.isinf(latency):
                    # Alive but partitioned from every replica and the origin.
                    if req.time_s >= self.warmup_s:
                        stats.unavailable_reads += 1
                    continue  # nothing was fetched; the heuristic sees nothing
                if req.time_s >= self.warmup_s:
                    reads += 1
                    lat_sum += latency
                    per_node_reads[req.node] = per_node_reads.get(req.node, 0) + 1
                    if latency <= self.tlat_ms:
                        covered += 1
                        per_node_covered[req.node] = per_node_covered.get(req.node, 0) + 1
            else:
                latency = 0.0
                self.state.record_write(req.obj)
            heuristic.on_access(req, latency, self.ctx)

        # Trailing fault events (after the last request) still count for
        # downtime and storage accounting.
        while fi < len(fevents) and fevents[fi].time_s <= trace.duration_s:
            self._apply_fault(fevents[fi])
            fi += 1

        self.ctx.now_s = trace.duration_s
        if fstate is not None:
            fstate.finalize(trace.duration_s)
        self.state.finalize(trace.duration_s)

        qos_per_node = {
            n: per_node_covered.get(n, 0) / cnt for n, cnt in per_node_reads.items()
        }
        return SimulationResult(
            heuristic=heuristic.describe(),
            storage_cost=self.state.storage_cost,
            creation_cost=self.state.creation_cost,
            update_cost=self.state.update_cost,
            creations=self.state.creations,
            reads=reads,
            covered_reads=covered,
            qos_per_node=qos_per_node,
            peak_occupancy=self.state.peak_occupancy.copy(),
            max_replicas_per_object=self.state.max_replicas_per_object.copy(),
            mean_latency_ms=lat_sum / reads if reads else 0.0,
            unavailable_reads=stats.unavailable_reads,
            repairs=stats.repairs,
            mean_repair_time_s=(
                stats.repair_time_s / stats.repairs if stats.repairs else 0.0
            ),
            healing_creations=stats.healing_creations,
            healing_cost=stats.healing_creations * self.state.beta,
            node_downtime_s=fstate.node_downtime_s if fstate is not None else 0.0,
        )


def simulate(
    topology: Topology,
    trace: Trace,
    heuristic: PlacementHeuristic,
    tlat_ms: float,
    **kwargs,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulator`."""
    return Simulator(topology, trace, heuristic, tlat_ms, **kwargs).run()
