"""Continuous (epoch-driven) placement under sustained faults.

The paper evaluates heuristics on a single trace against a fixed workload;
a deployed wide-area system instead runs *continuously*: demand drifts, a
fault storm spans many placement rounds, and each round inherits the
replicas of the previous one.  :func:`run_continuous` models this as a
sequence of epochs:

1. the previous epoch's surviving placement is carried across the boundary
   and *adopted* (no creation cost — those bytes were already paid for),
   shedding the lowest-value replicas first if node capacity shrank;
2. a fresh instance of the heuristic runs the epoch's trace (workload
   drift = a different per-epoch trace, e.g. :mod:`repro.workload.drift`)
   against the epoch's slice of the full fault schedule
   (:meth:`~repro.faults.schedule.FaultSchedule.slice` carries open
   crashes/partitions in);
3. *migration* — replicas present at the epoch's end that were not carried
   in — is accounted in bytes, separately from the serve-side cost the
   paper's model charges (storage + creation + update);
4. each epoch's availability is judged against an optional
   :class:`~repro.faults.slo.AvailabilitySLO`; violating epochs are flagged.

The result aggregates per-epoch reports plus the final placement and its
zone spread, so heuristics can be ranked by the three axes that matter for
continuous operation: serve cost, migration traffic, and SLO compliance.

The loop is factored into a *pure* per-epoch step so long-running callers
can checkpoint at epoch boundaries: :class:`ContinuousState` is the entire
inter-epoch carry (cursor, adopted placement, shed-value demand, reports)
and :func:`step_epoch` maps ``(state, trace) -> state'`` without mutating
its input.  :func:`run_continuous` is the batch driver over that step; the
placement service daemon (:mod:`repro.service.daemon`) is the supervised
one, journaling each post-epoch state so a ``kill -9`` mid-epoch replays
the interrupted epoch deterministically and converges to the same
placements an uninterrupted run produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.slo import AvailabilitySLO, apply_slo
from repro.heuristics.base import PlacementHeuristic
from repro.simulator.engine import SimulationResult, Simulator
from repro.topology.graph import Topology
from repro.workload.trace import Trace


@dataclass
class EpochReport:
    """One epoch's outcome, summarized for manifests and benchmarks."""

    index: int
    serve_cost: float
    migration_bytes: float
    reads: int
    unavailable_reads: int
    availability: float
    qos: float
    slo_violated: bool
    creations: int
    repairs: int
    shed_replicas: int
    placement_size: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "serve_cost": self.serve_cost,
            "migration_bytes": self.migration_bytes,
            "reads": self.reads,
            "unavailable_reads": self.unavailable_reads,
            "availability": self.availability,
            "qos": self.qos,
            "slo_violated": self.slo_violated,
            "creations": self.creations,
            "repairs": self.repairs,
            "shed_replicas": self.shed_replicas,
            "placement_size": self.placement_size,
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "EpochReport":
        return EpochReport(
            index=int(payload["index"]),
            serve_cost=float(payload["serve_cost"]),
            migration_bytes=float(payload["migration_bytes"]),
            reads=int(payload["reads"]),
            unavailable_reads=int(payload["unavailable_reads"]),
            availability=float(payload["availability"]),
            qos=float(payload["qos"]),
            slo_violated=bool(payload["slo_violated"]),
            creations=int(payload["creations"]),
            repairs=int(payload["repairs"]),
            shed_replicas=int(payload["shed_replicas"]),
            placement_size=int(payload["placement_size"]),
        )


@dataclass
class ContinuousResult:
    """Aggregate outcome of an epoch-driven run."""

    heuristic: str
    object_size_bytes: float
    slo_target: Optional[float]
    epochs: List[EpochReport] = field(default_factory=list)
    final_placement: List[Tuple[int, int]] = field(default_factory=list)
    final_unique_zones: int = 0
    #: True when the run was stopped early (SIGTERM drain / daemon stop):
    #: the epochs recorded are valid, but the horizon was not completed, so
    #: the result must never be cached under the full task's digest.
    interrupted: bool = False

    @property
    def serve_cost(self) -> float:
        """Paper-model cost (storage + creation + update) summed over epochs."""
        return sum(e.serve_cost for e in self.epochs)

    @property
    def migration_bytes(self) -> float:
        return sum(e.migration_bytes for e in self.epochs)

    @property
    def reads(self) -> int:
        return sum(e.reads for e in self.epochs)

    @property
    def unavailable_reads(self) -> int:
        return sum(e.unavailable_reads for e in self.epochs)

    @property
    def availability(self) -> float:
        issued = self.reads + self.unavailable_reads
        return self.reads / issued if issued else 1.0

    @property
    def worst_epoch_availability(self) -> float:
        return min((e.availability for e in self.epochs), default=1.0)

    @property
    def slo_violation_epochs(self) -> List[int]:
        return [e.index for e in self.epochs if e.slo_violated]

    @property
    def slo_violations(self) -> int:
        return len(self.slo_violation_epochs)

    @property
    def shed_replicas(self) -> int:
        return sum(e.shed_replicas for e in self.epochs)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe encoding for the runner's cache/artifact layer."""
        return {
            "heuristic": self.heuristic,
            "object_size_bytes": self.object_size_bytes,
            "slo_target": self.slo_target,
            "epochs": [e.to_dict() for e in self.epochs],
            "final_placement": [[int(n), int(o)] for n, o in self.final_placement],
            "final_unique_zones": self.final_unique_zones,
            "interrupted": self.interrupted,
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "ContinuousResult":
        return ContinuousResult(
            heuristic=str(payload["heuristic"]),
            object_size_bytes=float(payload["object_size_bytes"]),
            slo_target=(
                None
                if payload.get("slo_target") is None
                else float(payload["slo_target"])
            ),
            epochs=[EpochReport.from_dict(e) for e in payload.get("epochs", [])],
            final_placement=[
                (int(n), int(o)) for n, o in payload.get("final_placement", [])
            ],
            final_unique_zones=int(payload.get("final_unique_zones", 0)),
            interrupted=bool(payload.get("interrupted", False)),
        )

    def __str__(self) -> str:
        text = (
            f"{self.heuristic}: {len(self.epochs)} epochs"
            f"{' (interrupted)' if self.interrupted else ''}, "
            f"serve_cost={self.serve_cost:.1f}, "
            f"migration={self.migration_bytes:.0f}B, "
            f"availability={self.availability:.5f} "
            f"(worst epoch {self.worst_epoch_availability:.5f})"
        )
        if self.slo_target is not None:
            text += (
                f", SLO>={self.slo_target:g}: "
                f"{self.slo_violations}/{len(self.epochs)} epochs violated"
            )
        return text


def shed_to_capacity(
    placement: Sequence[Tuple[int, int]],
    capacity: Optional[int],
    value: Optional[Dict[Tuple[int, int], float]] = None,
) -> Tuple[List[Tuple[int, int]], int]:
    """Trim a carried placement to a per-node replica capacity.

    Over-capacity nodes shed their *lowest-value* replicas (value = the
    previous epoch's read demand for that ``(node, obj)``; ties drop the
    highest object id first for determinism) rather than refusing to start
    — the graceful-degradation half of the epoch handoff.  Returns the kept
    pairs (sorted) and the number shed.
    """
    if capacity is None:
        return sorted(placement), 0
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    per_node: Dict[int, List[int]] = {}
    for node, obj in placement:
        per_node.setdefault(node, []).append(obj)
    kept: List[Tuple[int, int]] = []
    shed = 0
    for node, objs in sorted(per_node.items()):
        if len(objs) <= capacity:
            kept.extend((node, obj) for obj in objs)
            continue
        # Most valuable first; drop the tail beyond capacity.
        ranked = sorted(
            objs,
            key=lambda obj: (-(value or {}).get((node, obj), 0.0), obj),
        )
        kept.extend((node, obj) for obj in ranked[:capacity])
        shed += len(objs) - capacity
    return sorted(kept), shed


def _epoch_demand(trace: Trace) -> Dict[Tuple[int, int], float]:
    """Per-``(node, obj)`` read counts — the shed-value signal."""
    demand: Dict[Tuple[int, int], float] = {}
    for req in trace.requests:
        if not req.is_write:
            key = (req.node, req.obj)
            demand[key] = demand.get(key, 0.0) + 1.0
    return demand


@dataclass
class ContinuousState:
    """The complete inter-epoch carry of a continuous run.

    Everything the next :func:`step_epoch` call depends on lives here, so a
    JSON round-trip of this state at an epoch boundary is a *checkpoint*:
    restoring it and replaying the remaining epoch traces (which are
    deterministic in their seed) reproduces the uninterrupted run exactly.
    """

    #: Index of the next epoch to run (== number of epochs completed).
    index: int = 0
    #: Fault-schedule time offset of the next epoch's start.
    offset: float = 0.0
    #: The placement carried out of the last completed epoch.
    carried: List[Tuple[int, int]] = field(default_factory=list)
    #: Last epoch's per-``(node, obj)`` read demand (shed-value signal);
    #: only tracked when a shed capacity is configured.
    prev_demand: Optional[Dict[Tuple[int, int], float]] = None
    #: Display name captured from the first epoch's heuristic.
    heuristic_name: str = ""
    epochs: List[EpochReport] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe encoding (checkpoint snapshot / journal record)."""
        return {
            "index": self.index,
            "offset": self.offset,
            "carried": [[int(n), int(o)] for n, o in self.carried],
            "prev_demand": (
                None
                if self.prev_demand is None
                else [[int(n), int(o), float(v)] for (n, o), v in sorted(self.prev_demand.items())]
            ),
            "heuristic_name": self.heuristic_name,
            "epochs": [e.to_dict() for e in self.epochs],
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "ContinuousState":
        prev = payload.get("prev_demand")
        return ContinuousState(
            index=int(payload["index"]),
            offset=float(payload["offset"]),
            carried=[(int(n), int(o)) for n, o in payload.get("carried", [])],
            prev_demand=(
                None
                if prev is None
                else {(int(n), int(o)): float(v) for n, o, v in prev}
            ),
            heuristic_name=str(payload.get("heuristic_name", "")),
            epochs=[EpochReport.from_dict(e) for e in payload.get("epochs", [])],
        )


def step_epoch(
    topology: Topology,
    trace: Trace,
    heuristic_factory: Callable[[], PlacementHeuristic],
    state: ContinuousState,
    tlat_ms: float,
    *,
    faults=None,
    slo: Optional[AvailabilitySLO] = None,
    capacity: Optional[int] = None,
    object_size_bytes: float = 1.0,
    alpha: float = 1.0,
    beta: float = 1.0,
    delta: float = 0.0,
    cost_interval_s: float = 3600.0,
    warmup_s: float = 0.0,
) -> Tuple[ContinuousState, EpochReport, SimulationResult]:
    """Run exactly one epoch; returns ``(new_state, report, sim_result)``.

    Pure with respect to ``state``: the input is not mutated, so a caller
    that crashes mid-step can retry from the same state and get the same
    answer (the trace and the fault-schedule slice are both deterministic).
    ``faults`` is the *full-horizon* schedule — the step slices out its own
    ``[offset, offset + trace.duration_s)`` window, exactly like the batch
    loop always did.
    """
    index = state.index
    epoch_faults = None
    if faults is not None and len(faults) > 0:
        epoch_faults = faults.slice(state.offset, state.offset + trace.duration_s)
    placement, shed = shed_to_capacity(state.carried, capacity, state.prev_demand)
    heuristic = heuristic_factory()
    sim = Simulator(
        topology,
        trace,
        heuristic,
        tlat_ms,
        alpha=alpha,
        beta=beta,
        delta=delta,
        cost_interval_s=cost_interval_s,
        warmup_s=warmup_s if index == 0 else 0.0,
        faults=epoch_faults,
        initial_placement=placement if index > 0 else None,
    )
    result = sim.run()
    if slo is not None:
        apply_slo(result, slo)
    non_origin = [n for n in topology.nodes() if n != topology.origin]
    final = sorted(
        (node, obj) for node in non_origin for obj in sim.state.contents(node)
    )
    migrated = len(set(final) - set(placement if index > 0 else []))
    report = EpochReport(
        index=index,
        serve_cost=result.total_cost,
        migration_bytes=migrated * object_size_bytes,
        reads=result.reads,
        unavailable_reads=result.unavailable_reads,
        availability=result.availability,
        qos=result.qos,
        slo_violated=result.slo_violated,
        creations=result.creations,
        repairs=result.repairs,
        shed_replicas=shed,
        placement_size=len(final),
    )
    new_state = ContinuousState(
        index=index + 1,
        offset=state.offset + trace.duration_s,
        carried=final,
        prev_demand=_epoch_demand(trace) if capacity is not None else None,
        heuristic_name=state.heuristic_name or result.heuristic,
        epochs=state.epochs + [report],
    )
    return new_state, report, result


def finalize_continuous(
    topology: Topology,
    state: ContinuousState,
    *,
    object_size_bytes: float = 1.0,
    slo: Optional[AvailabilitySLO] = None,
    interrupted: bool = False,
) -> ContinuousResult:
    """Package an inter-epoch state as the run's :class:`ContinuousResult`."""
    # The durable origin counts toward spread — it serves like any replica.
    spread_nodes = {topology.origin}
    spread_nodes.update(n for n, _ in state.carried)
    return ContinuousResult(
        heuristic=state.heuristic_name,
        object_size_bytes=object_size_bytes,
        slo_target=None if slo is None else slo.target,
        epochs=list(state.epochs),
        final_placement=list(state.carried),
        final_unique_zones=len(topology.zones_of(spread_nodes)),
        interrupted=interrupted,
    )


#: Process-wide stop predicate consulted by :func:`run_continuous` when the
#: caller passes no explicit ``stop``.  The CLI's signal handlers install a
#: flag check here because the task object itself must stay picklable (a
#: callable field would break the process-pool path).
_GLOBAL_STOP: Optional[Callable[[], bool]] = None


def install_stop_check(fn: Optional[Callable[[], bool]]) -> None:
    """Install (or clear, with None) the process-wide graceful-stop check."""
    global _GLOBAL_STOP
    _GLOBAL_STOP = fn


def run_continuous(
    topology: Topology,
    traces: Sequence[Trace],
    heuristic_factory: Callable[[], PlacementHeuristic],
    tlat_ms: float,
    *,
    faults=None,
    slo: Optional[AvailabilitySLO] = None,
    capacity: Optional[int] = None,
    object_size_bytes: float = 1.0,
    alpha: float = 1.0,
    beta: float = 1.0,
    delta: float = 0.0,
    cost_interval_s: float = 3600.0,
    warmup_s: float = 0.0,
    on_epoch: Optional[Callable[[EpochReport, SimulationResult], None]] = None,
    stop: Optional[Callable[[], bool]] = None,
) -> ContinuousResult:
    """Run one heuristic through a sequence of epoch traces.

    Parameters
    ----------
    traces:
        One trace per epoch, each rebased to start at t=0 (workload drift =
        different traces; see :func:`repro.workload.drift.drifting_traces`).
        All must share the topology's node universe and one object universe.
    heuristic_factory:
        Zero-argument callable producing a *fresh* heuristic instance per
        epoch (heuristics carry private state; reusing one instance would
        leak metadata across the adoption boundary).
    faults:
        Full-horizon :class:`~repro.faults.schedule.FaultSchedule`; each
        epoch consumes its :meth:`~repro.faults.schedule.FaultSchedule.slice`
        with open faults carried in.
    slo:
        Optional per-epoch availability objective; violating epochs are
        flagged on both the epoch report and its SimulationResult.
    capacity:
        Per-node replica cap applied to the *carried* placement at each
        boundary (shed lowest-value first).  The heuristic's own capacity
        limits still apply to what it creates during the epoch.
    object_size_bytes:
        Byte size per replica transfer for migration accounting.
    warmup_s:
        Warm-up window of the *first* epoch only; later epochs inherit a
        warmed system.
    on_epoch:
        Optional callback fired after each epoch (progress reporting).
    stop:
        Optional zero-argument predicate checked *between* epochs (a signal
        handler's flag, typically).  When it returns True the run ends at
        the last completed epoch boundary with ``interrupted=True`` — the
        completed epochs are intact, nothing mid-epoch is lost, and the
        runner layer refuses to cache the partial result.
    """
    if not traces:
        raise ValueError("need at least one epoch trace")
    if object_size_bytes <= 0:
        raise ValueError("object size must be positive")
    num_objects = traces[0].num_objects
    for t in traces:
        if t.num_objects != num_objects:
            raise ValueError("all epoch traces must share one object universe")
    if faults is not None and len(faults) > 0:
        faults.validate_for(topology)

    if stop is None:
        stop = _GLOBAL_STOP
    state = ContinuousState()
    interrupted = False
    for trace in traces:
        if stop is not None and stop():
            interrupted = True
            break
        state, report, result = step_epoch(
            topology,
            trace,
            heuristic_factory,
            state,
            tlat_ms,
            faults=faults,
            slo=slo,
            capacity=capacity,
            object_size_bytes=object_size_bytes,
            alpha=alpha,
            beta=beta,
            delta=delta,
            cost_interval_s=cost_interval_s,
            warmup_s=warmup_s,
        )
        if on_epoch is not None:
            on_epoch(report, result)

    return finalize_continuous(
        topology,
        state,
        object_size_bytes=object_size_bytes,
        slo=slo,
        interrupted=interrupted,
    )
