"""Cost accounting for simulated heuristics, aligned with the bounds.

A deployed storage-constrained heuristic pays for its *provisioned* capacity
(every node, every interval), and a replica-constrained heuristic for its
replication factor — the same accounting the lower bounds and the rounding
adjustments use (Figure 5).  ``heuristic_cost`` converts a raw
:class:`~repro.simulator.engine.SimulationResult` into that comparable cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.simulator.engine import SimulationResult


@dataclass(frozen=True)
class ComparableCost:
    """Provisioned-cost view of a simulation, comparable to a bound."""

    storage: float
    creation: float
    mode: str

    @property
    def total(self) -> float:
        return self.storage + self.creation


def heuristic_cost(
    result: SimulationResult,
    mode: str = "raw",
    alpha: float = 1.0,
    num_intervals: Optional[int] = None,
    num_nodes: Optional[int] = None,
    capacity: Optional[int] = None,
    replicas: Optional[int] = None,
    num_objects: Optional[int] = None,
) -> ComparableCost:
    """Cost of a simulated heuristic under a bound-comparable accounting.

    Parameters
    ----------
    mode:
        ``"raw"`` — object-time storage actually used (the simulator's own
        integral) plus creations.
        ``"sc"`` — storage-constrained provisioning: ``alpha * num_nodes *
        num_intervals * capacity`` plus creations.
        ``"rc"`` — replica-constrained provisioning: ``alpha * num_intervals
        * num_objects * replicas`` plus creations.
    num_nodes:
        Replica-capable nodes (origin excluded).
    num_intervals:
        Cost intervals in the run (trace duration / cost interval).
    """
    if mode == "raw":
        return ComparableCost(result.storage_cost, result.creation_cost, mode)
    if num_intervals is None:
        raise ValueError(f"mode {mode!r} needs num_intervals")
    if mode == "sc":
        if num_nodes is None or capacity is None:
            raise ValueError("mode 'sc' needs num_nodes and capacity")
        storage = alpha * num_nodes * num_intervals * capacity
        return ComparableCost(storage, result.creation_cost, mode)
    if mode == "rc":
        if replicas is None or num_objects is None:
            raise ValueError("mode 'rc' needs replicas and num_objects")
        storage = alpha * num_intervals * num_objects * replicas
        return ComparableCost(storage, result.creation_cost, mode)
    raise ValueError(f"unknown accounting mode: {mode!r}")


def availability_report(result: SimulationResult) -> str:
    """Human-readable availability block for a (possibly faulty) run.

    Pairs with ``str(result)`` in CLI/benchmark output; all-zero rows render
    too, so fault-free and faulty runs stay visually comparable.
    """
    lines = [
        f"availability      {result.availability:.5f} "
        f"({result.unavailable_reads} unavailable of "
        f"{result.reads + result.unavailable_reads} issued reads)",
        f"node downtime     {result.node_downtime_s:.0f}s",
        f"repairs           {result.repairs} "
        f"(mean time-to-repair {result.mean_repair_time_s:.0f}s)",
        f"re-replication    {result.healing_creations} creations "
        f"(cost {result.healing_cost:.1f})",
    ]
    return "\n".join(lines)
