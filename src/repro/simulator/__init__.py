"""Trace-driven simulator for deployed placement heuristics.

The paper evaluates actual heuristics "using simulation... their actual
evaluation interval" (per access for caching, periodic for centralized
placement).  This package is that simulator: it replays a request trace
against a :class:`~repro.heuristics.base.PlacementHeuristic`, tracks replica
state and cost (object-time storage + replica creations), and measures the
achieved QoS against a latency threshold.
"""

from repro.simulator.state import ReplicaState
from repro.simulator.engine import SimulationResult, Simulator, simulate
from repro.simulator.continuous import (
    ContinuousResult,
    EpochReport,
    run_continuous,
    shed_to_capacity,
)
from repro.simulator.metrics import availability_report, heuristic_cost
from repro.simulator.sizing import (
    SizingResult,
    min_capacity_for_goal,
    min_replicas_for_goal,
)

__all__ = [
    "ReplicaState",
    "Simulator",
    "SimulationResult",
    "simulate",
    "ContinuousResult",
    "EpochReport",
    "run_continuous",
    "shed_to_capacity",
    "heuristic_cost",
    "availability_report",
    "SizingResult",
    "min_capacity_for_goal",
    "min_replicas_for_goal",
]
