"""Topology generators.

``as_level_topology`` is the stand-in for the paper's Telstra-derived 20-node
AS topology: AS-level graphs are well modelled by preferential attachment
(heavy-tailed degree), each hop costs 100–200 ms, and the best-connected node
plays the corporate-headquarters role.  The regular generators (star, line,
ring, grid) exist for tests and controlled experiments where the reachability
structure must be known exactly.
"""

from __future__ import annotations

from typing import Callable, Optional

import networkx as nx
import numpy as np

from repro.topology.graph import Topology
from repro.topology.latency import uniform_latency

LatencyModel = Callable[[np.random.Generator], float]


def _latency_matrix(graph: nx.Graph, n: int) -> np.ndarray:
    """All-pairs shortest-path latency over edge ``latency`` attributes."""
    lat = np.full((n, n), np.inf)
    np.fill_diagonal(lat, 0.0)
    for src, lengths in nx.all_pairs_dijkstra_path_length(graph, weight="latency"):
        for dst, value in lengths.items():
            lat[src][dst] = value
    if np.isinf(lat).any():
        raise ValueError("graph is disconnected; cannot build a latency matrix")
    # Symmetrize against floating-point asymmetries from Dijkstra ordering.
    return (lat + lat.T) / 2.0


def _skewed_populations(rng: np.random.Generator, n: int, skew: float) -> np.ndarray:
    """Uneven user populations: Zipf-like weights shuffled across sites.

    ``skew == 0`` gives uniform populations; larger values concentrate users
    on fewer sites (the paper notes "some sites are bigger or more active").
    """
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-skew) if skew > 0 else np.ones(n)
    weights = weights / weights.sum() * n
    rng.shuffle(weights)
    return weights


def as_level_topology(
    num_nodes: int = 20,
    seed: int = 0,
    attachment: int = 2,
    latency_model: Optional[LatencyModel] = None,
    population_skew: float = 0.8,
) -> Topology:
    """A synthetic AS-level corporate WAN (paper §6 case-study stand-in).

    Parameters
    ----------
    num_nodes:
        Number of sites (paper: 20).
    seed:
        Seed for graph structure, latencies and populations.
    attachment:
        Barabási–Albert attachment parameter (edges per new node).
    latency_model:
        Per-link latency draw; defaults to uniform 100–200 ms as in the paper.
    population_skew:
        Zipf exponent for the uneven user-population weights.
    """
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes")
    attachment = min(attachment, num_nodes - 1)
    rng = np.random.default_rng(seed)
    graph = nx.barabasi_albert_graph(num_nodes, attachment, seed=int(rng.integers(2**31)))
    draw = latency_model or uniform_latency
    for u, v in graph.edges:
        graph.edges[u, v]["latency"] = draw(rng)
    latency = _latency_matrix(graph, num_nodes)
    # Headquarters = best-connected site (highest degree, ties by index).
    origin = max(graph.degree, key=lambda kv: (kv[1], -kv[0]))[0]
    populations = _skewed_populations(rng, num_nodes, population_skew)
    return Topology(latency=latency, origin=int(origin), populations=populations)


def topology_from_edges(
    num_nodes: int,
    edges,
    origin: int = 0,
    populations=None,
    names=None,
) -> Topology:
    """Build a topology from measured links.

    Parameters
    ----------
    edges:
        Iterable of ``(u, v, latency_ms)`` links; the pairwise matrix is the
        all-pairs shortest path over them.  The graph must be connected.
    """
    graph = nx.Graph()
    graph.add_nodes_from(range(num_nodes))
    for u, v, latency_ms in edges:
        if not (0 <= u < num_nodes and 0 <= v < num_nodes):
            raise ValueError(f"edge ({u}, {v}) references an unknown node")
        if latency_ms < 0:
            raise ValueError("link latency must be non-negative")
        graph.add_edge(int(u), int(v), latency=float(latency_ms))
    return Topology(
        latency=_latency_matrix(graph, num_nodes),
        origin=origin,
        populations=populations,
        names=list(names) if names else [],
    )


def star_topology(
    num_leaves: int = 5,
    hub_latency_ms: float = 100.0,
    seed: int = 0,
    jitter_ms: float = 0.0,
) -> Topology:
    """A hub-and-spoke topology; the hub (node 0) is the origin."""
    if num_leaves < 1:
        raise ValueError("need at least 1 leaf")
    rng = np.random.default_rng(seed)
    graph = nx.star_graph(num_leaves)
    for u, v in graph.edges:
        graph.edges[u, v]["latency"] = hub_latency_ms + (
            rng.uniform(-jitter_ms, jitter_ms) if jitter_ms else 0.0
        )
    n = num_leaves + 1
    return Topology(latency=_latency_matrix(graph, n), origin=0)


def line_topology(num_nodes: int = 5, hop_latency_ms: float = 100.0) -> Topology:
    """A chain of nodes; node 0 is the origin.  Latency grows linearly with hops."""
    if num_nodes < 1:
        raise ValueError("need at least 1 node")
    graph = nx.path_graph(num_nodes)
    for u, v in graph.edges:
        graph.edges[u, v]["latency"] = hop_latency_ms
    return Topology(latency=_latency_matrix(graph, num_nodes), origin=0)


def ring_topology(num_nodes: int = 6, hop_latency_ms: float = 100.0) -> Topology:
    """A cycle of nodes; node 0 is the origin."""
    if num_nodes < 3:
        raise ValueError("a ring needs at least 3 nodes")
    graph = nx.cycle_graph(num_nodes)
    for u, v in graph.edges:
        graph.edges[u, v]["latency"] = hop_latency_ms
    return Topology(latency=_latency_matrix(graph, num_nodes), origin=0)


def tree_topology(
    num_nodes: int = 10,
    seed: int = 0,
    latency_model: Optional[LatencyModel] = None,
    population_skew: float = 0.0,
) -> Topology:
    """A random recursive tree; node 0 is the root and origin.

    Node ``i`` attaches to a uniformly random earlier node, giving the
    broad, shallow shape typical of hub-dominated WANs.  The pairwise
    matrix is built incrementally (each node's distance row is its
    parent's row plus the connecting edge) rather than through networkx
    Dijkstra, so thousand-node instances assemble in milliseconds — these
    are the inputs the exact tree-DP backend exists for, and
    :meth:`Topology.is_tree` recognizes them by construction.
    """
    if num_nodes < 1:
        raise ValueError("need at least 1 node")
    rng = np.random.default_rng(seed)
    draw = latency_model or uniform_latency
    lat = np.zeros((num_nodes, num_nodes))
    for v in range(1, num_nodes):
        p = int(rng.integers(0, v))
        w = float(draw(rng))
        lat[v, :v] = lat[p, :v] + w
        lat[:v, v] = lat[v, :v]
    populations = (
        _skewed_populations(rng, num_nodes, population_skew) if population_skew > 0 else None
    )
    return Topology(latency=lat, origin=0, populations=populations)


def grid_topology(rows: int = 3, cols: int = 3, hop_latency_ms: float = 100.0) -> Topology:
    """A rows×cols mesh; the top-left corner is the origin."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    graph = nx.grid_2d_graph(rows, cols)
    graph = nx.convert_node_labels_to_integers(graph, ordering="sorted")
    for u, v in graph.edges:
        graph.edges[u, v]["latency"] = hop_latency_ms
    return Topology(latency=_latency_matrix(graph, rows * cols), origin=0)
