"""The :class:`Topology` model consumed by MC-PERF and the simulator.

A topology is a set of sites (nodes), a symmetric pairwise latency matrix
derived from shortest paths over link latencies, a designated *origin* node
(the paper's corporate headquarters / data center that stores every object),
and a per-node user population weight used by the workload generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np


@dataclass
class Topology:
    """A wide-area system topology.

    Attributes
    ----------
    latency:
        ``(n, n)`` symmetric matrix of access latencies in milliseconds;
        ``latency[n][n] == 0``.
    origin:
        Index of the origin (headquarters) node that permanently stores all
        objects.
    populations:
        Relative user-population weights per node (used to skew demand).
    names:
        Optional human-readable site names.
    zones:
        Optional per-node failure-zone ids (region, rack, power feed).
        Nodes sharing a zone are assumed failure-correlated: zone-aware
        fault generators crash them together and zone-aware healing spreads
        replicas across zones.  ``None`` means no correlation information —
        every node is treated as its own zone.
    """

    latency: np.ndarray
    origin: int = 0
    populations: Optional[np.ndarray] = None
    names: List[str] = field(default_factory=list)
    zones: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.latency = np.asarray(self.latency, dtype=float)
        if self.latency.ndim != 2 or self.latency.shape[0] != self.latency.shape[1]:
            raise ValueError("latency must be a square matrix")
        n = self.latency.shape[0]
        if not (0 <= self.origin < n):
            raise ValueError(f"origin {self.origin} out of range for {n} nodes")
        if np.any(np.abs(np.diagonal(self.latency)) > 1e-9):
            raise ValueError("latency diagonal must be zero")
        if np.any(self.latency < 0):
            raise ValueError("latencies must be non-negative")
        if not np.allclose(self.latency, self.latency.T, atol=1e-6):
            raise ValueError("latency matrix must be symmetric")
        if self.populations is None:
            self.populations = np.ones(n, dtype=float)
        else:
            self.populations = np.asarray(self.populations, dtype=float)
            if self.populations.shape != (n,):
                raise ValueError("populations must have one entry per node")
            if np.any(self.populations < 0):
                raise ValueError("populations must be non-negative")
        if not self.names:
            self.names = [f"site-{i}" for i in range(n)]
        elif len(self.names) != n:
            raise ValueError("names must have one entry per node")
        if self.zones is not None:
            self.zones = np.asarray(self.zones, dtype=np.int64)
            if self.zones.shape != (n,):
                raise ValueError("zones must have one entry per node")
            if np.any(self.zones < 0):
                raise ValueError("zone ids must be non-negative")

    # -- basic queries -----------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return int(self.latency.shape[0])

    def nodes(self) -> range:
        return range(self.num_nodes)

    # -- zones ---------------------------------------------------------------

    @property
    def has_zones(self) -> bool:
        """Whether an explicit failure-zone map was supplied."""
        return self.zones is not None

    def zone_of(self, node: int) -> int:
        """Failure zone of ``node``; without a zone map each node is its own
        zone (no correlation — the uncorrelated-failure default)."""
        if not 0 <= node < self.num_nodes:
            raise IndexError(f"node {node} out of range")
        if self.zones is None:
            return node
        return int(self.zones[node])

    def zones_of(self, nodes) -> set:
        """The set of zones spanned by ``nodes``."""
        return {self.zone_of(int(n)) for n in nodes}

    def zone_nodes(self, zone: int) -> List[int]:
        """All nodes in ``zone`` (singleton ``[zone]`` without a zone map)."""
        if self.zones is None:
            if not 0 <= zone < self.num_nodes:
                raise IndexError(f"zone {zone} out of range")
            return [zone]
        return [int(n) for n in np.flatnonzero(self.zones == zone)]

    @property
    def num_zones(self) -> int:
        """Distinct failure zones (``num_nodes`` without a zone map)."""
        if self.zones is None:
            return self.num_nodes
        return int(np.unique(self.zones).size)

    def dist_matrix(self, threshold_ms: float) -> np.ndarray:
        """The binary ``dist`` matrix of the paper: reachable within ``threshold_ms``.

        ``dist[n][m] == 1`` iff node n can access data on node m within the
        latency threshold.  The diagonal is always 1 (local access).
        """
        if threshold_ms < 0:
            raise ValueError("threshold must be non-negative")
        return (self.latency <= threshold_ms).astype(np.int8)

    def neighbors_within(self, node: int, threshold_ms: float) -> List[int]:
        """Nodes (including ``node`` itself) reachable within the threshold."""
        row = self.latency[node]
        return [m for m in self.nodes() if row[m] <= threshold_ms]

    def latency_order(self) -> np.ndarray:
        """Per-requester node order, nearest first (ties → lowest index).

        ``latency_order()[n]`` lists every node sorted by latency from ``n``
        (``n`` itself first, since the diagonal is zero).  Computed once per
        topology and cached — the simulator's serve path and the deployment
        assignment both consult latency-sorted candidates per request, and
        re-sorting inside those loops dominated their profiles.
        """
        order = getattr(self, "_latency_order", None)
        if order is None:
            # Stable sort ⇒ equal latencies keep ascending node index, the
            # same tie-break closest_node() applies.
            order = np.argsort(self.latency, axis=1, kind="stable")
            self._latency_order = order
        return order

    # -- tree-metric recognition ---------------------------------------------

    def _tree_structure(self):
        """``(is_tree, order, parent, pdist)``, computed once and cached.

        The latency matrix is a *tree metric* iff it equals the path metric
        of some edge-weighted tree on the same nodes.  If such a tree
        exists, the minimum spanning tree of the complete latency graph is
        one (every tree edge is the unique shortest path between its
        endpoints), so: build the MST with Prim from the origin, then
        reconstruct all pairwise path distances incrementally in Prim order
        (each node's row is its parent's row plus the connecting edge) and
        compare against the matrix.  O(n^2) time/space, pure numpy.
        """
        cached = getattr(self, "_tree_cache", None)
        if cached is not None:
            return cached

        lat = np.asarray(self.latency, dtype=float)
        n = self.num_nodes
        root = self.origin
        if n == 1:
            cached = (True, np.array([root]), np.full(1, -1), np.zeros(1))
            self._tree_cache = cached
            return cached
        if not np.all(np.isfinite(lat)):
            cached = (False, None, None, None)
            self._tree_cache = cached
            return cached

        # Prim's algorithm over the dense matrix: `best` holds each
        # unvisited node's cheapest connection into the visited set.
        order = np.empty(n, dtype=np.int64)
        parent = np.full(n, -1, dtype=np.int64)
        pdist = np.zeros(n)
        visited = np.zeros(n, dtype=bool)
        best = lat[root].copy()
        best_from = np.full(n, root, dtype=np.int64)
        visited[root] = True
        order[0] = root
        for step in range(1, n):
            best_masked = np.where(visited, np.inf, best)
            v = int(np.argmin(best_masked))
            visited[v] = True
            order[step] = v
            parent[v] = best_from[v]
            pdist[v] = lat[parent[v], v]
            closer = lat[v] < best
            best = np.where(closer, lat[v], best)
            best_from = np.where(closer, v, best_from)

        # Path metric of the MST, built parent-row-by-parent-row: when node
        # v joins, its distance to every earlier node goes through parent[v].
        tree_dist = np.zeros((n, n))
        for step in range(1, n):
            v = int(order[step])
            prior = order[:step]
            d = tree_dist[parent[v], prior] + pdist[v]
            tree_dist[v, prior] = d
            tree_dist[prior, v] = d

        ok = bool(np.allclose(tree_dist, lat, rtol=1e-9, atol=1e-6))
        cached = (ok, order, parent, pdist) if ok else (False, None, None, None)
        self._tree_cache = cached
        return cached

    def is_tree(self) -> bool:
        """Whether the latency matrix is exactly a tree metric.

        True iff some edge-weighted tree on these nodes reproduces every
        pairwise latency as its unique path length — the structure the
        exact tree-DP solver backend (:mod:`repro.solvers.tree_dp`)
        requires.  Cached with the topology.
        """
        return self._tree_structure()[0]

    def tree_parents(self):
        """``(order, parent, pdist)`` of the underlying tree, rooted at the origin.

        ``order`` lists nodes with every parent before its children (the
        origin first); ``parent[v]`` is v's parent (−1 for the root) and
        ``pdist[v]`` the connecting edge's latency.  Raises ``ValueError``
        when the matrix is not a tree metric (:meth:`is_tree`).
        """
        ok, order, parent, pdist = self._tree_structure()
        if not ok:
            raise ValueError("latency matrix is not a tree metric")
        return order, parent, pdist

    def closest_node(self, node: int, candidates: Sequence[int]) -> int:
        """The candidate with the lowest latency from ``node`` (ties → lowest index).

        Used by the deployment methodology to assign users of closed sites to
        their nearest open node.
        """
        if len(candidates) == 0:
            raise ValueError("candidates must be non-empty")
        if len(candidates) > 4:
            # Walk the precomputed nearest-first order and take the first hit.
            cand = set(int(m) for m in candidates)
            for m in self.latency_order()[node]:
                if int(m) in cand:
                    return int(m)
        best = min(candidates, key=lambda m: (self.latency[node][m], m))
        return int(best)

    # -- liveness / degradation masks ----------------------------------------

    def degraded_latency(self, degradations: dict) -> np.ndarray:
        """Latency matrix under symmetric per-link degradations.

        ``degradations`` maps ``(a, b)`` pairs (any order) to multiplicative
        factors; ``inf`` partitions the link.  Used by the fault-injection
        runtime to mask misbehaving links out of routing decisions.
        """
        out = self.latency.astype(float).copy()
        for (a, b), factor in degradations.items():
            if not 0 <= a < self.num_nodes or not 0 <= b < self.num_nodes:
                raise IndexError(f"link ({a}, {b}) out of range")
            if not factor >= 1.0:
                raise ValueError(f"degradation factor must be >= 1, got {factor}")
            # inf * 0 would be NaN for co-located sites; partition explicitly.
            out[a][b] = np.inf if np.isinf(factor) else out[a][b] * factor
            out[b][a] = out[a][b]
        return out

    def liveness_mask(self, alive: Sequence[bool]) -> np.ndarray:
        """Boolean ``(n, n)`` matrix: True where both endpoints are alive."""
        alive = np.asarray(alive, dtype=bool)
        if alive.shape != (self.num_nodes,):
            raise ValueError("alive must have one entry per node")
        return np.outer(alive, alive)

    # -- derived topologies --------------------------------------------------

    def restrict(self, keep: Sequence[int]) -> "Topology":
        """A sub-topology over the ``keep`` nodes (order preserved).

        The origin is remapped if kept; otherwise the first kept node becomes
        the origin (callers that care should keep the origin explicitly).
        """
        keep = list(dict.fromkeys(int(k) for k in keep))
        if not keep:
            raise ValueError("keep must be non-empty")
        for k in keep:
            if not 0 <= k < self.num_nodes:
                raise IndexError(f"node {k} out of range")
        idx = np.array(keep)
        new_origin = keep.index(self.origin) if self.origin in keep else 0
        return Topology(
            latency=self.latency[np.ix_(idx, idx)].copy(),
            origin=new_origin,
            populations=self.populations[idx].copy(),
            names=[self.names[k] for k in keep],
            zones=self.zones[idx].copy() if self.zones is not None else None,
        )

    def diameter_ms(self) -> float:
        """Largest pairwise latency."""
        return float(self.latency.max())

    def __repr__(self) -> str:
        return (
            f"Topology(nodes={self.num_nodes}, origin={self.origin}, "
            f"diameter={self.diameter_ms():.0f}ms)"
        )
