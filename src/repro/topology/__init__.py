"""Network-topology substrate.

The paper's case study runs on a 20-node AS-level topology (Telstra-derived)
where a single AS hop costs 100–200 ms, one node is the corporate data center
(origin) holding all objects, and user populations are unevenly spread across
sites.  This package builds equivalent synthetic topologies and exposes
exactly what the MC-PERF formulation consumes:

* a full pairwise latency matrix (shortest path over hop latencies), and
* the binary ``dist`` reachability matrix at a latency threshold.
"""

from repro.topology.graph import Topology
from repro.topology.generators import (
    as_level_topology,
    grid_topology,
    line_topology,
    ring_topology,
    star_topology,
    topology_from_edges,
    tree_topology,
)
from repro.topology.latency import (
    exponential_latency,
    uniform_latency,
)
from repro.topology.io import topology_from_dict, topology_to_dict
from repro.topology.zones import (
    parse_zones,
    round_robin_zones,
    validate_zone_map,
    zone_map_or_none,
)

__all__ = [
    "Topology",
    "parse_zones",
    "round_robin_zones",
    "validate_zone_map",
    "zone_map_or_none",
    "as_level_topology",
    "star_topology",
    "topology_from_edges",
    "line_topology",
    "ring_topology",
    "grid_topology",
    "tree_topology",
    "uniform_latency",
    "exponential_latency",
    "topology_to_dict",
    "topology_from_dict",
]
