"""Topology serialization (JSON-compatible dicts).

Lets experiments pin down the exact topology used for a figure, and lets
users bring their own measured latency matrices.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.topology.graph import Topology

_FORMAT_VERSION = 1


def topology_to_dict(topo: Topology) -> dict:
    """A JSON-serializable representation of a topology."""
    return {
        "version": _FORMAT_VERSION,
        "latency": topo.latency.tolist(),
        "origin": topo.origin,
        "populations": topo.populations.tolist(),
        "names": list(topo.names),
    }


def topology_from_dict(data: dict) -> Topology:
    """Rebuild a topology from :func:`topology_to_dict` output."""
    version = data.get("version", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported topology format version: {version}")
    return Topology(
        latency=np.asarray(data["latency"], dtype=float),
        origin=int(data["origin"]),
        populations=np.asarray(data["populations"], dtype=float),
        names=list(data.get("names", [])),
    )


def save_topology(topo: Topology, path: Union[str, Path]) -> None:
    """Write a topology to a JSON file."""
    Path(path).write_text(json.dumps(topology_to_dict(topo), indent=2))


def load_topology(path: Union[str, Path]) -> Topology:
    """Read a topology from a JSON file."""
    return topology_from_dict(json.loads(Path(path).read_text()))
