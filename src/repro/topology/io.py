"""Topology serialization (JSON-compatible dicts).

Lets experiments pin down the exact topology used for a figure, and lets
users bring their own measured latency matrices.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import ValidationError
from repro.topology.graph import Topology

_FORMAT_VERSION = 1


def topology_to_dict(topo: Topology) -> dict:
    """A JSON-serializable representation of a topology."""
    data = {
        "version": _FORMAT_VERSION,
        "latency": topo.latency.tolist(),
        "origin": topo.origin,
        "populations": topo.populations.tolist(),
        "names": list(topo.names),
    }
    if topo.zones is not None:
        data["zones"] = topo.zones.tolist()
    return data


def topology_from_dict(data: dict) -> Topology:
    """Rebuild a topology from :func:`topology_to_dict` output.

    Raises :class:`~repro.errors.ValidationError` on NaN/±inf latencies or
    populations: a NaN latency compares False against every threshold, so it
    would silently drop coverage terms from QoS constraint rows instead of
    failing loudly at load time.
    """
    version = data.get("version", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported topology format version: {version}")
    latency = np.asarray(data["latency"], dtype=float)
    if not np.isfinite(latency).all():
        i, j = (int(x) for x in np.argwhere(~np.isfinite(latency))[0])
        raise ValidationError(
            f"topology latency[{i},{j}] = {latency[i, j]!r}: latencies must "
            "be finite (a NaN/inf entry silently poisons QoS constraint rows)"
        )
    if (latency < 0).any():
        i, j = (int(x) for x in np.argwhere(latency < 0)[0])
        raise ValidationError(
            f"topology latency[{i},{j}] = {latency[i, j]!r}: latencies must "
            "be non-negative"
        )
    populations = np.asarray(data["populations"], dtype=float)
    if not np.isfinite(populations).all() or (populations < 0).any():
        idx = int(
            np.argwhere(~np.isfinite(populations) | (populations < 0))[0][0]
        )
        raise ValidationError(
            f"topology population[{idx}] = {populations[idx]!r}: populations "
            "must be finite and non-negative"
        )
    zones = data.get("zones")
    if zones is not None:
        from repro.topology.zones import validate_zone_map

        zones = validate_zone_map(zones, latency.shape[0])
    return Topology(
        latency=latency,
        origin=int(data["origin"]),
        populations=populations,
        names=list(data.get("names", [])),
        zones=zones,
    )


def save_topology(topo: Topology, path: Union[str, Path]) -> None:
    """Write a topology to a JSON file."""
    Path(path).write_text(json.dumps(topology_to_dict(topo), indent=2))


def load_topology(path: Union[str, Path]) -> Topology:
    """Read a topology from a JSON file."""
    return topology_from_dict(json.loads(Path(path).read_text()))
