"""Failure-zone maps: parsing, validation and generation.

A zone map assigns every node a failure-correlation domain (a region, a
rack, a power feed).  Zone-aware fault generators
(:func:`repro.faults.generators.zone_outages`) crash whole zones together
and zone-aware healing (:class:`repro.faults.healing.HealingPolicy` with
``min_unique_zones``) spreads replicas across zones so one domain failure
cannot take out every copy.

The CLI accepts zone maps in two spellings (``--zones``):

* an integer ``K`` — nodes are striped round-robin into K zones
  (``node % K``), the conventional quick-start layout;
* explicit groups ``0+1+2;3+4;5`` — semicolon-separated zones, ``+``-joined
  node ids; every node must appear exactly once.

Both are validated with :class:`~repro.errors.ValidationError` against the
concrete topology size, matching the loader-validation pattern of the
topology/trace readers.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import ValidationError


def validate_zone_map(zones: Sequence[int], num_nodes: int) -> np.ndarray:
    """Check a per-node zone array against a topology size.

    Enforces the loader contract: one entry per node, integral non-negative
    ids.  Returns the normalized ``int64`` array.  Raises
    :class:`~repro.errors.ValidationError` on any violation so malformed
    zone maps are rejected before they can poison fault generation or
    healing decisions.
    """
    arr = np.asarray(zones)
    if arr.ndim != 1 or arr.shape[0] != num_nodes:
        raise ValidationError(
            f"zone map has {arr.shape[0] if arr.ndim == 1 else arr.shape} "
            f"entries; need exactly one per node ({num_nodes})"
        )
    if arr.dtype.kind == "f":
        if not np.isfinite(arr).all() or np.any(arr != np.trunc(arr)):
            bad = int(np.flatnonzero(~np.isfinite(arr) | (arr != np.trunc(arr)))[0])
            raise ValidationError(
                f"zone map entry [{bad}] = {arr[bad]!r}: zone ids must be integers"
            )
    elif arr.dtype.kind not in "iu":
        raise ValidationError(f"zone map dtype {arr.dtype} is not integral")
    arr = arr.astype(np.int64)
    if np.any(arr < 0):
        bad = int(np.flatnonzero(arr < 0)[0])
        raise ValidationError(
            f"zone map entry [{bad}] = {arr[bad]}: zone ids must be non-negative"
        )
    return arr


def round_robin_zones(num_nodes: int, num_zones: int) -> np.ndarray:
    """Stripe nodes into ``num_zones`` zones (``node % num_zones``)."""
    if num_nodes <= 0:
        raise ValidationError("num_nodes must be positive")
    if not 1 <= num_zones <= num_nodes:
        raise ValidationError(
            f"num_zones must be in [1, {num_nodes}], got {num_zones}"
        )
    return np.arange(num_nodes, dtype=np.int64) % num_zones


def parse_zones(spec: Union[str, int], num_nodes: int) -> np.ndarray:
    """Parse a CLI ``--zones`` spec into a validated per-node zone array.

    ``spec`` is either an integer zone count (round-robin striping) or
    explicit ``;``-separated groups of ``+``-joined node ids covering every
    node exactly once, e.g. ``"0+1+2;3+4;5"``.
    """
    if isinstance(spec, int):
        return round_robin_zones(num_nodes, spec)
    text = spec.strip()
    if not text:
        raise ValidationError("empty zone spec")
    try:
        return round_robin_zones(num_nodes, int(text))
    except ValueError:
        pass  # not a bare integer: explicit groups
    zones = np.full(num_nodes, -1, dtype=np.int64)
    for zid, group in enumerate(text.split(";")):
        group = group.strip()
        if not group:
            raise ValidationError(f"empty zone group in spec {spec!r}")
        for item in group.split("+"):
            try:
                node = int(item)
            except ValueError:
                raise ValidationError(
                    f"malformed node id {item!r} in zone spec {spec!r}"
                ) from None
            if not 0 <= node < num_nodes:
                raise ValidationError(
                    f"zone spec node {node} out of range for {num_nodes} nodes"
                )
            if zones[node] != -1:
                raise ValidationError(
                    f"node {node} appears in more than one zone in spec {spec!r}"
                )
            zones[node] = zid
    uncovered = np.flatnonzero(zones == -1)
    if uncovered.size:
        raise ValidationError(
            f"zone spec {spec!r} does not cover node(s) "
            f"{[int(n) for n in uncovered]}: zones must cover all nodes"
        )
    return zones


def zone_map_or_none(
    spec: Optional[Union[str, int]], num_nodes: int
) -> Optional[np.ndarray]:
    """``parse_zones`` that passes ``None`` through (no zone information)."""
    if spec is None:
        return None
    return parse_zones(spec, num_nodes)
