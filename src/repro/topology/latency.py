"""Link-latency models.

The paper assigns each AS-level hop a latency of 100–200 ms.  These helpers
draw per-link latencies; generators attach them to graph edges before the
shortest-path latency matrix is computed.
"""

from __future__ import annotations

import numpy as np


def uniform_latency(rng: np.random.Generator, low: float = 100.0, high: float = 200.0) -> float:
    """A latency drawn uniformly from ``[low, high]`` milliseconds (paper default)."""
    if low < 0 or high < low:
        raise ValueError("require 0 <= low <= high")
    return float(rng.uniform(low, high))


def exponential_latency(rng: np.random.Generator, mean: float = 150.0, floor: float = 10.0) -> float:
    """A heavy-tailed latency: ``floor + Exp(mean - floor)`` milliseconds.

    Useful for sensitivity experiments where some links are much slower than
    the paper's uniform 100–200 ms band.
    """
    if mean <= floor:
        raise ValueError("mean must exceed floor")
    return float(floor + rng.exponential(mean - floor))
