"""JSON-serialization helpers shared by the result types.

The experiment-runner layer (:mod:`repro.runner`) persists results to disk —
the content-addressed cache and the per-run artifact directories — so the
result dataclasses (:class:`~repro.core.bounds.LowerBoundResult`,
:class:`~repro.analysis.sweep.SweepResult`,
:class:`~repro.lp.solution.LPSolution`,
:class:`~repro.simulator.engine.SimulationResult`) carry ``to_dict`` /
``from_dict`` round-trips.  This module holds the two conversions they all
need: numpy arrays and the heterogeneous goal-scope keys
(ints, strings and tuples like ``("k", 3)``) that JSON cannot express as
dictionary keys.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np


def array_to_jsonable(arr: Optional[np.ndarray]) -> Optional[Dict[str, Any]]:
    """Encode an ndarray as ``{"dtype", "shape", "data"}`` (None passes through)."""
    if arr is None:
        return None
    arr = np.asarray(arr)
    return {
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
        "data": arr.ravel().tolist(),
    }


def array_from_jsonable(payload: Optional[Dict[str, Any]]) -> Optional[np.ndarray]:
    """Decode :func:`array_to_jsonable` output back into an ndarray."""
    if payload is None:
        return None
    return np.array(payload["data"], dtype=np.dtype(payload["dtype"])).reshape(
        payload["shape"]
    )


def scope_items_to_jsonable(mapping: Dict[object, float]) -> List[List[Any]]:
    """Encode a scope-keyed mapping as ``[key, value]`` pairs.

    Goal-scope keys are ints, the string ``"all"`` or tuples; tuples become
    lists in JSON and are restored by :func:`scope_items_from_jsonable`.
    """
    return [[list(k) if isinstance(k, tuple) else k, float(v)] for k, v in mapping.items()]


def scope_items_from_jsonable(pairs: List[List[Any]]) -> Dict[object, float]:
    """Decode :func:`scope_items_to_jsonable` output (lists back to tuples)."""
    return {tuple(k) if isinstance(k, list) else k: float(v) for k, v in pairs}


def optional_float(value: Any) -> Optional[float]:
    return None if value is None else float(value)


def json_key_pairs(mapping: Dict[int, float]) -> Dict[str, float]:
    """Int-keyed mapping to string keys (JSON object keys must be strings)."""
    return {str(k): float(v) for k, v in mapping.items()}


def int_key_pairs(mapping: Dict[str, Any]) -> Dict[int, float]:
    """Inverse of :func:`json_key_pairs`."""
    return {int(k): float(v) for k, v in mapping.items()}
