"""Closed-loop load generator with zero-silent-loss accounting.

``workers`` threads each run a closed loop — issue a request, wait for its
outcome, issue the next — against a running placement service.  Closed
loops are the honest way to drive a service you are also crash-testing:
an open loop (fixed arrival rate) conflates server slowness with client
backlog, while a closed loop's throughput *is* the service's sustainable
rate at that concurrency.

The invariant the benchmark and CI smoke assert on: **every request is
accounted**.  ``issued == ok + shed + stale + errors + connection_errors +
timeouts``, checked by :meth:`LoadReport.accounted`.  A dropped connection
(chaos ``drop``) is a *connection error* — visible, counted — never a gap
in a histogram.  ``lost`` exists only to make the invariant's violation
impossible to miss: it is computed, asserted zero, and reported.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.service.client import ServiceClient, ServiceConnectionError


@dataclass
class LoadReport:
    """Aggregate outcome of one load run."""

    duration_s: float = 0.0
    issued: int = 0
    ok: int = 0
    shed: int = 0  # 429: admission rejected, Retry-After honoured
    stale: int = 0  # 200 with stale=true: breaker-degraded answers
    unready: int = 0  # 503: not ready / circuit open with no LKG
    errors: int = 0  # other non-2xx (400/404/500/504)
    connection_errors: int = 0  # refused / reset / chaos-dropped
    timeouts: int = 0
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def accounted(self) -> int:
        return (
            self.ok
            + self.shed
            + self.stale
            + self.unready
            + self.errors
            + self.connection_errors
            + self.timeouts
        )

    @property
    def lost(self) -> int:
        """Requests issued but never accounted — must always be zero."""
        return self.issued - self.accounted

    @property
    def qps(self) -> float:
        return 0.0 if self.duration_s <= 0 else self.accounted / self.duration_s

    def latency_percentile(self, pct: float) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def merge(self, other: "LoadReport") -> None:
        self.issued += other.issued
        self.ok += other.ok
        self.shed += other.shed
        self.stale += other.stale
        self.unready += other.unready
        self.errors += other.errors
        self.connection_errors += other.connection_errors
        self.timeouts += other.timeouts
        self.latencies_ms.extend(other.latencies_ms)

    def to_dict(self) -> Dict[str, object]:
        return {
            "duration_s": self.duration_s,
            "issued": self.issued,
            "ok": self.ok,
            "shed": self.shed,
            "stale": self.stale,
            "unready": self.unready,
            "errors": self.errors,
            "connection_errors": self.connection_errors,
            "timeouts": self.timeouts,
            "lost": self.lost,
            "qps": self.qps,
            "latency_ms": {
                "p50": self.latency_percentile(50),
                "p90": self.latency_percentile(90),
                "p99": self.latency_percentile(99),
                "max": max(self.latencies_ms, default=0.0),
            },
        }


#: Default query mix: mostly cheap placement/cost lookups, some expensive
#: bound solves — enough pressure to exercise admission without making the
#: whole run solver-bound.
DEFAULT_MIX: Sequence[Dict[str, object]] = (
    {"kind": "placement"},
    {"kind": "placement"},
    {"kind": "cost"},
    {"kind": "bound", "class": "general", "qos": 0.9},
)


def _worker(
    client: ServiceClient,
    mix: Sequence[Dict[str, object]],
    stop_at: float,
    seed: int,
    report: LoadReport,
) -> None:
    rng = random.Random(seed)
    while time.monotonic() < stop_at:
        query = dict(mix[rng.randrange(len(mix))])
        report.issued += 1
        t0 = time.perf_counter()
        try:
            response = client.query(**query)
        except socket.timeout:
            report.timeouts += 1
            continue
        except (ServiceConnectionError, OSError):
            report.connection_errors += 1
            continue
        report.latencies_ms.append((time.perf_counter() - t0) * 1000.0)
        if response.status == 429:
            report.shed += 1
            time.sleep(min(response.retry_after_s or 0.05, 0.5))
        elif response.status == 503:
            report.unready += 1
        elif response.ok and response.payload.get("stale"):
            report.stale += 1
        elif response.ok:
            report.ok += 1
        else:
            report.errors += 1


def run_load(
    host: str,
    port: int,
    *,
    duration_s: float = 5.0,
    workers: int = 4,
    mix: Optional[Sequence[Dict[str, object]]] = None,
    timeout_s: float = 10.0,
    seed: int = 0,
) -> LoadReport:
    """Drive the service for ``duration_s`` and return the merged report.

    Per-worker reports are merged only after every thread joins, so the
    totals are exact — the accounting invariant is checkable, not
    statistical.
    """
    mix = tuple(mix) if mix else DEFAULT_MIX
    stop_at = time.monotonic() + duration_s
    reports = [LoadReport() for _ in range(workers)]
    threads = [
        threading.Thread(
            target=_worker,
            args=(
                ServiceClient(host, port, timeout_s=timeout_s),
                mix,
                stop_at,
                seed + i,
                reports[i],
            ),
            daemon=True,
        )
        for i in range(workers)
    ]
    t0 = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        # Generous slack over the nominal duration: a worker can be blocked
        # in one last in-flight request for up to its client timeout.
        thread.join(duration_s + timeout_s + 30.0)
    total = LoadReport(duration_s=time.monotonic() - t0)
    for report in reports:
        total.merge(report)
    return total
