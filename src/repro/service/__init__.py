"""Placement-as-a-service: query front-end + supervised placement daemon.

The batch pipeline answers "where should object X live / what does class C
cost" once per invocation and forgets everything when the process exits.
This package keeps answering — robustness-first:

* :mod:`repro.service.server` — a stdlib-asyncio HTTP/JSON endpoint serving
  placement / bound / cost queries against the daemon's live state, with
  single-flight request coalescing, per-request deadlines and an in-memory
  result cache keyed by the runner's content digests;
* :mod:`repro.service.daemon` — the continuous-placement epoch loop
  (:mod:`repro.simulator.continuous`) wrapped in a supervisor with a
  write-ahead journal + atomic snapshots (:mod:`repro.service.checkpoint`),
  so a ``kill -9`` mid-epoch restarts from the last epoch boundary and
  converges to the same placements an uninterrupted run produces;
* :mod:`repro.service.admission` / :mod:`repro.service.breaker` — overload
  and failure hardening: a bounded admission queue shedding load with
  429-style rejections, and a circuit breaker around the solver tier
  (:mod:`repro.solvers.registry`) that trips on repeated timeouts and
  degrades to serving last-known-good answers marked ``stale``;
* :mod:`repro.service.brownout` — tiered overload adaptation above the
  admission queue: past a pressure threshold bound solves degrade to a
  cheap approximation (``approx: true``), and shed requests are answered
  from a TTL-bounded last-known-good store before the 429 goes out;
* :mod:`repro.service.chaos` — deterministic ``REPRO_SERVICE_CHAOS`` fault
  injection (dropped connections, slow solves, crash-on-checkpoint, torn
  checkpoints), one injector of the unified :mod:`repro.chaos` plan
  grammar, so every recovery path is testable;
* :mod:`repro.service.loadgen` — a closed-loop load generator (used by
  ``benchmarks/test_service_load.py`` and CI's service-smoke job) that
  accounts for every request it issues, so a silently dropped response is
  a hard failure, not a gap in a histogram.

Entry point: ``repro serve`` (see :mod:`repro.cli`); docs in
``docs/SERVICE.md``.
"""

from __future__ import annotations

from repro.service.admission import AdmissionQueue, QueueFullError
from repro.service.breaker import BreakerOpenError, CircuitBreaker
from repro.service.brownout import BrownoutController
from repro.service.chaos import SERVICE_CHAOS_ENV, ServiceChaos, parse_service_chaos
from repro.service.checkpoint import CheckpointStore
from repro.service.client import ServiceClient
from repro.service.daemon import PlacementDaemon, Supervisor
from repro.service.loadgen import run_load
from repro.service.server import PlacementService

__all__ = [
    "AdmissionQueue",
    "BreakerOpenError",
    "BrownoutController",
    "CheckpointStore",
    "CircuitBreaker",
    "PlacementDaemon",
    "PlacementService",
    "QueueFullError",
    "SERVICE_CHAOS_ENV",
    "ServiceChaos",
    "ServiceClient",
    "Supervisor",
    "parse_service_chaos",
    "run_load",
]
