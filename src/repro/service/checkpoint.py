"""Crash-consistent persistence for the placement daemon's epoch state.

The daemon checkpoints at epoch boundaries only — ``ContinuousState`` is
the entire inter-epoch carry, and the per-epoch inputs (drifted traces,
fault slices) are deterministic in the task's seeds — so recovery is:
restore the newest durable state, replay the interrupted epoch, converge
byte-identically with the uninterrupted run.

Two files under the state directory make that durable:

``journal.jsonl``
    A write-ahead journal: one JSON record per completed epoch, appended
    with an fsync before the daemon considers the epoch durable.  A crash
    mid-append leaves at most one torn *tail* line, which recovery skips.

``snapshot.json``
    A full-state snapshot rewritten every ``snapshot_every`` epochs via
    the mkstemp + ``os.replace`` idiom (same as
    :class:`repro.runner.cache.ResultCache`), after which the journal is
    truncated.  This bounds both journal growth and recovery time without
    ever leaving a window where neither file holds the newest state: the
    snapshot is durable *before* the journal shrinks.

Every record embeds the owning task's content digest
(:meth:`~repro.runner.tasks.ContinuousTask.cache_key`).  Recovery refuses
state written by a different configuration — resuming epoch 5 of someone
else's run is strictly worse than failing loudly.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

from repro.simulator.continuous import ContinuousState

#: Bumped when the record layout changes; recovery skips alien schemas.
SCHEMA_VERSION = 1

JOURNAL_NAME = "journal.jsonl"
SNAPSHOT_NAME = "snapshot.json"


class CheckpointMismatchError(RuntimeError):
    """The state directory holds checkpoints from a different task config."""


class CheckpointStore:
    """Journal + snapshot persistence for one daemon's ``ContinuousState``."""

    def __init__(self, root: Path, task_digest: str, snapshot_every: int = 4):
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.task_digest = task_digest
        self.snapshot_every = snapshot_every
        self.journal_path = self.root / JOURNAL_NAME
        self.snapshot_path = self.root / SNAPSHOT_NAME

    # -- write path ----------------------------------------------------------

    def _encode(self, state: ContinuousState) -> Dict[str, object]:
        return {
            "schema": SCHEMA_VERSION,
            "task": self.task_digest,
            "index": state.index,
            "state": state.to_dict(),
        }

    def append(self, state: ContinuousState) -> None:
        """Journal one completed epoch; durable (fsynced) before returning."""
        line = json.dumps(self._encode(state), sort_keys=True)
        with open(self.journal_path, "a") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def snapshot(self, state: ContinuousState) -> None:
        """Atomically rewrite the snapshot, then truncate the journal.

        Order matters: the snapshot must be durable before the journal
        shrinks, or a crash between the two would lose the newest state.
        """
        payload = json.dumps(self._encode(state), sort_keys=True, indent=2)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.snapshot_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with open(self.journal_path, "w") as fh:
            fh.flush()
            os.fsync(fh.fileno())

    def checkpoint(self, state: ContinuousState) -> str:
        """Persist one epoch boundary: always journal, snapshot on schedule.

        Returns ``"journal"`` or ``"snapshot"`` for observability.
        """
        self.append(state)
        if state.index % self.snapshot_every == 0:
            self.snapshot(state)
            return "snapshot"
        return "journal"

    # -- fault injection (chaos campaigns) -----------------------------------

    def corrupt_tail(self) -> bool:
        """Tear the newest journal record in place; True if bytes changed.

        Cuts the final record roughly in half with no trailing newline —
        the shape a crash mid-append (or a disk that lied about the fsync)
        actually leaves behind.  Recovery must stop at the torn line and
        replay from the last intact state.
        """
        try:
            data = self.journal_path.read_bytes()
        except (OSError, FileNotFoundError):
            return False
        stripped = data.rstrip(b"\n")
        if not stripped:
            return False
        start = stripped.rfind(b"\n") + 1
        last = stripped[start:]
        torn = stripped[:start] + last[: max(1, len(last) // 2)]
        with open(self.journal_path, "wb") as fh:
            fh.write(torn)
            fh.flush()
            os.fsync(fh.fileno())
        return True

    def corrupt_snapshot(self) -> bool:
        """Garble the snapshot file in place; True if bytes changed.

        Models bit-rot discovered at read time: the file exists but no
        longer parses, so recovery must fall back to the journal.
        """
        try:
            data = self.snapshot_path.read_bytes()
        except (OSError, FileNotFoundError):
            return False
        garbled = b"\x00corrupt\x00" + data[: len(data) // 2]
        with open(self.snapshot_path, "wb") as fh:
            fh.write(garbled)
            fh.flush()
            os.fsync(fh.fileno())
        return True

    # -- read path -----------------------------------------------------------

    def _decode(self, payload: Dict[str, object], where: str) -> Optional[ContinuousState]:
        if payload.get("schema") != SCHEMA_VERSION:
            return None
        if payload.get("task") != self.task_digest:
            raise CheckpointMismatchError(
                f"{where} was written by task {str(payload.get('task'))[:12]!r}, "
                f"this daemon runs {self.task_digest[:12]!r} — refusing to resume "
                "someone else's run (move or remove the state directory)"
            )
        return ContinuousState.from_dict(payload["state"])

    def _journal_states(self) -> List[ContinuousState]:
        states, _ = self._scan_journal()
        return states

    def _scan_journal(self) -> tuple:
        """Parse the journal; returns ``(states, intact_byte_length)``.

        ``intact_byte_length`` is where the durable prefix ends — the
        offset past the last newline-terminated, parseable record.  A torn
        tail from a crash mid-append sits beyond it; everything durable
        precedes it, so scanning stops there rather than guessing.
        """
        states: List[ContinuousState] = []
        try:
            raw = self.journal_path.read_bytes()
        except (OSError, FileNotFoundError):
            return states, 0
        pos = 0
        intact = 0
        while pos < len(raw):
            newline = raw.find(b"\n", pos)
            if newline == -1:
                break  # unterminated tail: the record never became durable
            line = raw[pos:newline].strip()
            pos = newline + 1
            if line:
                try:
                    payload = json.loads(line)
                    state = self._decode(payload, where=str(self.journal_path))
                except CheckpointMismatchError:
                    raise
                except Exception:
                    break
                if state is not None:
                    states.append(state)
            intact = pos
        return states, intact

    def _repair_journal(self, intact: int) -> None:
        """Truncate the journal to its durable prefix.

        Run at recovery time, before the daemon appends anything: a torn
        tail left in place would otherwise merge with the next append into
        one unparseable line, silently orphaning every record after it
        until a snapshot truncates the file.
        """
        try:
            size = os.path.getsize(self.journal_path)
        except OSError:
            return
        if intact >= size:
            return
        with open(self.journal_path, "rb+") as fh:
            fh.truncate(intact)
            fh.flush()
            os.fsync(fh.fileno())

    def _snapshot_state(self) -> Optional[ContinuousState]:
        try:
            payload = json.loads(self.snapshot_path.read_text())
        except (OSError, FileNotFoundError, json.JSONDecodeError):
            # A torn snapshot can only mean a crash before os.replace —
            # the journal still carries the truth.
            return None
        try:
            return self._decode(payload, where=str(self.snapshot_path))
        except CheckpointMismatchError:
            raise
        except Exception:
            return None

    def recover(self) -> Optional[ContinuousState]:
        """The newest durable state, or None for a cold start.

        Takes whichever of snapshot / journal reaches the higher epoch
        index — after a crash between journal append and snapshot rewrite
        the journal is ahead; after a clean snapshot the (truncated)
        journal is behind.  Also repairs the journal in place: a torn tail
        is truncated away so subsequent appends start on a clean line.
        """
        candidates, intact = self._scan_journal()
        self._repair_journal(intact)
        snap = self._snapshot_state()
        if snap is not None:
            candidates.append(snap)
        if not candidates:
            return None
        return max(candidates, key=lambda s: s.index)

    def status(self) -> Dict[str, object]:
        """JSON-safe snapshot for ``/stats`` and ``repro serve`` logs."""
        journal_records = 0
        if self.journal_path.exists():
            journal_records = sum(
                1 for line in self.journal_path.read_text().splitlines() if line.strip()
            )
        return {
            "root": str(self.root),
            "task": self.task_digest,
            "snapshot_every": self.snapshot_every,
            "journal_records": journal_records,
            "has_snapshot": self.snapshot_path.exists(),
        }
