"""Circuit breaker around the solver tier.

A placement service that re-solves an LP per query dies the moment the
solver tier degrades: every request queues behind a hung solve, the
admission queue fills, and the cheap queries (placement lookups, health
probes) starve behind the expensive ones.  The breaker cuts that failure
mode off:

* **closed** — solves flow; consecutive failures (timeouts, solver
  crashes) are counted;
* **open** — after ``failure_threshold`` consecutive failures the breaker
  trips: solver dispatches fail *immediately* with
  :class:`BreakerOpenError` and the service answers from its
  last-known-good results marked ``stale=true`` instead of erroring;
* **half-open** — after ``cooldown_s`` one probe solve is allowed through;
  success closes the breaker, failure re-opens it and re-arms the
  cooldown.

The service installs :meth:`CircuitBreaker.guard` as the solver registry's
dispatch guard (:func:`repro.solvers.registry.install_solve_guard`), so
every LP solve in the process — query-driven or daemon-driven — feeds the
same failure accounting and is refused fast while the breaker is open.

Thread-safe: solves run on executor threads while the asyncio loop checks
state.  The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

from repro.perf import PERF

#: Breaker states (exposed via :attr:`CircuitBreaker.state` and /stats).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class BreakerOpenError(RuntimeError):
    """Raised instead of dispatching a solve while the breaker is open."""


class CircuitBreaker:
    """Trip after consecutive solver failures; recover via half-open probes."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.trips = 0
        self.successes = 0
        self.failures_total = 0
        self.refused = 0

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._peek()

    def _peek(self) -> str:
        """Current state under the lock, promoting open -> half-open."""
        if self._state == OPEN and self._clock() - self._opened_at >= self.cooldown_s:
            self._state = HALF_OPEN
            self._probing = False
        return self._state

    @property
    def is_open(self) -> bool:
        return self.state == OPEN

    def allow(self) -> bool:
        """Whether a solve may be dispatched right now.

        In half-open state exactly one caller wins the probe slot; everyone
        else keeps being refused until the probe settles.
        """
        with self._lock:
            state = self._peek()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and not self._probing:
                self._probing = True
                return True
            self.refused += 1
            return False

    # -- accounting ----------------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probing = False
            self.successes += 1
            if self._state != CLOSED:
                self._state = CLOSED

    def record_failure(self) -> None:
        with self._lock:
            self.failures_total += 1
            self._probing = False
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open, cooldown re-armed.
                self._trip()
                return
            self._failures += 1
            if self._state == CLOSED and self._failures >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._failures = 0
        self.trips += 1
        PERF.count("service.breaker.trip")

    # -- call wrappers -------------------------------------------------------

    def call(self, fn: Callable[[], object]) -> object:
        """Run ``fn`` under breaker accounting; refuse fast when open."""
        if not self.allow():
            raise BreakerOpenError(
                f"solver circuit open (cooldown {self.cooldown_s:g}s)"
            )
        try:
            result = fn()
        except BaseException:
            self.record_failure()
            raise
        self.record_success()
        return result

    def guard(self, backend: str, thunk: Callable[[], object]) -> object:
        """Adapter matching :func:`repro.solvers.registry.install_solve_guard`."""
        return self.call(thunk)

    def status(self) -> Dict[str, object]:
        """JSON-safe snapshot for ``/stats``."""
        return {
            "state": self.state,
            "failure_threshold": self.failure_threshold,
            "cooldown_s": self.cooldown_s,
            "trips": self.trips,
            "successes": self.successes,
            "failures": self.failures_total,
            "refused": self.refused,
        }
