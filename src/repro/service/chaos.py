"""Deterministic fault injection for the placement service.

Every recovery path the service claims to have must be drivable from a
test, so the failure modes are injected, not hoped for.  Injection is
configured by the ``REPRO_SERVICE_CHAOS`` environment variable (or the
``--chaos`` flag), which accepts both grammars:

* the legacy comma grammar::

      REPRO_SERVICE_CHAOS="drop=0.1,slow=0.5,slow_ms=200,seed=7"
      REPRO_SERVICE_CHAOS="crash_at_epoch=2"
      REPRO_SERVICE_CHAOS="crash_checkpoint_at=3"

* unified chaos-plan clauses (:mod:`repro.chaos`), restricted to the
  service/checkpoint layers::

      REPRO_SERVICE_CHAOS="drop:p=0.1,seed=7;slow:p=0.5,ms=200"
      REPRO_SERVICE_CHAOS="crash:epoch=2;corrupt_checkpoint:at=1"

Both parse through one :class:`~repro.chaos.plan.ChaosPlan`
(:func:`repro.chaos.plan.plan_from_service_env`), so a spec that works
here composes unchanged into a ``repro chaos`` campaign.

Injection sites:

``drop`` / ``slow``
    Probabilistic connection drops and solve slowdowns (optionally
    windowed to an epoch range with ``epochs=a-b`` in plan grammar).  A
    dropped connection must surface to clients as a connection error,
    never a hang; a slowdown sleeps ``slow_ms`` inside the solver tier.
``crash:epoch=<n>`` (legacy ``crash_at_epoch``)
    ``os._exit`` while epoch ``n`` is being computed, *before* its journal
    record is written — the "kill -9 mid-epoch" case; recovery replays
    epoch ``n`` from the previous boundary.
``crash:checkpoint=<n>`` (legacy ``crash_checkpoint_at``)
    ``os._exit`` after epoch ``n``'s journal append but *before* the
    snapshot is rewritten — the torn-checkpoint case; recovery must take
    the journal record over the stale snapshot.
``corrupt_checkpoint:at=<n>[,mode=tail|snapshot]``
    Garble epoch ``n``'s durable bytes without crashing: ``tail`` tears
    the just-appended journal record (a disk that lied about the fsync),
    ``snapshot`` garbles the snapshot file after its rewrite.  Recovery
    must skip the damage and replay — byte-identical convergence is the
    invariant the chaos campaign asserts.

All probabilistic draws are a SHA-256 of ``(seed, site, counter)``
(:func:`repro.chaos.plan.chaos_draw`), so a run with a fixed seed injects
the same faults every time.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.chaos.plan import chaos_draw, plan_from_service_env

#: Environment hook configuring service-level fault injection.
SERVICE_CHAOS_ENV = "REPRO_SERVICE_CHAOS"

#: Exit status used by injected crashes, distinguishable from SIGKILL's 137
#: so tests can tell an injected crash from an external kill.
CHAOS_EXIT_CODE = 57


@dataclass(frozen=True)
class ServiceChaos:
    """The service-layer injector of one chaos plan."""

    drop: float = 0.0
    slow: float = 0.0
    slow_ms: float = 100.0
    crash_at_epoch: int = -1
    crash_checkpoint_at: int = -1
    corrupt_checkpoint_at: int = -1
    corrupt_mode: str = "tail"
    drop_window: Optional[Tuple[int, int]] = None
    slow_window: Optional[Tuple[int, int]] = None
    seed: int = 0

    def _draw(self, site: str, counter: int) -> float:
        return chaos_draw(self.seed, site, counter)

    @staticmethod
    def _in_window(window: Optional[Tuple[int, int]], epoch: Optional[int]) -> bool:
        if window is None:
            return True
        if epoch is None:
            return False
        return window[0] <= epoch <= window[1]

    def should_drop(self, counter: int, epoch: Optional[int] = None) -> bool:
        if self.drop <= 0.0 or not self._in_window(self.drop_window, epoch):
            return False
        return self._draw("drop", counter) < self.drop

    def should_slow(self, counter: int, epoch: Optional[int] = None) -> bool:
        if self.slow <= 0.0 or not self._in_window(self.slow_window, epoch):
            return False
        return self._draw("slow", counter) < self.slow

    def maybe_crash_epoch(self, index: int) -> None:
        """Die mid-epoch (before the journal record) when configured."""
        if index == self.crash_at_epoch:
            _crash(f"mid-epoch {index}")

    def maybe_crash_checkpoint(self, index: int) -> None:
        """Die between journal append and snapshot when configured."""
        if index == self.crash_checkpoint_at:
            _crash(f"checkpoint after epoch {index}")

    def should_corrupt_checkpoint(self, index: int) -> bool:
        """True when epoch ``index``'s durable bytes should be garbled."""
        return index == self.corrupt_checkpoint_at


def _crash(where: str) -> None:
    """Simulate a hard crash: no cleanup, no flushes, no excuses."""
    os.write(2, f"chaos: injected crash ({where})\n".encode())
    os._exit(CHAOS_EXIT_CODE)


def parse_service_chaos(raw: Optional[str] = None) -> Optional[ServiceChaos]:
    """Parse a chaos spec string (default: the env var); None when unset.

    Accepts the legacy comma grammar and service-layer plan clauses alike;
    both route through :mod:`repro.chaos.plan`.  Raises
    :class:`~repro.errors.ValidationError` naming the offending clause.
    """
    if raw is None:
        raw = os.environ.get(SERVICE_CHAOS_ENV, "")
    raw = raw.strip()
    if not raw:
        return None
    return plan_from_service_env(raw).service_chaos()
