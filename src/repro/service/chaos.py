"""Deterministic fault injection for the placement service.

Every recovery path the service claims to have must be drivable from a
test, so the failure modes are injected, not hoped for.  The
``REPRO_SERVICE_CHAOS`` environment variable configures the injection with
comma-separated clauses, mirroring the runner's ``REPRO_CHAOS`` grammar
(:mod:`repro.runner.resilience`)::

    REPRO_SERVICE_CHAOS="drop=0.1,slow=0.5,slow_ms=200,seed=7"
    REPRO_SERVICE_CHAOS="crash_at_epoch=2"
    REPRO_SERVICE_CHAOS="crash_checkpoint_at=3"

Clauses:

``drop=<p>``
    Probability of closing an accepted connection without responding —
    the load generator must account these as connection errors, never as
    silent losses.
``slow=<p>`` / ``slow_ms=<n>``
    Probability of sleeping ``slow_ms`` inside a solver-tier solve; with a
    short ``--solve-timeout`` this deterministically trips the circuit
    breaker.
``crash_at_epoch=<n>``
    ``os._exit`` the process while epoch ``n`` is being computed, *before*
    its journal record is written — the "kill -9 mid-epoch" case; recovery
    replays epoch ``n`` from the previous boundary.
``crash_checkpoint_at=<n>``
    ``os._exit`` after epoch ``n``'s journal append but *before* the
    snapshot is rewritten — the torn-checkpoint case; recovery must take
    the journal record over the stale snapshot.
``seed=<n>``
    Seed for the probabilistic draws (deterministic per site + counter).

All probabilistic draws are a SHA-256 of ``(seed, site, counter)``, so a
run with a fixed seed injects the same faults every time.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Optional

#: Environment hook configuring service-level fault injection.
SERVICE_CHAOS_ENV = "REPRO_SERVICE_CHAOS"

#: Exit status used by injected crashes, distinguishable from SIGKILL's 137
#: so tests can tell an injected crash from an external kill.
CHAOS_EXIT_CODE = 57


@dataclass(frozen=True)
class ServiceChaos:
    """Parsed ``REPRO_SERVICE_CHAOS`` configuration."""

    drop: float = 0.0
    slow: float = 0.0
    slow_ms: float = 100.0
    crash_at_epoch: int = -1
    crash_checkpoint_at: int = -1
    seed: int = 0

    def _draw(self, site: str, counter: int) -> float:
        token = f"{self.seed}:{site}:{counter}".encode()
        return int.from_bytes(hashlib.sha256(token).digest()[:4], "big") / 2**32

    def should_drop(self, counter: int) -> bool:
        return self.drop > 0.0 and self._draw("drop", counter) < self.drop

    def should_slow(self, counter: int) -> bool:
        return self.slow > 0.0 and self._draw("slow", counter) < self.slow

    def maybe_crash_epoch(self, index: int) -> None:
        """Die mid-epoch (before the journal record) when configured."""
        if index == self.crash_at_epoch:
            _crash(f"mid-epoch {index}")

    def maybe_crash_checkpoint(self, index: int) -> None:
        """Die between journal append and snapshot when configured."""
        if index == self.crash_checkpoint_at:
            _crash(f"checkpoint after epoch {index}")


def _crash(where: str) -> None:
    """Simulate a hard crash: no cleanup, no flushes, no excuses."""
    os.write(2, f"chaos: injected crash ({where})\n".encode())
    os._exit(CHAOS_EXIT_CODE)


def parse_service_chaos(raw: Optional[str] = None) -> Optional[ServiceChaos]:
    """Parse a chaos spec string (default: the env var); None when unset."""
    if raw is None:
        raw = os.environ.get(SERVICE_CHAOS_ENV, "")
    raw = raw.strip()
    if not raw:
        return None
    fields = {
        "drop": 0.0,
        "slow": 0.0,
        "slow_ms": 100.0,
        "crash_at_epoch": -1.0,
        "crash_checkpoint_at": -1.0,
        "seed": 0.0,
    }
    for clause in raw.split(","):
        name, _, value = clause.partition("=")
        name = name.strip()
        if name not in fields or not value:
            raise ValueError(f"bad {SERVICE_CHAOS_ENV} clause: {clause!r}")
        try:
            fields[name] = float(value)
        except ValueError:
            raise ValueError(f"bad {SERVICE_CHAOS_ENV} clause: {clause!r}") from None
    return ServiceChaos(
        drop=fields["drop"],
        slow=fields["slow"],
        slow_ms=fields["slow_ms"],
        crash_at_epoch=int(fields["crash_at_epoch"]),
        crash_checkpoint_at=int(fields["crash_checkpoint_at"]),
        seed=int(fields["seed"]),
    )
