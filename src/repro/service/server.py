"""The placement query front-end: a stdlib-asyncio HTTP/JSON endpoint.

No web framework — a hand-rolled HTTP/1.1 request loop on
``asyncio.start_server`` keeps the service inside the repository's
zero-new-dependencies rule and small enough to reason about under fault
injection.  One request per connection (``Connection: close``): the
closed-loop load generator and CI smoke both reconnect per request, and
simplicity here buys debuggability everywhere else.

Endpoints
---------

``GET /health``
    Liveness: 200 as long as the event loop turns.
``GET /ready``
    Readiness: 503 until the daemon has completed (or recovered) at least
    one epoch, 200 afterwards.
``GET /stats``
    Admission, breaker, cache, checkpoint, supervisor and perf-counter
    snapshot.
``POST /query``
    JSON body, dispatched on ``kind``:

    * ``placement`` — the daemon's current placement (cheap: published
      state, no admission);
    * ``cost`` — serve cost / migration / availability aggregates over
      completed epochs (cheap);
    * ``bound`` — a lower-bound solve for a heuristic class against one
      epoch's workload (expensive: admission-gated, breaker-guarded,
      cached, single-flighted).

Hardening on the ``bound`` path, in order:

1. **admission** — over ``--admission-limit`` concurrent solves the
   request is shed with 429 + ``Retry-After`` (never queued);
2. **cache** — results are keyed by the runner's content digest
   (:meth:`~repro.runner.tasks.BoundTask.cache_key`), so a repeated query
   is a dict hit, not a second solve;
3. **single-flight** — concurrent identical queries coalesce onto one
   in-flight solve and all receive its result (this is the service's
   batching strategy: dedup beats reorder for an idempotent,
   content-addressed workload);
4. **deadline** — ``deadline_ms`` in the body bounds the wait; expiry is
   504 and counts a breaker failure (the guard inside the solver thread
   cannot observe the caller abandoning it);
5. **circuit breaker** — while open, solves are refused instantly and the
   service degrades to the last-known-good answer for that class, marked
   ``"stale": true``, or 503 when none exists yet.

Overload adaptation (:mod:`repro.service.brownout`) sits across 1–3:
when admission-queue depth crosses the brownout threshold, bound solves
switch to a cheap approximation (one demand interval, ``structure``
backend) marked ``"approx": true``; when admission sheds, a
last-known-good answer within the staleness TTL is served before the
429 goes out.  Both are counted under ``service.brownout.*``.
"""

from __future__ import annotations

import asyncio
import collections
import dataclasses
import json
import time
from typing import Dict, Optional, Tuple

from repro.core.classes import STANDARD_CLASSES, get_class
from repro.core.costs import CostModel
from repro.core.goals import GoalScope, QoSGoal
from repro.core.problem import MCPerfProblem
from repro.perf import PERF
from repro.runner.digest import digest_of
from repro.service.admission import AdmissionQueue, QueueFullError
from repro.service.breaker import OPEN, BreakerOpenError, CircuitBreaker
from repro.service.brownout import BrownoutController
from repro.service.chaos import ServiceChaos
from repro.service.daemon import PlacementDaemon, Supervisor
from repro.solvers.registry import BACKEND_STRUCTURE, install_solve_guard
from repro.workload.demand import DemandMatrix

_MAX_BODY = 1 << 20  # 1 MiB: placement queries are small; anything bigger is abuse


class _Http:
    """Status lines for the subset of HTTP this service speaks."""

    REASONS = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        429: "Too Many Requests",
        500: "Internal Server Error",
        503: "Service Unavailable",
        504: "Gateway Timeout",
    }


class PlacementService:
    """HTTP front-end over one :class:`PlacementDaemon`."""

    def __init__(
        self,
        daemon: PlacementDaemon,
        *,
        admission: Optional[AdmissionQueue] = None,
        breaker: Optional[CircuitBreaker] = None,
        supervisor: Optional[Supervisor] = None,
        chaos: Optional[ServiceChaos] = None,
        brownout: Optional[BrownoutController] = None,
        solve_timeout_s: float = 30.0,
        cache_size: int = 256,
        bound_intervals: int = 4,
    ):
        self.daemon = daemon
        self.admission = admission or AdmissionQueue()
        self.breaker = breaker or CircuitBreaker()
        self.supervisor = supervisor
        self.chaos = chaos
        self.brownout = brownout or BrownoutController(self.admission)
        self.solve_timeout_s = solve_timeout_s
        self.bound_intervals = bound_intervals
        self._cache: "collections.OrderedDict[str, Dict[str, object]]" = (
            collections.OrderedDict()
        )
        self._cache_size = cache_size
        self._inflight: Dict[str, asyncio.Future] = {}
        # Per-class warm-start store: the basis (or basis-less solution)
        # of the last optimal solve.  Under drift the next epoch's problem
        # usually differs only in demand numbers, so the old basis
        # re-certifies in a few dual pivots; a stale/mismatched entry
        # silently degrades to a cold solve in the registry.
        self._warm: Dict[str, object] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_counter = 0
        self.requests = 0
        self.dropped = 0
        self.coalesced = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.stale_served = 0
        self.deadline_expired = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind and start serving; returns the actual (host, port)."""
        # Process-wide: every LP dispatch — query- or daemon-driven — feeds
        # the same breaker and is refused fast while it is open.
        install_solve_guard(self.breaker.guard)
        self._server = await asyncio.start_server(self._handle, host, port)
        sock = self._server.sockets[0].getsockname()
        return sock[0], sock[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        install_solve_guard(None)

    # -- connection handling -------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conn_counter += 1
        conn_id = self._conn_counter
        try:
            if self.chaos is not None and self.chaos.should_drop(
                conn_id, epoch=self.daemon.state.index
            ):
                # The injected network fault: vanish without a response.
                # Clients must see a connection error, never a hang.
                self.dropped += 1
                PERF.count("service.drop")
                writer.close()
                return
            try:
                method, path, body = await asyncio.wait_for(
                    self._read_request(reader), timeout=10.0
                )
            except (asyncio.TimeoutError, asyncio.IncompleteReadError, ValueError):
                await self._respond(writer, 400, {"error": "malformed request"})
                return
            self.requests += 1
            PERF.count("service.requests")
            status, payload = await self._dispatch(method, path, body)
            await self._respond(writer, status, payload)
        except ConnectionError:
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        head = await reader.readuntil(b"\r\n\r\n")
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3:
            raise ValueError("bad request line")
        method, path, _version = parts
        length = 0
        for line in header_lines:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        if length < 0 or length > _MAX_BODY:
            raise ValueError("bad content length")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, body

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, payload: Dict[str, object]
    ) -> None:
        body = json.dumps(payload).encode()
        headers = [
            f"HTTP/1.1 {status} {_Http.REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        retry_after = payload.get("retry_after_s")
        if status == 429 and retry_after is not None:
            headers.append(f"Retry-After: {retry_after:g}")
        writer.write("\r\n".join(headers).encode() + b"\r\n\r\n" + body)
        await writer.drain()

    # -- routing -------------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        if path == "/health":
            return 200, {"ok": True}
        if path == "/ready":
            if self.daemon.ready:
                return 200, {"ready": True, "epoch": self.daemon.state.index}
            return 503, {"ready": False, "epoch": self.daemon.state.index}
        if path == "/stats":
            return 200, self.status()
        if path == "/query":
            if method != "POST":
                return 405, {"error": "POST required"}
            try:
                query = json.loads(body.decode() or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError):
                return 400, {"error": "body is not JSON"}
            if not isinstance(query, dict):
                return 400, {"error": "body must be a JSON object"}
            return await self._query(query)
        return 404, {"error": f"no such endpoint: {path}"}

    async def _query(self, query: Dict[str, object]) -> Tuple[int, Dict[str, object]]:
        kind = query.get("kind")
        if kind == "placement":
            return 200, dict(self.daemon.placement_payload(), stale=False)
        if kind == "cost":
            return 200, self._cost_payload()
        if kind == "bound":
            return await self._bound_query(query)
        return 400, {
            "error": f"unknown query kind: {kind!r}",
            "known": ["placement", "cost", "bound"],
        }

    def _cost_payload(self) -> Dict[str, object]:
        state = self.daemon.state
        epochs = state.epochs
        reads = sum(e.reads for e in epochs)
        unavailable = sum(e.unavailable_reads for e in epochs)
        return {
            "epoch": state.index,
            "serve_cost": sum(e.serve_cost for e in epochs),
            "migration_bytes": sum(e.migration_bytes for e in epochs),
            "reads": reads,
            "availability": 1.0 if reads == 0 else 1.0 - unavailable / reads,
            "slo_violations": sum(1 for e in epochs if e.slo_violated),
            "stale": False,
        }

    # -- the expensive path --------------------------------------------------

    async def _bound_query(
        self, query: Dict[str, object]
    ) -> Tuple[int, Dict[str, object]]:
        try:
            class_name = str(query.get("class", "general"))
            klass = get_class(class_name)
            qos = float(query.get("qos", 0.9))
            backend = str(query.get("backend", "auto"))
            state_index = self.daemon.state.index
            epoch = int(query.get("epoch", max(0, state_index - 1)))
            if not 0 <= epoch < len(self.daemon._traces):
                raise ValueError(
                    f"epoch must be in [0, {len(self.daemon._traces) - 1}]"
                )
            if not 0 < qos <= 1:
                raise ValueError("qos must be in (0, 1]")
        except KeyError:
            return 400, {
                "error": f"unknown class: {query.get('class')!r}",
                "known": sorted(STANDARD_CLASSES),
            }
        except (TypeError, ValueError) as exc:
            return 400, {"error": str(exc)}

        deadline_ms = query.get("deadline_ms")
        timeout = self.solve_timeout_s
        if deadline_ms is not None:
            try:
                timeout = min(timeout, float(deadline_ms) / 1000.0)
            except (TypeError, ValueError):
                return 400, {"error": "deadline_ms must be a number"}

        # Brownout: past the pressure threshold the solve is downgraded to
        # a cheap approximation.  The approx task has its own cache key
        # (different demand resolution + backend), so exact and approximate
        # answers never alias in the cache.
        approx = self.brownout.wants_approx()
        task = self._bound_task(klass, qos, backend, epoch, approx=approx)
        key = digest_of("service-bound", task.cache_key())
        if not approx:
            warm = self._warm.get(class_name)
            if warm is not None:
                task = dataclasses.replace(task, warm_basis=warm)

        cached = self._cache_get(key)
        if cached is not None:
            self.cache_hits += 1
            PERF.count("service.cache.hit")
            return 200, dict(cached, cached=True, stale=False)
        self.cache_misses += 1
        PERF.count("service.cache.miss")

        if self.breaker.state == OPEN:
            # Refuse before burning admission or an executor thread: the
            # solve would be rejected at dispatch anyway.
            return self._degraded(class_name)

        # Single-flight: identical queries coalesce onto one solve.
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced += 1
            PERF.count("service.coalesced")
            return await self._await_solve(existing, class_name, timeout)

        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[key] = future

        def _finish(task_future: "asyncio.Future") -> None:
            self._inflight.pop(key, None)
            if task_future.cancelled():
                future.cancel()
            elif task_future.exception() is not None:
                future.set_exception(task_future.exception())
                # A timed-out requester may have stopped awaiting; mark the
                # exception retrieved so GC does not log it as lost.
                future.exception()
            else:
                payload = task_future.result()
                self._cache_put(key, payload)
                self.brownout.note_result(class_name, payload)
                future.set_result(payload)

        try:
            self.admission.acquire()
        except QueueFullError as exc:
            self._inflight.pop(key, None)
            # Shed tier: a bounded-staleness answer beats a refusal.
            stale = self.brownout.stale_answer(class_name)
            if stale is not None:
                return 200, dict(stale, cached=True, stale=True, shed=True)
            self.brownout.note_shed()
            return 429, {
                "error": "overloaded, request shed",
                "retry_after_s": exc.retry_after_s,
            }

        if approx:
            self.brownout.note_approx()

        def _solve() -> Dict[str, object]:
            try:
                if self.chaos is not None and self.chaos.should_slow(
                    self._conn_counter, epoch=self.daemon.state.index
                ):
                    time.sleep(self.chaos.slow_ms / 1000.0)
                t0 = time.perf_counter()
                result = task.run()
                if not approx:
                    warm = result.extras.get("basis") or result.extras.get(
                        "warm_source"
                    )
                    if warm is not None:
                        self._warm[class_name] = warm
                return {
                    "kind": "bound",
                    "class": class_name,
                    "qos": qos,
                    "epoch": epoch,
                    "feasible": result.feasible,
                    "lp_cost": result.lp_cost,
                    "feasible_cost": result.feasible_cost,
                    "backend": result.backend_used,
                    "approx": approx,
                    "solve_s": time.perf_counter() - t0,
                    "digest": key[:16],
                }
            finally:
                self.admission.release()

        solve_future = asyncio.ensure_future(loop.run_in_executor(None, _solve))
        solve_future.add_done_callback(_finish)
        return await self._await_solve(future, class_name, timeout)

    async def _await_solve(
        self, future: "asyncio.Future", class_name: str, timeout: float
    ) -> Tuple[int, Dict[str, object]]:
        try:
            payload = await asyncio.wait_for(asyncio.shield(future), timeout=timeout)
            return 200, dict(payload, cached=False, stale=False)
        except asyncio.TimeoutError:
            # The solver thread is still running; the guard inside it cannot
            # see this caller abandoning the wait, so account the failure
            # here — repeated deadline expiries must trip the breaker.
            self.deadline_expired += 1
            PERF.count("service.deadline")
            self.breaker.record_failure()
            return 504, {"error": "deadline expired", "class": class_name}
        except BreakerOpenError:
            return self._degraded(class_name)
        except Exception as exc:
            return 500, {"error": f"{type(exc).__name__}: {exc}", "class": class_name}

    def _degraded(self, class_name: str) -> Tuple[int, Dict[str, object]]:
        """Answer from last-known-good while the breaker is open.

        The LKG must be within the brownout controller's staleness TTL —
        an unbounded-staleness answer would silently serve yesterday's
        placement long after the solver tier died.
        """
        lkg = self.brownout.stale_answer(class_name)
        if lkg is None:
            return 503, {
                "error": "solver circuit open and no fresh last-known-good result",
                "class": class_name,
                "breaker": self.breaker.state,
            }
        self.stale_served += 1
        PERF.count("service.stale")
        return 200, dict(lkg, cached=True, stale=True, breaker=self.breaker.state)

    def _bound_task(
        self, klass, qos: float, backend: str, epoch: int, approx: bool = False
    ):
        from repro.runner.tasks import BoundTask

        if approx:
            # Brownout approximation: one demand interval (coarsest
            # resolution) and the structure backend, which picks the exact
            # tree DP / decomposition when applicable and never costs more
            # than the monolithic LP it replaces.
            backend = BACKEND_STRUCTURE
        intervals = 1 if approx else self.bound_intervals
        trace = self.daemon._traces[epoch]
        demand = DemandMatrix.from_trace(trace, num_intervals=intervals)
        problem = MCPerfProblem(
            topology=self.daemon.task.topology,
            demand=demand,
            goal=QoSGoal(
                tlat_ms=self.daemon.task.tlat_ms,
                fraction=qos,
                scope=GoalScope.PER_USER,
            ),
            costs=CostModel(
                alpha=self.daemon.task.alpha, beta=self.daemon.task.beta
            ),
        )
        label = f"service:{klass.name}@{epoch}"
        return BoundTask(
            problem=problem,
            properties=klass.properties,
            backend=backend,
            label=label + "+approx" if approx else label,
        )

    # -- cache ---------------------------------------------------------------

    def _cache_get(self, key: str) -> Optional[Dict[str, object]]:
        payload = self._cache.get(key)
        if payload is not None:
            self._cache.move_to_end(key)
        return payload

    def _cache_put(self, key: str, payload: Dict[str, object]) -> None:
        self._cache[key] = payload
        self._cache.move_to_end(key)
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    # -- observability -------------------------------------------------------

    def status(self) -> Dict[str, object]:
        perf = {
            name: count
            for name, count in PERF.counters.items()
            if name.startswith("service.")
        }
        payload: Dict[str, object] = {
            "requests": self.requests,
            "dropped_by_chaos": self.dropped,
            "admission": self.admission.status(),
            "breaker": self.breaker.status(),
            "brownout": self.brownout.status(),
            "cache": {
                "size": len(self._cache),
                "capacity": self._cache_size,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "coalesced": self.coalesced,
                "stale_served": self.stale_served,
                "deadline_expired": self.deadline_expired,
            },
            "checkpoint": self.daemon.store.status(),
            "perf": perf,
        }
        if self.supervisor is not None:
            payload["supervisor"] = self.supervisor.status()
        else:
            payload["epoch"] = self.daemon.state.index
            payload["ready"] = self.daemon.ready
        return payload
