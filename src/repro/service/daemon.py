"""The supervised placement daemon: epoch loop + checkpoints + recovery.

:class:`PlacementDaemon` owns one :class:`~repro.runner.tasks.ContinuousTask`
and advances it epoch by epoch with the pure stepper
(:func:`repro.simulator.continuous.step_epoch`), persisting every completed
epoch through a :class:`~repro.service.checkpoint.CheckpointStore` before
the next one starts.  Because the per-epoch inputs (drifted traces, fault
slices) are deterministic in the task's seeds, a process that dies at any
point — mid-epoch, mid-append, between journal and snapshot — restarts,
recovers the newest durable state, replays the interrupted epoch, and
converges on exactly the placements an uninterrupted run produces.

:class:`Supervisor` is the in-process restart policy around that loop:
an epoch that raises is retried from the last durable checkpoint with
exponential backoff, up to ``max_restarts`` — past that the failure is
structural and escalating is correct.  Process-level crashes (``kill -9``,
injected :mod:`~repro.service.chaos` exits) are handled one level up, by
whatever respawns ``repro serve``; recovery is identical either way.

Thread model: the daemon loop runs on a worker thread while the asyncio
server (:mod:`repro.service.server`) reads ``state`` for queries; the
state reference is swapped atomically under a lock and states are never
mutated after publication.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.perf import PERF
from repro.runner.tasks import ContinuousTask
from repro.service.chaos import ServiceChaos
from repro.service.checkpoint import CheckpointStore
from repro.simulator.continuous import (
    ContinuousResult,
    ContinuousState,
    finalize_continuous,
    step_epoch,
)


class PlacementDaemon:
    """Epoch-at-a-time driver for one continuous-placement task."""

    def __init__(
        self,
        task: ContinuousTask,
        store: CheckpointStore,
        *,
        chaos: Optional[ServiceChaos] = None,
        epoch_interval_s: float = 0.0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.task = task
        self.store = store
        self.chaos = chaos
        self.epoch_interval_s = epoch_interval_s
        self._sleep = sleep
        self._lock = threading.Lock()
        self._state = ContinuousState()
        # Deterministic in the task's seeds — the crash-recovery contract.
        self._traces, self._schedule, self._slo = task.materialize()
        self.recovered_from: Optional[int] = None

    # -- state access (server-facing) ----------------------------------------

    @property
    def state(self) -> ContinuousState:
        with self._lock:
            return self._state

    def _publish(self, state: ContinuousState) -> None:
        with self._lock:
            self._state = state

    @property
    def done(self) -> bool:
        return self.state.index >= self.task.epochs

    @property
    def ready(self) -> bool:
        """Readiness = at least one epoch completed and durable."""
        return self.state.index >= 1

    def result(self, interrupted: bool = False) -> ContinuousResult:
        return finalize_continuous(
            self.task.topology,
            self.state,
            object_size_bytes=self.task.object_size_bytes,
            slo=self._slo,
            interrupted=interrupted,
        )

    def placement_payload(self) -> Dict[str, object]:
        """The current placement answer, straight from published state."""
        state = self.state
        topo = self.task.topology
        spread = {topo.origin}
        spread.update(n for n, _ in state.carried)
        return {
            "epoch": state.index,
            "epochs_total": self.task.epochs,
            "heuristic": state.heuristic_name or self.task.heuristic.name,
            "placement": [[int(n), int(o)] for n, o in state.carried],
            "replicas": len(state.carried),
            "unique_zones": len(topo.zones_of(spread)),
            "done": state.index >= self.task.epochs,
        }

    # -- recovery ------------------------------------------------------------

    def recover(self) -> int:
        """Restore the newest durable state; returns the resume epoch index."""
        state = self.store.recover()
        if state is not None:
            self._publish(state)
            self.recovered_from = state.index
            PERF.count("service.recover")
        return self.state.index

    # -- the loop ------------------------------------------------------------

    def run_epoch(self) -> bool:
        """Advance one epoch; False when the task is already complete.

        Durability ordering per epoch ``i``: compute → journal append
        (fsynced) → snapshot on schedule → publish to queries.  The chaos
        hooks sit exactly on the two crash windows recovery must cover:
        before the journal record (replay epoch ``i``) and between append
        and snapshot (journal must win over the stale snapshot).
        """
        state = self.state
        if state.index >= self.task.epochs:
            return False
        idx = state.index
        if self.chaos is not None:
            self.chaos.maybe_crash_epoch(idx)
        with PERF.timer("service.epoch"):
            new_state, _report, _sim = step_epoch(
                self.task.topology,
                self._traces[idx],
                self.task.heuristic.build,
                state,
                self.task.tlat_ms,
                faults=self._schedule,
                slo=self._slo,
                capacity=self.task.shed_capacity,
                object_size_bytes=self.task.object_size_bytes,
                alpha=self.task.alpha,
                beta=self.task.beta,
                cost_interval_s=self.task.cost_interval_s,
                warmup_s=self.task.warmup_s,
            )
        self.store.append(new_state)
        corrupt = self.chaos is not None and self.chaos.should_corrupt_checkpoint(idx)
        if corrupt and self.chaos.corrupt_mode == "tail":
            if self.store.corrupt_tail():
                PERF.count("service.chaos.corrupt")
        if self.chaos is not None:
            self.chaos.maybe_crash_checkpoint(idx)
        if new_state.index % self.store.snapshot_every == 0:
            self.store.snapshot(new_state)
        if corrupt and self.chaos.corrupt_mode == "snapshot":
            if self.store.corrupt_snapshot():
                PERF.count("service.chaos.corrupt")
        self._publish(new_state)
        PERF.count("service.epoch")
        return True

    def run_to_completion(self, stop: Optional[Callable[[], bool]] = None) -> bool:
        """Step epochs until done or ``stop()``; True when the task finished.

        The pacing sleep comes *before* each epoch so a freshly started
        service is observably unready until its first epoch lands — the
        readiness flip CI's smoke test asserts on.
        """
        while not self.done:
            if stop is not None and stop():
                return False
            if self.epoch_interval_s > 0:
                self._sleep(self.epoch_interval_s)
                if stop is not None and stop():
                    return False
            self.run_epoch()
        return True


class Supervisor:
    """Restart-from-checkpoint policy around the daemon loop."""

    def __init__(
        self,
        daemon: PlacementDaemon,
        max_restarts: int = 3,
        backoff_s: float = 0.5,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.daemon = daemon
        self.max_restarts = max_restarts
        self.backoff_s = backoff_s
        self._sleep = sleep
        self.restarts = 0
        self.last_error: Optional[str] = None

    def run(self, stop: Optional[Callable[[], bool]] = None) -> bool:
        """Drive the daemon to completion; True when all epochs finished.

        A raising epoch is retried from the last durable checkpoint with
        exponential backoff.  More than ``max_restarts`` consecutive
        failures means the fault is deterministic, not transient — the
        exception escalates rather than looping forever.
        """
        while True:
            try:
                return self.daemon.run_to_completion(stop)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                self.restarts += 1
                self.last_error = f"{type(exc).__name__}: {exc}"
                PERF.count("service.supervisor.restart")
                if self.restarts > self.max_restarts:
                    raise
                self._sleep(self.backoff_s * 2 ** (self.restarts - 1))
                self.daemon.recover()

    def status(self) -> Dict[str, object]:
        """JSON-safe snapshot for ``/stats``."""
        return {
            "restarts": self.restarts,
            "max_restarts": self.max_restarts,
            "last_error": self.last_error,
            "recovered_from": self.daemon.recovered_from,
            "epoch": self.daemon.state.index,
            "epochs_total": self.daemon.task.epochs,
            "done": self.daemon.done,
            "ready": self.daemon.ready,
        }
