"""Tiered overload adaptation: degrade answer quality before refusing.

The admission queue (:mod:`repro.service.admission`) converts overload
into honest 429s — but a shed request gets *nothing*, and under a flash
crowd that is often worse than an approximate or slightly stale answer.
:class:`BrownoutController` inserts two tiers between "full service" and
"shed", keyed off the one pressure signal the service already has: the
admission queue's in-flight depth.

``normal``  (pressure < ``brownout_depth``)
    Exact LP bound solves, full demand resolution.

``brownout``  (pressure >= ``brownout_depth``)
    Bound queries are answered with a cheap approximation — the demand
    matrix collapses to one interval and the solve routes through the
    ``structure`` backend (exact tree DP or decomposition when the
    instance allows, monolithic LP otherwise).  Responses carry
    ``approx: true`` so clients know the number is a coarser bound, not
    the exact optimum.

``shed``  (admission full)
    Before the 429 goes out, a last-known-good answer no older than
    ``stale_ttl_s`` is served with ``stale: true`` — a bounded-staleness
    answer beats a refusal, but an *unbounded* one silently serves
    yesterday's placement, hence the TTL.

Every decision is counted under ``service.brownout.*`` so chaos
campaigns (and BENCH_service.json) can assert the degradation ladder was
actually exercised rather than bypassed.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.perf import PERF
from repro.service.admission import AdmissionQueue

TIER_NORMAL = "normal"
TIER_BROWNOUT = "brownout"
TIER_SHED = "shed"


class BrownoutController:
    """Pressure-keyed degradation policy around one admission queue."""

    def __init__(
        self,
        admission: AdmissionQueue,
        *,
        brownout_depth: float = 0.5,
        stale_ttl_s: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not 0.0 < brownout_depth <= 1.0:
            raise ValueError("brownout_depth must be in (0, 1]")
        if stale_ttl_s < 0:
            raise ValueError("stale_ttl_s must be >= 0")
        self.admission = admission
        self.brownout_depth = brownout_depth
        self.stale_ttl_s = stale_ttl_s
        self._clock = clock
        self._lock = threading.Lock()
        # Last-known-good per class name, with the time it was computed:
        # the degraded-mode answer for both breaker-open and shed paths.
        self._lkg: Dict[str, Tuple[Dict[str, object], float]] = {}
        self.approx_served = 0
        self.stale_served = 0
        self.stale_expired = 0
        self.shed_hard = 0

    # -- pressure ------------------------------------------------------------

    def pressure(self) -> float:
        """Admission-queue depth as a fraction of capacity, in [0, 1]."""
        return min(1.0, self.admission.in_flight / self.admission.limit)

    def tier(self) -> str:
        if self.admission.in_flight >= self.admission.limit:
            return TIER_SHED
        if self.pressure() >= self.brownout_depth:
            return TIER_BROWNOUT
        return TIER_NORMAL

    def wants_approx(self) -> bool:
        """Should the next bound solve run the cheap approximate path?"""
        return self.tier() != TIER_NORMAL

    # -- accounting ----------------------------------------------------------

    def note_approx(self) -> None:
        self.approx_served += 1
        PERF.count("service.brownout.approx")

    def note_shed(self) -> None:
        self.shed_hard += 1
        PERF.count("service.brownout.shed")

    # -- last-known-good store ------------------------------------------------

    def note_result(self, class_name: str, payload: Dict[str, object]) -> None:
        """Record a successful answer as the class's last-known-good."""
        with self._lock:
            self._lkg[class_name] = (payload, self._clock())

    def stale_answer(self, class_name: str) -> Optional[Dict[str, object]]:
        """The class's LKG if within the staleness TTL, else None.

        A hit counts ``service.brownout.stale``; an entry that exists but
        has aged out counts ``service.brownout.expired`` — the difference
        between "served degraded" and "had nothing honest to serve".
        """
        with self._lock:
            entry = self._lkg.get(class_name)
            if entry is None:
                return None
            payload, at = entry
            if self._clock() - at > self.stale_ttl_s:
                self.stale_expired += 1
                PERF.count("service.brownout.expired")
                return None
            self.stale_served += 1
            PERF.count("service.brownout.stale")
            return payload

    def status(self) -> Dict[str, object]:
        """JSON-safe snapshot for ``/stats``."""
        with self._lock:
            lkg_classes = sorted(self._lkg)
        return {
            "tier": self.tier(),
            "pressure": self.pressure(),
            "brownout_depth": self.brownout_depth,
            "stale_ttl_s": self.stale_ttl_s,
            "approx_served": self.approx_served,
            "stale_served": self.stale_served,
            "stale_expired": self.stale_expired,
            "shed_hard": self.shed_hard,
            "lkg_classes": lkg_classes,
        }
