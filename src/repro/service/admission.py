"""Bounded admission for the solver tier: shed load instead of queueing it.

An unbounded queue converts overload into latency until every deadline in
the system is blown; a bounded one converts it into fast, honest
rejections the client can retry.  Only the *expensive* endpoints (bound /
cost queries that may dispatch an LP solve) pass through admission — the
cheap ones (placement lookups, health probes) must stay answerable even
when the solver tier is saturated, because that is exactly when operators
need them.

Rejections carry ``retry_after_s`` and surface as HTTP 429 with a
``Retry-After`` header; the ``service.shed`` counter feeds the /stats
endpoint and BENCH_service.json.
"""

from __future__ import annotations

import threading
from typing import Dict

from repro.perf import PERF


class QueueFullError(RuntimeError):
    """The admission queue is at capacity; retry after ``retry_after_s``."""

    def __init__(self, retry_after_s: float):
        super().__init__(
            f"admission queue full; retry after {retry_after_s:g}s"
        )
        self.retry_after_s = retry_after_s


class AdmissionQueue:
    """A counting semaphore that refuses instead of blocking."""

    def __init__(self, limit: int = 8, retry_after_s: float = 1.0):
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.limit = limit
        self.retry_after_s = retry_after_s
        self._lock = threading.Lock()
        self._in_flight = 0
        self.admitted = 0
        self.shed = 0

    def acquire(self) -> None:
        """Admit one request or raise :class:`QueueFullError` immediately."""
        with self._lock:
            if self._in_flight >= self.limit:
                self.shed += 1
                PERF.count("service.shed")
                raise QueueFullError(self.retry_after_s)
            self._in_flight += 1
            self.admitted += 1

    def release(self) -> None:
        with self._lock:
            if self._in_flight > 0:
                self._in_flight -= 1

    def __enter__(self) -> "AdmissionQueue":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def status(self) -> Dict[str, object]:
        """JSON-safe snapshot for ``/stats``."""
        with self._lock:
            return {
                "limit": self.limit,
                "in_flight": self._in_flight,
                "admitted": self.admitted,
                "shed": self.shed,
                "retry_after_s": self.retry_after_s,
            }
