"""A minimal blocking HTTP client for the placement service.

Used by the load generator, the tests and CI's service-smoke job — all of
which need exact failure taxonomy more than throughput.  Every call
resolves to one of three outcomes:

* a parsed :class:`ServiceResponse` (any HTTP status — 429 and 503 are
  *answers*, not errors);
* :class:`ServiceConnectionError` — the connection was refused, reset or
  closed before a full response arrived (chaos ``drop`` lands here);
* ``socket.timeout`` propagated from the deadline.

There is deliberately no retry logic here: callers (the load generator,
the smoke script) decide retry policy, because blind client retries would
hide exactly the shedding and breaker behaviour this service exists to
make visible.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass, field
from typing import Dict, Optional


class ServiceConnectionError(ConnectionError):
    """The service dropped the connection before answering."""


@dataclass
class ServiceResponse:
    """One parsed HTTP response."""

    status: int
    payload: Dict[str, object] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def retry_after_s(self) -> Optional[float]:
        value = self.headers.get("retry-after")
        return None if value is None else float(value)


class ServiceClient:
    """One-request-per-connection client matching the server's HTTP subset."""

    def __init__(self, host: str, port: int, timeout_s: float = 10.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # -- transport -----------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[Dict[str, object]] = None
    ) -> ServiceResponse:
        raw_body = b"" if body is None else json.dumps(body).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(raw_body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            ) as sock:
                sock.sendall(head.encode() + raw_body)
                chunks = []
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
        except socket.timeout:
            raise
        except OSError as exc:
            raise ServiceConnectionError(f"connection failed: {exc}") from exc
        return self._parse(b"".join(chunks))

    @staticmethod
    def _parse(raw: bytes) -> ServiceResponse:
        if b"\r\n\r\n" not in raw:
            raise ServiceConnectionError("connection closed before response")
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ServiceConnectionError(f"malformed status line: {lines[0]!r}")
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", len(body)))
        if len(body) < length:
            raise ServiceConnectionError("connection closed mid-body")
        payload: Dict[str, object] = {}
        if body:
            try:
                payload = json.loads(body[:length].decode())
            except (UnicodeDecodeError, json.JSONDecodeError):
                raise ServiceConnectionError("response body is not JSON") from None
        return ServiceResponse(status=int(parts[1]), payload=payload, headers=headers)

    # -- endpoints -----------------------------------------------------------

    def health(self) -> ServiceResponse:
        return self._request("GET", "/health")

    def ready(self) -> ServiceResponse:
        return self._request("GET", "/ready")

    def stats(self) -> ServiceResponse:
        return self._request("GET", "/stats")

    def query(self, **query: object) -> ServiceResponse:
        return self._request("POST", "/query", query)

    def placement(self) -> ServiceResponse:
        return self.query(kind="placement")

    def cost(self) -> ServiceResponse:
        return self.query(kind="cost")

    def bound(self, klass: str = "general", **extra: object) -> ServiceResponse:
        return self.query(kind="bound", **{"class": klass, **extra})

    def wait_ready(self, timeout_s: float = 60.0, poll_s: float = 0.1) -> bool:
        """Poll ``/ready`` until it flips (True) or the timeout lapses."""
        import time

        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                if self.ready().ok:
                    return True
            except (ServiceConnectionError, OSError):
                pass
            time.sleep(poll_s)
        return False
