"""Fault event types.

Every event is a frozen dataclass stamped with the simulation time at which
it strikes.  Events come in matched pairs — :class:`NodeCrash` /
:class:`NodeRecover` and :class:`LinkDegrade` / :class:`LinkRestore` — plus
the unpaired :class:`ReplicaLoss` (a single replica silently disappears,
e.g. disk corruption, while the node stays up).

Events at the same timestamp are ordered recoveries-first (``sort_rank``),
so a zero-length outage is still a well-formed crash interval and a node
that recovers and immediately re-crashes never looks doubly crashed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar, Tuple


@dataclass(frozen=True)
class FaultEvent:
    """Something happens to the infrastructure at ``time_s``."""

    time_s: float

    #: Tie-break rank for events at the same timestamp (recoveries first).
    sort_rank: ClassVar[int] = 0

    def __post_init__(self) -> None:
        if not math.isfinite(self.time_s) or self.time_s < 0:
            raise ValueError(f"event time must be finite and non-negative, got {self.time_s}")

    def sort_key(self) -> Tuple:
        return (self.time_s, self.sort_rank, self._ids())

    def _ids(self) -> Tuple[int, ...]:
        return ()


@dataclass(frozen=True)
class NodeRecover(FaultEvent):
    """A crashed node comes back — empty: its replicas were lost."""

    node: int = 0
    sort_rank: ClassVar[int] = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.node < 0:
            raise ValueError("node id must be non-negative")

    def _ids(self) -> Tuple[int, ...]:
        return (self.node,)


@dataclass(frozen=True)
class NodeCrash(FaultEvent):
    """A node goes down; its replicas are dropped (storage charged so far)."""

    node: int = 0
    sort_rank: ClassVar[int] = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.node < 0:
            raise ValueError("node id must be non-negative")

    def _ids(self) -> Tuple[int, ...]:
        return (self.node,)


@dataclass(frozen=True)
class LinkRestore(FaultEvent):
    """A degraded/partitioned link returns to its baseline latency."""

    a: int = 0
    b: int = 0
    sort_rank: ClassVar[int] = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_link(self.a, self.b)

    def _ids(self) -> Tuple[int, ...]:
        return (min(self.a, self.b), max(self.a, self.b))


@dataclass(frozen=True)
class LinkDegrade(FaultEvent):
    """A link's latency is multiplied by ``factor`` (``inf`` = partition)."""

    a: int = 0
    b: int = 0
    factor: float = math.inf
    sort_rank: ClassVar[int] = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_link(self.a, self.b)
        if not self.factor >= 1.0:  # rejects NaN too
            raise ValueError(f"degradation factor must be >= 1 (inf = partition), got {self.factor}")

    @property
    def is_partition(self) -> bool:
        return math.isinf(self.factor)

    def _ids(self) -> Tuple[int, ...]:
        return (min(self.a, self.b), max(self.a, self.b))


@dataclass(frozen=True)
class ReplicaLoss(FaultEvent):
    """One replica disappears (node stays up); a no-op if it is not held."""

    node: int = 0
    obj: int = 0
    sort_rank: ClassVar[int] = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.node < 0 or self.obj < 0:
            raise ValueError("node and object ids must be non-negative")

    def _ids(self) -> Tuple[int, ...]:
        return (self.node, self.obj)


def _check_link(a: int, b: int) -> None:
    if a < 0 or b < 0:
        raise ValueError("link endpoints must be non-negative")
    if a == b:
        raise ValueError("a link needs two distinct endpoints")
