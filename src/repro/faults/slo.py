"""Availability service-level objectives.

An :class:`AvailabilitySLO` is the contract a continuous deployment is
judged against: each evaluation window (an epoch of
:mod:`repro.simulator.continuous`, or a whole single run) must serve at
least ``target`` of its issued reads.  The record is a frozen dataclass so
it participates in the runner's content-addressed digests, and
:func:`apply_slo` stamps the verdict onto a
:class:`~repro.simulator.engine.SimulationResult` so manifests and CLI
summaries carry it without recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

_EPS = 1e-12


@dataclass(frozen=True)
class AvailabilitySLO:
    """Minimum availability (served fraction of issued reads) per window.

    Parameters
    ----------
    target:
        Required availability in ``[0, 1]``; e.g. ``0.99`` demands that at
        most 1% of issued post-warmup reads go unserved in any window.
    """

    target: float = 0.99

    def __post_init__(self) -> None:
        if not 0.0 <= self.target <= 1.0:
            raise ValueError("SLO target must be a fraction in [0, 1]")

    def met(self, availability: float) -> bool:
        return availability >= self.target - _EPS

    def violated(self, availability: float) -> bool:
        return not self.met(availability)

    def check(self, result) -> bool:
        """Whether a :class:`SimulationResult` satisfies the objective."""
        return self.met(result.availability)

    def describe(self) -> str:
        return f"SLO(availability>={self.target:g})"


def apply_slo(result, slo: AvailabilitySLO):
    """Stamp the SLO verdict onto a result (returns the result for chaining)."""
    result.slo_target = slo.target
    result.slo_violated = slo.violated(result.availability)
    return result


@dataclass
class SLOLedger:
    """Per-epoch availability bookkeeping against one SLO."""

    slo: AvailabilitySLO
    availabilities: List[float]

    def __init__(self, slo: AvailabilitySLO):
        self.slo = slo
        self.availabilities = []

    def observe(self, availability: float) -> bool:
        """Record one epoch; returns True when the epoch violated the SLO."""
        self.availabilities.append(float(availability))
        return self.slo.violated(availability)

    @property
    def epochs(self) -> int:
        return len(self.availabilities)

    @property
    def violation_epochs(self) -> List[int]:
        return [
            i for i, a in enumerate(self.availabilities) if self.slo.violated(a)
        ]

    @property
    def violations(self) -> int:
        return len(self.violation_epochs)

    @property
    def worst(self) -> float:
        return min(self.availabilities) if self.availabilities else 1.0
