"""Fault injection and failure recovery for the trace-replay simulator.

The paper's evaluation assumes a fault-free wide-area system; this package
lets every heuristic be benchmarked under identical, seeded fault traces —
node crashes, link degradation/partitions and silent replica losses — and
provides a :class:`~repro.faults.healing.HealingPolicy` wrapper that
re-replicates lost objects with capped, backed-off retries.

Typical use::

    from repro.faults import FaultSchedule, HealingPolicy, poisson_crashes
    from repro.simulator import simulate

    faults = poisson_crashes(num_nodes=20, duration_s=86400,
                             mtbf_s=6 * 3600, mttr_s=900, seed=3)
    result = simulate(topology, trace, HealingPolicy(heuristic, copies=2),
                      tlat_ms=150.0, faults=faults)
    print(result.availability, result.mean_repair_time_s)
"""

from repro.faults.events import (
    FaultEvent,
    LinkDegrade,
    LinkRestore,
    NodeCrash,
    NodeRecover,
    ReplicaLoss,
)
from repro.faults.schedule import FaultSchedule
from repro.faults.generators import (
    correlated_outage,
    flaky_link,
    poisson_crashes,
    random_replica_loss,
    zone_outages,
    zone_partition,
)
from repro.faults.runtime import AvailabilityStats, FaultState
from repro.faults.healing import HealingPolicy
from repro.faults.slo import AvailabilitySLO, SLOLedger, apply_slo
from repro.faults.spec import parse_faults

__all__ = [
    "FaultEvent",
    "NodeCrash",
    "NodeRecover",
    "LinkDegrade",
    "LinkRestore",
    "ReplicaLoss",
    "FaultSchedule",
    "poisson_crashes",
    "flaky_link",
    "correlated_outage",
    "random_replica_loss",
    "zone_outages",
    "zone_partition",
    "FaultState",
    "AvailabilityStats",
    "HealingPolicy",
    "AvailabilitySLO",
    "SLOLedger",
    "apply_slo",
    "parse_faults",
]
