"""Compact fault-spec grammar for the command line.

``repro simulate --faults SPEC`` accepts semicolon-separated clauses, each
``kind:key=value,key=value``::

    poisson:mtbf=21600,mttr=900
    crash:node=3,at=1000,down=600
    flaky:a=1,b=2,up=3600,down=300,factor=4
    outage:nodes=4+5+6,at=40000,down=1800
    loss:node=1,obj=5,at=100
    lossrate:rate=2
    zoneout:mtbf=43200,mttr=1800
    zonepart:zone=1,at=2000,down=1000,every=7200

Clauses compose (their schedules are merged); randomized clauses draw from
``--fault-seed`` so the same seed replays the identical fault trace.  The
``zone*`` clauses need a zone map (the topology's ``zones`` or ``--zones``)
and reject its absence with :class:`~repro.errors.ValidationError`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.errors import ValidationError
from repro.faults.events import LinkDegrade, LinkRestore, NodeCrash, NodeRecover, ReplicaLoss
from repro.faults.generators import (
    correlated_outage,
    flaky_link,
    poisson_crashes,
    random_replica_loss,
    zone_outages,
    zone_partition,
)
from repro.faults.schedule import FaultSchedule


def parse_faults(
    spec: str,
    *,
    num_nodes: int,
    num_objects: int,
    duration_s: float,
    origin: int = 0,
    seed: int = 0,
    zones: Optional[Sequence[int]] = None,
) -> FaultSchedule:
    """Parse a ``--faults`` spec string into a composed schedule."""
    schedules: List[FaultSchedule] = []
    for raw in spec.split(";"):
        clause = raw.strip()
        if not clause:
            continue
        kind, _, body = clause.partition(":")
        kind = kind.strip().lower()
        params = _parse_params(body, clause)
        try:
            maker = _MAKERS[kind]
        except KeyError:
            raise ValueError(
                f"unknown fault clause {kind!r} (expected one of {sorted(_MAKERS)})"
            ) from None
        schedules.append(
            maker(params, num_nodes=num_nodes, num_objects=num_objects,
                  duration_s=duration_s, origin=origin, seed=seed, zones=zones)
        )
        if params:
            raise ValueError(f"unknown keys {sorted(params)} in fault clause {clause!r}")
    if not schedules:
        raise ValueError(f"empty fault spec: {spec!r}")
    return FaultSchedule.merge(schedules)


def _parse_params(body: str, clause: str) -> Dict[str, str]:
    params: Dict[str, str] = {}
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep or not key or not value:
            raise ValueError(f"malformed key=value pair {item!r} in fault clause {clause!r}")
        params[key.strip().lower()] = value.strip()
    return params


def _pop_float(params: Dict[str, str], key: str, default=None) -> float:
    if key not in params:
        if default is None:
            raise ValueError(f"fault clause missing required key {key!r}")
        return float(default)
    value = params.pop(key)
    if value.lower() in ("inf", "infinity"):
        return math.inf
    return float(value)


def _pop_int(params: Dict[str, str], key: str, default=None) -> int:
    return int(_pop_float(params, key, default))


def _make_poisson(params, *, num_nodes, num_objects, duration_s, origin, seed, zones):
    mtbf = _pop_float(params, "mtbf")
    mttr = _pop_float(params, "mttr")
    return poisson_crashes(
        num_nodes, duration_s, mtbf_s=mtbf, mttr_s=mttr, seed=seed, exclude=(origin,)
    )


def _make_crash(params, *, num_nodes, num_objects, duration_s, origin, seed, zones):
    node = _pop_int(params, "node")
    at = _pop_float(params, "at")
    down = _pop_float(params, "down", default=math.inf)
    events = [NodeCrash(at, node)]
    if math.isfinite(down):
        events.append(NodeRecover(at + down, node))
    return FaultSchedule(events)


def _make_flaky(params, *, num_nodes, num_objects, duration_s, origin, seed, zones):
    a = _pop_int(params, "a")
    b = _pop_int(params, "b")
    up = _pop_float(params, "up")
    down = _pop_float(params, "down")
    factor = _pop_float(params, "factor", default=math.inf)
    return flaky_link(a, b, duration_s, mean_up_s=up, mean_down_s=down, factor=factor, seed=seed)


def _make_degrade(params, *, num_nodes, num_objects, duration_s, origin, seed, zones):
    a = _pop_int(params, "a")
    b = _pop_int(params, "b")
    at = _pop_float(params, "at")
    down = _pop_float(params, "down", default=math.inf)
    factor = _pop_float(params, "factor", default=math.inf)
    events = [LinkDegrade(at, a, b, factor)]
    if math.isfinite(down):
        events.append(LinkRestore(at + down, a, b))
    return FaultSchedule(events)


def _make_outage(params, *, num_nodes, num_objects, duration_s, origin, seed, zones):
    raw_nodes = params.pop("nodes", None)
    if raw_nodes is None:
        raise ValueError("fault clause missing required key 'nodes'")
    nodes = [int(n) for n in raw_nodes.split("+")]
    at = _pop_float(params, "at")
    down = _pop_float(params, "down")
    return correlated_outage(nodes, start_s=at, outage_s=down)


def _make_loss(params, *, num_nodes, num_objects, duration_s, origin, seed, zones):
    node = _pop_int(params, "node")
    obj = _pop_int(params, "obj")
    at = _pop_float(params, "at")
    return FaultSchedule([ReplicaLoss(at, node, obj)])


def _make_lossrate(params, *, num_nodes, num_objects, duration_s, origin, seed, zones):
    rate = _pop_float(params, "rate")
    return random_replica_loss(
        num_nodes, num_objects, duration_s, rate_per_hour=rate, seed=seed, exclude=(origin,)
    )


def _require_zones(zones, kind):
    if zones is None:
        raise ValidationError(
            f"fault clause {kind!r} needs a zone map (topology zones or --zones)"
        )
    return zones


def _make_zoneout(params, *, num_nodes, num_objects, duration_s, origin, seed, zones):
    zone_map = _require_zones(zones, "zoneout")
    mtbf = _pop_float(params, "mtbf")
    mttr = _pop_float(params, "mttr")
    return zone_outages(
        zone_map, duration_s, mtbf_s=mtbf, mttr_s=mttr, seed=seed, exclude=(origin,)
    )


def _make_zonepart(params, *, num_nodes, num_objects, duration_s, origin, seed, zones):
    zone_map = _require_zones(zones, "zonepart")
    zone = _pop_int(params, "zone")
    at = _pop_float(params, "at")
    down = _pop_float(params, "down")
    every = _pop_float(params, "every", default=math.nan)
    factor = _pop_float(params, "factor", default=math.inf)
    return zone_partition(
        zone_map,
        zone,
        start_s=at,
        outage_s=down,
        duration_s=duration_s,
        every_s=None if math.isnan(every) else every,
        factor=factor,
    )


_MAKERS = {
    "poisson": _make_poisson,
    "crash": _make_crash,
    "flaky": _make_flaky,
    "degrade": _make_degrade,
    "outage": _make_outage,
    "loss": _make_loss,
    "lossrate": _make_lossrate,
    "zoneout": _make_zoneout,
    "zonepart": _make_zonepart,
}
