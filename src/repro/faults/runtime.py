"""Mutable fault state driven by the engine while a trace replays.

:class:`FaultState` tracks which nodes are alive and what the *effective*
latency matrix looks like under the currently-active link degradations; the
simulator's routing (:meth:`repro.simulator.state.ReplicaState.best_latency`)
reads it to mask dead nodes and degraded links out of serving decisions.

:class:`AvailabilityStats` accumulates the availability metrics that end up
on :class:`~repro.simulator.engine.SimulationResult` — unavailable reads,
repair counts/latencies and the re-replication work done by a
:class:`~repro.faults.healing.HealingPolicy`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.faults.events import (
    FaultEvent,
    LinkDegrade,
    LinkRestore,
    NodeCrash,
    NodeRecover,
)


@dataclass
class AvailabilityStats:
    """Availability counters accumulated during a faulty run."""

    #: Post-warmup reads that could not be served at all (requester down,
    #: or partitioned from every replica and the origin).
    unavailable_reads: int = 0
    #: Lost replicas successfully re-replicated by a healing policy.
    repairs: int = 0
    #: Sum over repairs of (heal time - loss time).
    repair_time_s: float = 0.0
    #: Replica creations performed by healing (re-replication cost in beta units).
    healing_creations: int = 0
    #: Healing creation attempts that failed (dead/no target) and backed off.
    failed_heal_attempts: int = 0
    #: Repairs abandoned after exhausting retries.
    abandoned_repairs: int = 0


class FaultState:
    """Liveness flags and effective latencies under the active faults.

    The origin is assumed durable (schedules are validated against it) and
    therefore always alive; links touching it may still degrade.
    """

    def __init__(self, topology):
        self.topology = topology
        self.alive = np.ones(topology.num_nodes, dtype=bool)
        self._degradations: Dict[Tuple[int, int], float] = {}
        self.effective_latency = topology.latency.astype(float).copy()
        self._down_since: Dict[int, float] = {}
        #: Total node-seconds of downtime accumulated so far.
        self.node_downtime_s = 0.0

    # -- queries -----------------------------------------------------------

    def is_alive(self, node: int) -> bool:
        return bool(self.alive[node])

    def lat(self, a: int, b: int) -> float:
        """Effective latency between two nodes; ``inf`` if either is down."""
        if not (self.alive[a] and self.alive[b]):
            return math.inf
        return float(self.effective_latency[a][b])

    # -- transitions -------------------------------------------------------

    def apply(self, event: FaultEvent) -> None:
        """Advance the liveness/link state by one event (replica accounting
        is the engine's job)."""
        if isinstance(event, NodeCrash):
            self.alive[event.node] = False
            self._down_since[event.node] = event.time_s
        elif isinstance(event, NodeRecover):
            self.alive[event.node] = True
            self.node_downtime_s += event.time_s - self._down_since.pop(event.node)
        elif isinstance(event, LinkDegrade):
            self._degradations[event._ids()] = event.factor
            self._rebuild_latency()
        elif isinstance(event, LinkRestore):
            self._degradations.pop(event._ids(), None)
            self._rebuild_latency()
        # ReplicaLoss does not change liveness.

    def _rebuild_latency(self) -> None:
        self.effective_latency = self.topology.degraded_latency(self._degradations)

    def finalize(self, end_time_s: float) -> None:
        """Close open downtime intervals at the end of the run."""
        for node, since in list(self._down_since.items()):
            self.node_downtime_s += end_time_s - since
            self._down_since[node] = end_time_s  # idempotent finalize
