"""Graceful-degradation wrapper: re-replicate what the faults destroy.

:class:`HealingPolicy` wraps any :class:`~repro.heuristics.base.PlacementHeuristic`
and reacts to the simulator's failure/recovery hooks (inspired by
production replica-healing services, e.g. Rucio-style declared-copy-count
enforcement):

* when replicas are lost (node crash, silent replica loss) it re-creates
  them on the closest *surviving* node until each affected object has
  ``copies`` live replicas again, with capped retries and exponential
  backoff on failed creations (e.g. the chosen target crashed too);
* when a crashed node recovers, it optionally restores the contents the
  node lost at the crash instant (``restore_on_recovery``), re-warming
  local caches that would otherwise start cold;
* with ``min_unique_zones > 1`` it additionally enforces *zone spread* at
  every placement interval: each replicated object must have live copies
  (the durable origin included) in at least that many distinct topology
  zones, and repair targets are picked anti-affine — a zone not yet
  holding the object wins over a nearer node in an already-covered zone.
  Without a zone map every node is its own zone, so the same knob degrades
  to plain distinct-node spread;
* ``repair_budget`` applies backpressure: at most that many healing
  creations per ``budget_window_s`` of simulated time.  Over-budget work
  is deferred (it stays queued without burning retry attempts), modelling
  a bandwidth-limited repair service rather than an infinitely fast one.

For a ``routing == "local"`` inner heuristic a replica on another node can
never serve the wrapped cache's reads, so the crash-repair queue and zone
spread are skipped and only recovery restoration applies.

Each healed replica is announced to the inner heuristic via its
``on_replicate`` hook so private metadata (LRU orders, frequency sets)
admits it incrementally — a full ``on_adopt`` resync here would rebuild
cache orders from sorted contents and destroy recency information.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.faults.events import FaultEvent, NodeCrash, NodeRecover
from repro.heuristics.base import PlacementHeuristic


@dataclass
class _Repair:
    """One lost replica awaiting re-replication."""

    obj: int
    lost_node: int
    lost_at_s: float
    attempts: int = 0
    next_attempt_s: float = 0.0


class HealingPolicy(PlacementHeuristic):
    """Wrap a heuristic with copy-count-restoring failure recovery.

    Parameters
    ----------
    inner:
        The placement heuristic doing the actual work.
    copies:
        Target number of live replicas per affected object (the origin's
        permanent copy is not counted, matching the cost model).
    max_retries:
        Creation attempts per lost replica before giving up.
    backoff_s:
        Initial retry delay; doubles per failed attempt.
    restore_on_recovery:
        Re-create a recovered node's lost contents (re-warm its cache).
    min_unique_zones:
        Zone-spread floor for replicated objects (origin's zone counts —
        it always serves).  1 disables spread enforcement; anti-affinity
        still biases repair targets when > 1.
    repair_budget:
        Max healing creations per ``budget_window_s``; ``None`` = unlimited.
    budget_window_s:
        Budget accounting window (simulated seconds).
    """

    def __init__(
        self,
        inner: PlacementHeuristic,
        copies: int = 2,
        max_retries: int = 5,
        backoff_s: float = 60.0,
        restore_on_recovery: bool = True,
        min_unique_zones: int = 1,
        repair_budget: Optional[int] = None,
        budget_window_s: float = 3600.0,
    ):
        if copies < 1:
            raise ValueError("copies must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff_s <= 0:
            raise ValueError("backoff must be positive")
        if min_unique_zones < 1:
            raise ValueError("min_unique_zones must be >= 1")
        if repair_budget is not None and repair_budget < 1:
            raise ValueError("repair_budget must be >= 1 (or None for unlimited)")
        if budget_window_s <= 0:
            raise ValueError("budget window must be positive")
        self.inner = inner
        self.copies = copies
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.restore_on_recovery = restore_on_recovery
        self.min_unique_zones = min_unique_zones
        self.repair_budget = repair_budget
        self.budget_window_s = budget_window_s
        self._queue: List[_Repair] = []
        self._lost_contents: dict = {}
        self._budget_window = -1
        self._budget_used = 0

    # The engine reads these per request; always reflect the inner choice.
    @property
    def routing(self) -> str:  # type: ignore[override]
        return self.inner.routing

    @property
    def period_s(self) -> Optional[float]:  # type: ignore[override]
        return self.inner.period_s

    @property
    def clairvoyant(self) -> bool:  # type: ignore[override]
        return self.inner.clairvoyant

    def describe(self) -> str:
        extras = ""
        if self.min_unique_zones > 1:
            extras += f", zones>={self.min_unique_zones}"
        if self.repair_budget is not None:
            extras += f", budget={self.repair_budget}/{self.budget_window_s:g}s"
        return f"Healing({self.inner.describe()}, copies={self.copies}{extras})"

    # -- delegated lifecycle ----------------------------------------------

    def on_start(self, ctx) -> None:
        self._reset()
        self.inner.on_start(ctx)
        self._enforce_spread(ctx)

    def on_adopt(self, ctx) -> None:
        self._reset()
        self.inner.on_adopt(ctx)
        self._enforce_spread(ctx)

    def _reset(self) -> None:
        self._queue = []
        self._lost_contents = {}
        self._budget_window = -1
        self._budget_used = 0

    def on_interval(self, index, ctx, past_demand, next_demand) -> None:
        self.inner.on_interval(index, ctx, past_demand, next_demand)
        self._enforce_spread(ctx)

    def on_access(self, request, served_ms, ctx) -> None:
        self.inner.on_access(request, served_ms, ctx)
        self._pump(ctx)

    # -- failure handling --------------------------------------------------

    def on_failure(self, event: FaultEvent, ctx, lost: Sequence[Tuple[int, int]] = ()) -> None:
        self.inner.on_failure(event, ctx, lost)
        if isinstance(event, NodeCrash):
            self._lost_contents[event.node] = sorted(obj for _, obj in lost)
        if self.inner.routing != "local":
            for node, obj in lost:
                self._queue.append(_Repair(obj, node, ctx.now_s, 0, ctx.now_s))
        self._pump(ctx)

    def on_recovery(self, event: FaultEvent, ctx) -> None:
        self.inner.on_recovery(event, ctx)
        if isinstance(event, NodeRecover):
            # Always pop: leaving stale lost-content entries behind when
            # restoration is off (or skipped) would replay an *old* crash's
            # contents after a later crash/recover cycle of the same node.
            lost_objs = self._lost_contents.pop(event.node, [])
            if self.restore_on_recovery:
                for obj in lost_objs:
                    if (
                        self.inner.routing != "local"
                        and len(self._live_holders(ctx, obj)) >= self.copies
                    ):
                        continue  # already healed elsewhere; don't over-replicate
                    if not self._budget_allows(ctx.now_s):
                        break  # backpressure: the node simply restarts colder
                    if ctx.create_replica(event.node, obj):
                        self._spend_budget(ctx.now_s)
                        self._stats(ctx).healing_creations += 1
                        self.inner.on_replicate(event.node, obj, ctx)
            # A recovery may have restored the copy count by itself: cancel
            # queued repairs it satisfied so they cannot fire later and
            # over-replicate (the recovering-node-vs-queued-repair race).
            if self._queue:
                self._queue = [
                    t
                    for t in self._queue
                    if len(self._live_holders(ctx, t.obj)) < self.copies
                ]
        self._pump(ctx)

    # -- the repair queue --------------------------------------------------

    def _pump(self, ctx) -> None:
        """Attempt every due repair; back off on failure, announce successes."""
        if not self._queue:
            return
        now = ctx.now_s
        stats = self._stats(ctx)
        remaining: List[_Repair] = []
        for task in self._queue:
            if task.next_attempt_s > now:
                remaining.append(task)
                continue
            if len(self._live_holders(ctx, task.obj)) >= self.copies:
                continue  # copy count already restored by other activity
            if not self._budget_allows(now):
                # Deferred, not failed: keep the task without burning a
                # retry attempt; it becomes due again in the next window.
                task.next_attempt_s = self._next_window_start(now)
                remaining.append(task)
                continue
            target = self._pick_target(ctx, task)
            if target is not None and ctx.create_replica(target, task.obj):
                self._spend_budget(now)
                stats.healing_creations += 1
                stats.repairs += 1
                stats.repair_time_s += now - task.lost_at_s
                self.inner.on_replicate(target, task.obj, ctx)
                continue
            stats.failed_heal_attempts += 1
            task.attempts += 1
            if task.attempts > self.max_retries:
                stats.abandoned_repairs += 1
                continue
            task.next_attempt_s = now + self.backoff_s * 2.0 ** (task.attempts - 1)
            remaining.append(task)
        self._queue = remaining

    def _pick_target(self, ctx, task: _Repair) -> Optional[int]:
        """Closest live non-origin non-holder to the node that lost the
        replica — anti-affine first: when the object's live zone spread is
        below ``min_unique_zones``, candidates in uncovered zones win over
        nearer candidates in zones that already hold it."""
        fstate = getattr(ctx, "fault_state", None)
        topo = ctx.topology
        holders: Set[int] = ctx.state.holders(task.obj)
        covered_zones = self._holder_zones(ctx, task.obj)
        spread_short = len(covered_zones) < self.min_unique_zones
        best = None
        best_key = (1, math.inf, -1)
        for node in range(ctx.num_nodes):
            if node == topo.origin or node in holders:
                continue
            if fstate is not None and not fstate.is_alive(node):
                continue
            lat = (
                fstate.lat(task.lost_node, node)
                if fstate is not None
                else float(topo.latency[task.lost_node][node])
            )
            if math.isinf(lat):
                continue
            new_zone = spread_short and topo.zone_of(node) not in covered_zones
            key = (0 if new_zone else 1, lat, node)
            if key < best_key:
                best, best_key = node, key
        return best

    # -- zone spread -------------------------------------------------------

    def _enforce_spread(self, ctx) -> None:
        """Top up zone diversity for every replicated object (SNIPPETS-style
        ``min_unique_zones`` policy enforcement)."""
        if self.min_unique_zones <= 1 or self.inner.routing == "local":
            return
        stats = self._stats(ctx)
        now = ctx.now_s
        for obj in range(ctx.num_objects):
            if not ctx.state.holders(obj):
                continue  # the inner heuristic chose not to replicate it
            while len(self._holder_zones(ctx, obj)) < self.min_unique_zones:
                if not self._budget_allows(now):
                    return  # backpressure: resume at the next interval
                target = self._pick_spread_target(ctx, obj)
                if target is None or not ctx.create_replica(target, obj):
                    if target is not None:
                        stats.failed_heal_attempts += 1
                    break  # no zone left to add (all down/full) — retry next interval
                self._spend_budget(now)
                stats.healing_creations += 1
                self.inner.on_replicate(target, obj, ctx)

    def _pick_spread_target(self, ctx, obj: int) -> Optional[int]:
        """Live node in an uncovered zone, closest to the origin (ties to
        the lowest node id), that does not already hold the object."""
        fstate = getattr(ctx, "fault_state", None)
        topo = ctx.topology
        holders: Set[int] = ctx.state.holders(obj)
        covered = self._holder_zones(ctx, obj)
        best = None
        best_key = (math.inf, -1)
        for node in range(ctx.num_nodes):
            if node == topo.origin or node in holders:
                continue
            if topo.zone_of(node) in covered:
                continue
            if fstate is not None and not fstate.is_alive(node):
                continue
            key = (float(topo.latency[topo.origin][node]), node)
            if key < best_key:
                best, best_key = node, key
        return best

    def _holder_zones(self, ctx, obj: int) -> Set[int]:
        """Zones with a live copy of ``obj`` — the durable origin included."""
        topo = ctx.topology
        zones = {topo.zone_of(topo.origin)}
        zones.update(topo.zone_of(n) for n in self._live_holders(ctx, obj))
        return zones

    # -- repair budget -----------------------------------------------------

    def _budget_allows(self, now_s: float) -> bool:
        if self.repair_budget is None:
            return True
        window = int(now_s // self.budget_window_s)
        if window != self._budget_window:
            self._budget_window = window
            self._budget_used = 0
        return self._budget_used < self.repair_budget

    def _spend_budget(self, now_s: float) -> None:
        if self.repair_budget is not None:
            self._budget_used += 1

    def _next_window_start(self, now_s: float) -> float:
        return (int(now_s // self.budget_window_s) + 1) * self.budget_window_s

    def _live_holders(self, ctx, obj: int) -> Set[int]:
        fstate = getattr(ctx, "fault_state", None)
        holders = ctx.state.holders(obj)
        if fstate is None:
            return holders
        return {n for n in holders if fstate.is_alive(n)}

    @staticmethod
    def _stats(ctx):
        return ctx.availability
