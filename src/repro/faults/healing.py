"""Graceful-degradation wrapper: re-replicate what the faults destroy.

:class:`HealingPolicy` wraps any :class:`~repro.heuristics.base.PlacementHeuristic`
and reacts to the simulator's failure/recovery hooks (inspired by
production replica-healing services, e.g. Rucio-style declared-copy-count
enforcement):

* when replicas are lost (node crash, silent replica loss) it re-creates
  them on the closest *surviving* node until each affected object has
  ``copies`` live replicas again, with capped retries and exponential
  backoff on failed creations (e.g. the chosen target crashed too);
* when a crashed node recovers, it optionally restores the contents the
  node lost at the crash instant (``restore_on_recovery``), re-warming
  local caches that would otherwise start cold.

For a ``routing == "local"`` inner heuristic a replica on another node can
never serve the wrapped cache's reads, so the crash-repair queue is skipped
and only recovery restoration applies.

Each healed replica is announced to the inner heuristic via its
``on_replicate`` hook so private metadata (LRU orders, frequency sets)
admits it incrementally — a full ``on_adopt`` resync here would rebuild
cache orders from sorted contents and destroy recency information.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.faults.events import FaultEvent, NodeCrash, NodeRecover
from repro.heuristics.base import PlacementHeuristic


@dataclass
class _Repair:
    """One lost replica awaiting re-replication."""

    obj: int
    lost_node: int
    lost_at_s: float
    attempts: int = 0
    next_attempt_s: float = 0.0


class HealingPolicy(PlacementHeuristic):
    """Wrap a heuristic with copy-count-restoring failure recovery.

    Parameters
    ----------
    inner:
        The placement heuristic doing the actual work.
    copies:
        Target number of live replicas per affected object (the origin's
        permanent copy is not counted, matching the cost model).
    max_retries:
        Creation attempts per lost replica before giving up.
    backoff_s:
        Initial retry delay; doubles per failed attempt.
    restore_on_recovery:
        Re-create a recovered node's lost contents (re-warm its cache).
    """

    def __init__(
        self,
        inner: PlacementHeuristic,
        copies: int = 2,
        max_retries: int = 5,
        backoff_s: float = 60.0,
        restore_on_recovery: bool = True,
    ):
        if copies < 1:
            raise ValueError("copies must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff_s <= 0:
            raise ValueError("backoff must be positive")
        self.inner = inner
        self.copies = copies
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.restore_on_recovery = restore_on_recovery
        self._queue: List[_Repair] = []
        self._lost_contents: dict = {}

    # The engine reads these per request; always reflect the inner choice.
    @property
    def routing(self) -> str:  # type: ignore[override]
        return self.inner.routing

    @property
    def period_s(self) -> Optional[float]:  # type: ignore[override]
        return self.inner.period_s

    @property
    def clairvoyant(self) -> bool:  # type: ignore[override]
        return self.inner.clairvoyant

    def describe(self) -> str:
        return f"Healing({self.inner.describe()}, copies={self.copies})"

    # -- delegated lifecycle ----------------------------------------------

    def on_start(self, ctx) -> None:
        self._queue = []
        self._lost_contents = {}
        self.inner.on_start(ctx)

    def on_adopt(self, ctx) -> None:
        self._queue = []
        self._lost_contents = {}
        self.inner.on_adopt(ctx)

    def on_interval(self, index, ctx, past_demand, next_demand) -> None:
        self.inner.on_interval(index, ctx, past_demand, next_demand)

    def on_access(self, request, served_ms, ctx) -> None:
        self.inner.on_access(request, served_ms, ctx)
        self._pump(ctx)

    # -- failure handling --------------------------------------------------

    def on_failure(self, event: FaultEvent, ctx, lost: Sequence[Tuple[int, int]] = ()) -> None:
        self.inner.on_failure(event, ctx, lost)
        if isinstance(event, NodeCrash):
            self._lost_contents[event.node] = sorted(obj for _, obj in lost)
        if self.inner.routing != "local":
            for node, obj in lost:
                self._queue.append(_Repair(obj, node, ctx.now_s, 0, ctx.now_s))
        self._pump(ctx)

    def on_recovery(self, event: FaultEvent, ctx) -> None:
        self.inner.on_recovery(event, ctx)
        if isinstance(event, NodeRecover) and self.restore_on_recovery:
            for obj in self._lost_contents.pop(event.node, []):
                if self.inner.routing != "local" and len(self._live_holders(ctx, obj)) >= self.copies:
                    continue  # already healed elsewhere; don't over-replicate
                if ctx.create_replica(event.node, obj):
                    self._stats(ctx).healing_creations += 1
                    self.inner.on_replicate(event.node, obj, ctx)
        self._pump(ctx)

    # -- the repair queue --------------------------------------------------

    def _pump(self, ctx) -> None:
        """Attempt every due repair; back off on failure, announce successes."""
        if not self._queue:
            return
        now = ctx.now_s
        stats = self._stats(ctx)
        remaining: List[_Repair] = []
        for task in self._queue:
            if task.next_attempt_s > now:
                remaining.append(task)
                continue
            if len(self._live_holders(ctx, task.obj)) >= self.copies:
                continue  # copy count already restored by other activity
            target = self._pick_target(ctx, task)
            if target is not None and ctx.create_replica(target, task.obj):
                stats.healing_creations += 1
                stats.repairs += 1
                stats.repair_time_s += now - task.lost_at_s
                self.inner.on_replicate(target, task.obj, ctx)
                continue
            stats.failed_heal_attempts += 1
            task.attempts += 1
            if task.attempts > self.max_retries:
                stats.abandoned_repairs += 1
                continue
            task.next_attempt_s = now + self.backoff_s * 2.0 ** (task.attempts - 1)
            remaining.append(task)
        self._queue = remaining

    def _pick_target(self, ctx, task: _Repair) -> Optional[int]:
        """Closest live non-origin node (to the node that lost the replica)
        that does not already hold the object."""
        fstate = getattr(ctx, "fault_state", None)
        topo = ctx.topology
        holders: Set[int] = ctx.state.holders(task.obj)
        best = None
        best_key = (math.inf, -1)
        for node in range(ctx.num_nodes):
            if node == topo.origin or node in holders:
                continue
            if fstate is not None and not fstate.is_alive(node):
                continue
            lat = (
                fstate.lat(task.lost_node, node)
                if fstate is not None
                else float(topo.latency[task.lost_node][node])
            )
            if math.isinf(lat):
                continue
            key = (lat, node)
            if key < best_key:
                best, best_key = node, key
        return best

    def _live_holders(self, ctx, obj: int) -> Set[int]:
        fstate = getattr(ctx, "fault_state", None)
        holders = ctx.state.holders(obj)
        if fstate is None:
            return holders
        return {n for n in holders if fstate.is_alive(n)}

    @staticmethod
    def _stats(ctx):
        return ctx.availability
