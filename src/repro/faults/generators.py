"""Composable, seeded fault-schedule generators.

Every generator is deterministic given its seed (per-entity substreams via
``numpy`` seed sequences, so adding a node does not reshuffle the faults of
the others) and returns a :class:`~repro.faults.schedule.FaultSchedule`
that composes with ``+``::

    faults = (
        poisson_crashes(num_nodes=20, duration_s=86400, mtbf_s=6 * 3600, mttr_s=900, seed=3)
        + flaky_link(2, 7, duration_s=86400, mean_up_s=3600, mean_down_s=300, seed=3)
        + correlated_outage([4, 5, 6], start_s=40000, outage_s=1800)
    )
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.faults.events import (
    FaultEvent,
    LinkDegrade,
    LinkRestore,
    NodeCrash,
    NodeRecover,
    ReplicaLoss,
)
from repro.faults.schedule import FaultSchedule


def poisson_crashes(
    num_nodes: int,
    duration_s: float,
    mtbf_s: float,
    mttr_s: float,
    seed: int = 0,
    exclude: Iterable[int] = (0,),
    nodes: Optional[Sequence[int]] = None,
) -> FaultSchedule:
    """Independent crash/recover processes with exponential up/down times.

    Parameters
    ----------
    num_nodes / nodes:
        Crash candidates: ``nodes`` explicitly, or ``range(num_nodes)``
        minus ``exclude`` (default: node 0, the conventional origin).
    duration_s:
        Horizon; crash intervals are clipped to it (a node may end down).
    mtbf_s / mttr_s:
        Mean time between failures (up-time) and mean time to repair
        (down-time), both exponentially distributed.
    seed:
        Base seed; each node draws from substream ``(seed, node)``.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if mtbf_s <= 0 or mttr_s <= 0:
        raise ValueError("mtbf and mttr must be positive")
    candidates = list(nodes) if nodes is not None else [
        n for n in range(num_nodes) if n not in set(exclude)
    ]
    events: List[FaultEvent] = []
    for node in candidates:
        rng = np.random.default_rng([seed, node])
        t = float(rng.exponential(mtbf_s))
        while t < duration_s:
            events.append(NodeCrash(t, node))
            recover_at = t + float(rng.exponential(mttr_s))
            if recover_at >= duration_s:
                break  # down at the end of the run
            events.append(NodeRecover(recover_at, node))
            t = recover_at + float(rng.exponential(mtbf_s))
    return FaultSchedule(events)


def flaky_link(
    a: int,
    b: int,
    duration_s: float,
    mean_up_s: float,
    mean_down_s: float,
    factor: float = math.inf,
    seed: int = 0,
) -> FaultSchedule:
    """A link that alternates between healthy and degraded/partitioned.

    Up and degraded phase lengths are exponential; during a degraded phase
    the link latency is multiplied by ``factor`` (``inf`` partitions it).
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if mean_up_s <= 0 or mean_down_s <= 0:
        raise ValueError("mean phase lengths must be positive")
    rng = np.random.default_rng([seed, min(a, b), max(a, b)])
    events: List[FaultEvent] = []
    t = float(rng.exponential(mean_up_s))
    while t < duration_s:
        events.append(LinkDegrade(t, a, b, factor))
        restore_at = t + float(rng.exponential(mean_down_s))
        if restore_at >= duration_s:
            break
        events.append(LinkRestore(restore_at, a, b))
        t = restore_at + float(rng.exponential(mean_up_s))
    return FaultSchedule(events)


def correlated_outage(
    nodes: Sequence[int], start_s: float, outage_s: float
) -> FaultSchedule:
    """All ``nodes`` crash together at ``start_s`` and recover together.

    Models a shared failure domain (one region, one power feed) — the case
    where independent-failure healing assumptions are most stressed.
    """
    if start_s < 0:
        raise ValueError("start must be non-negative")
    if outage_s <= 0:
        raise ValueError("outage length must be positive")
    if not nodes:
        raise ValueError("need at least one node")
    events: List[FaultEvent] = []
    for node in sorted(set(int(n) for n in nodes)):
        events.append(NodeCrash(start_s, node))
        events.append(NodeRecover(start_s + outage_s, node))
    return FaultSchedule(events)


def zone_outages(
    zones: Sequence[int],
    duration_s: float,
    mtbf_s: float,
    mttr_s: float,
    seed: int = 0,
    exclude: Iterable[int] = (0,),
) -> FaultSchedule:
    """Whole-zone crash/recover processes (region loss, power-feed failure).

    Every distinct zone in the per-node ``zones`` map runs an independent
    exponential up/down process (substream ``(seed, marker, zone)``); when a
    zone goes down, *all* its member nodes crash together and recover
    together — the failure correlation that independent-crash healing
    assumptions are blind to.

    Parameters
    ----------
    zones:
        Per-node zone ids (one entry per node); validated via
        :class:`~repro.errors.ValidationError`.
    exclude:
        Nodes never crashed (default: node 0, the conventional origin).
        A zone whose members are all excluded generates nothing.
    """
    from repro.topology.zones import validate_zone_map

    zone_map = validate_zone_map(zones, len(zones))
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if mtbf_s <= 0 or mttr_s <= 0:
        raise ValueError("mtbf and mttr must be positive")
    excluded = set(exclude)
    events: List[FaultEvent] = []
    for zid in sorted(int(z) for z in np.unique(zone_map)):
        members = [
            int(n) for n in np.flatnonzero(zone_map == zid) if int(n) not in excluded
        ]
        if not members:
            continue
        # The 104729 marker separates zone substreams from the per-node
        # streams of poisson_crashes at the same base seed.
        rng = np.random.default_rng([seed, 104729, zid])
        t = float(rng.exponential(mtbf_s))
        while t < duration_s:
            for node in members:
                events.append(NodeCrash(t, node))
            recover_at = t + float(rng.exponential(mttr_s))
            if recover_at >= duration_s:
                break  # the zone ends the run down
            for node in members:
                events.append(NodeRecover(recover_at, node))
            t = recover_at + float(rng.exponential(mtbf_s))
    return FaultSchedule(events)


def zone_partition(
    zones: Sequence[int],
    zone: int,
    start_s: float,
    outage_s: float,
    duration_s: Optional[float] = None,
    every_s: Optional[float] = None,
    factor: float = math.inf,
) -> FaultSchedule:
    """Partition one zone from the rest of the system (zone-correlated links).

    Every cross-zone link touching ``zone`` degrades by ``factor`` (default
    ``inf`` — a clean partition) during ``[start_s, start_s + outage_s)``.
    Intra-zone links stay healthy, so members keep serving each other — the
    scenario where replica spread across zones decides availability.

    With ``every_s`` the partition recurs (a sustained fault storm): windows
    open at ``start_s + k * every_s`` until ``duration_s``.
    """
    from repro.topology.zones import validate_zone_map

    zone_map = validate_zone_map(zones, len(zones))
    members = [int(n) for n in np.flatnonzero(zone_map == int(zone))]
    if not members:
        from repro.errors import ValidationError

        raise ValidationError(f"zone {zone} has no members in the zone map")
    outsiders = [int(n) for n in np.flatnonzero(zone_map != int(zone))]
    if start_s < 0:
        raise ValueError("start must be non-negative")
    if outage_s <= 0:
        raise ValueError("outage length must be positive")
    if every_s is not None:
        if every_s <= outage_s:
            raise ValueError("recurrence period must exceed the outage length")
        if duration_s is None:
            raise ValueError("recurring partitions need a duration")
    starts = [start_s]
    if every_s is not None:
        starts = list(np.arange(start_s, duration_s, every_s))
    events: List[FaultEvent] = []
    for t in starts:
        end = t + outage_s
        if duration_s is not None:
            end = min(end, duration_s)
        for a in members:
            for b in outsiders:
                events.append(LinkDegrade(float(t), a, b, factor))
                events.append(LinkRestore(float(end), a, b))
    return FaultSchedule(events)


def random_replica_loss(
    num_nodes: int,
    num_objects: int,
    duration_s: float,
    rate_per_hour: float,
    seed: int = 0,
    exclude: Iterable[int] = (0,),
) -> FaultSchedule:
    """Silent single-replica losses at a Poisson rate (bit rot, disk death)."""
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    if rate_per_hour < 0:
        raise ValueError("rate must be non-negative")
    candidates = [n for n in range(num_nodes) if n not in set(exclude)]
    if not candidates:
        raise ValueError("no loss-eligible nodes")
    rng = np.random.default_rng([seed, num_nodes, num_objects])
    count = int(rng.poisson(rate_per_hour * duration_s / 3600.0))
    times = np.sort(rng.uniform(0.0, duration_s, size=count))
    events: List[FaultEvent] = [
        ReplicaLoss(float(t), int(rng.choice(candidates)), int(rng.integers(num_objects)))
        for t in times
    ]
    return FaultSchedule(events)
