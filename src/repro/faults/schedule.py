"""Deterministic fault schedules.

A :class:`FaultSchedule` is an immutable-after-validation, time-sorted list
of :mod:`~repro.faults.events` that the simulator consumes in order.  The
constructor enforces structural sanity (crash/recover alternation per node,
restore-only-what-is-degraded per link); :meth:`FaultSchedule.validate_for`
additionally checks a schedule against a concrete topology — ids in range
and nothing targeting the origin, which the paper's model assumes durable.

Schedules compose with ``+`` (or :meth:`merge`), so independent generators
(:mod:`~repro.faults.generators`) can be layered::

    faults = poisson_crashes(...) + flaky_link(2, 5, ...)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.errors import ValidationError
from repro.faults.events import (
    FaultEvent,
    LinkDegrade,
    LinkRestore,
    NodeCrash,
    NodeRecover,
    ReplicaLoss,
)


@dataclass
class FaultSchedule:
    """A validated, time-ordered sequence of fault events."""

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        for ev in self.events:
            if not isinstance(ev, FaultEvent):
                raise TypeError(f"not a FaultEvent: {ev!r}")
        self.events = sorted(self.events, key=lambda e: e.sort_key())
        self._check_structure()

    # -- validation --------------------------------------------------------

    def _check_structure(self) -> None:
        down: Set[int] = set()
        degraded: Set[Tuple[int, int]] = set()
        for ev in self.events:
            if isinstance(ev, NodeCrash):
                if ev.node in down:
                    raise ValueError(
                        f"overlapping crash intervals for node {ev.node} "
                        f"(second crash at t={ev.time_s}s before a recover)"
                    )
                down.add(ev.node)
            elif isinstance(ev, NodeRecover):
                if ev.node not in down:
                    raise ValueError(
                        f"recover of node {ev.node} at t={ev.time_s}s without a preceding crash"
                    )
                down.discard(ev.node)
            elif isinstance(ev, LinkDegrade):
                degraded.add(ev._ids())  # re-degrading an already-degraded link is allowed
            elif isinstance(ev, LinkRestore):
                if ev._ids() not in degraded:
                    raise ValueError(
                        f"restore of link {ev._ids()} at t={ev.time_s}s without a degradation"
                    )
                degraded.discard(ev._ids())

    def validate_for(self, topology) -> "FaultSchedule":
        """Check ids against a topology; the origin must stay untouched.

        Returns ``self`` so callers can chain.  Link events may touch the
        origin (a flaky WAN link to headquarters is physical); node crashes
        and replica losses at the origin contradict the paper's durable-origin
        model and are rejected.  Violations raise
        :class:`~repro.errors.ValidationError` (a :class:`ValueError`
        subclass), matching the topology/trace loader contract.
        """
        n = topology.num_nodes
        origin = topology.origin
        for ev in self.events:
            if isinstance(ev, (LinkDegrade, LinkRestore)):
                for node in (ev.a, ev.b):
                    if node >= n:
                        raise ValidationError(
                            f"link endpoint {node} out of range for {n} nodes"
                        )
            elif isinstance(ev, (NodeCrash, NodeRecover, ReplicaLoss)):
                if ev.node >= n:
                    raise ValidationError(f"node {ev.node} out of range for {n} nodes")
                if ev.node == origin:
                    raise ValidationError(
                        f"fault schedule targets the origin node {origin}; "
                        "the origin is assumed durable"
                    )
        return self

    # -- queries -----------------------------------------------------------

    @property
    def empty(self) -> bool:
        return not self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def crash_intervals(self) -> Dict[int, List[Tuple[float, float]]]:
        """Per-node ``[(crash_s, recover_s), ...]``; open intervals end at +inf."""
        out: Dict[int, List[Tuple[float, float]]] = {}
        open_at: Dict[int, float] = {}
        for ev in self.events:
            if isinstance(ev, NodeCrash):
                open_at[ev.node] = ev.time_s
            elif isinstance(ev, NodeRecover):
                out.setdefault(ev.node, []).append((open_at.pop(ev.node), ev.time_s))
        for node, start in sorted(open_at.items()):
            out.setdefault(node, []).append((start, float("inf")))
        return out

    def slice(self, start_s: float, end_s: float) -> "FaultSchedule":
        """The ``[start_s, end_s)`` window as a standalone schedule at t=0.

        Open state is carried in: a node down at ``start_s`` (crashed before
        the window, recovering inside or after it) enters as a crash at
        t=0, and likewise for active link degradations — so epoch-sliced
        replays (:mod:`repro.simulator.continuous`) see the same world the
        un-sliced run would.  Events at or after ``end_s`` are dropped; a
        carried-in fault whose recovery falls outside the window simply
        stays open.
        """
        if not 0 <= start_s < end_s:
            raise ValueError("need 0 <= start_s < end_s")
        down: Set[int] = set()
        degraded: Dict[Tuple[int, int], FaultEvent] = {}
        window: List[FaultEvent] = []
        for ev in self.events:
            if ev.time_s < start_s:
                if isinstance(ev, NodeCrash):
                    down.add(ev.node)
                elif isinstance(ev, NodeRecover):
                    down.discard(ev.node)
                elif isinstance(ev, LinkDegrade):
                    degraded[ev._ids()] = ev
                elif isinstance(ev, LinkRestore):
                    degraded.pop(ev._ids(), None)
            elif ev.time_s < end_s:
                window.append(dataclasses.replace(ev, time_s=ev.time_s - start_s))
            else:
                break  # events are time-sorted
        # A carried-in fault healing exactly at the window start would sort
        # its t=0 recovery *before* the t=0 carried crash (recoveries-first
        # tie-break); the pair is a zero-length outage — drop both.
        kept: List[FaultEvent] = []
        for ev in window:
            if ev.time_s == 0.0 and isinstance(ev, NodeRecover) and ev.node in down:
                down.discard(ev.node)
                continue
            if ev.time_s == 0.0 and isinstance(ev, LinkRestore) and ev._ids() in degraded:
                degraded.pop(ev._ids())
                continue
            kept.append(ev)
        carried: List[FaultEvent] = [NodeCrash(0.0, node) for node in sorted(down)]
        carried.extend(
            dataclasses.replace(ev, time_s=0.0) for _, ev in sorted(degraded.items())
        )
        return FaultSchedule(carried + kept)

    # -- composition -------------------------------------------------------

    def __add__(self, other: "FaultSchedule") -> "FaultSchedule":
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return FaultSchedule(self.events + other.events)

    @staticmethod
    def merge(schedules: Iterable["FaultSchedule"]) -> "FaultSchedule":
        events: List[FaultEvent] = []
        for sched in schedules:
            events.extend(sched.events)
        return FaultSchedule(events)

    def __repr__(self) -> str:
        kinds: Dict[str, int] = {}
        for ev in self.events:
            kinds[type(ev).__name__] = kinds.get(type(ev).__name__, 0) + 1
        inner = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        return f"FaultSchedule({len(self.events)} events: {inner})"
