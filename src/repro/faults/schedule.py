"""Deterministic fault schedules.

A :class:`FaultSchedule` is an immutable-after-validation, time-sorted list
of :mod:`~repro.faults.events` that the simulator consumes in order.  The
constructor enforces structural sanity (crash/recover alternation per node,
restore-only-what-is-degraded per link); :meth:`FaultSchedule.validate_for`
additionally checks a schedule against a concrete topology — ids in range
and nothing targeting the origin, which the paper's model assumes durable.

Schedules compose with ``+`` (or :meth:`merge`), so independent generators
(:mod:`~repro.faults.generators`) can be layered::

    faults = poisson_crashes(...) + flaky_link(2, 5, ...)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.faults.events import (
    FaultEvent,
    LinkDegrade,
    LinkRestore,
    NodeCrash,
    NodeRecover,
    ReplicaLoss,
)


@dataclass
class FaultSchedule:
    """A validated, time-ordered sequence of fault events."""

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        for ev in self.events:
            if not isinstance(ev, FaultEvent):
                raise TypeError(f"not a FaultEvent: {ev!r}")
        self.events = sorted(self.events, key=lambda e: e.sort_key())
        self._check_structure()

    # -- validation --------------------------------------------------------

    def _check_structure(self) -> None:
        down: Set[int] = set()
        degraded: Set[Tuple[int, int]] = set()
        for ev in self.events:
            if isinstance(ev, NodeCrash):
                if ev.node in down:
                    raise ValueError(
                        f"overlapping crash intervals for node {ev.node} "
                        f"(second crash at t={ev.time_s}s before a recover)"
                    )
                down.add(ev.node)
            elif isinstance(ev, NodeRecover):
                if ev.node not in down:
                    raise ValueError(
                        f"recover of node {ev.node} at t={ev.time_s}s without a preceding crash"
                    )
                down.discard(ev.node)
            elif isinstance(ev, LinkDegrade):
                degraded.add(ev._ids())  # re-degrading an already-degraded link is allowed
            elif isinstance(ev, LinkRestore):
                if ev._ids() not in degraded:
                    raise ValueError(
                        f"restore of link {ev._ids()} at t={ev.time_s}s without a degradation"
                    )
                degraded.discard(ev._ids())

    def validate_for(self, topology) -> "FaultSchedule":
        """Check ids against a topology; the origin must stay untouched.

        Returns ``self`` so callers can chain.  Link events may touch the
        origin (a flaky WAN link to headquarters is physical); node crashes
        and replica losses at the origin contradict the paper's durable-origin
        model and are rejected.
        """
        n = topology.num_nodes
        origin = topology.origin
        for ev in self.events:
            if isinstance(ev, (LinkDegrade, LinkRestore)):
                for node in (ev.a, ev.b):
                    if node >= n:
                        raise ValueError(f"link endpoint {node} out of range for {n} nodes")
            elif isinstance(ev, (NodeCrash, NodeRecover, ReplicaLoss)):
                if ev.node >= n:
                    raise ValueError(f"node {ev.node} out of range for {n} nodes")
                if ev.node == origin:
                    raise ValueError(
                        f"fault schedule targets the origin node {origin}; "
                        "the origin is assumed durable"
                    )
        return self

    # -- queries -----------------------------------------------------------

    @property
    def empty(self) -> bool:
        return not self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def crash_intervals(self) -> Dict[int, List[Tuple[float, float]]]:
        """Per-node ``[(crash_s, recover_s), ...]``; open intervals end at +inf."""
        out: Dict[int, List[Tuple[float, float]]] = {}
        open_at: Dict[int, float] = {}
        for ev in self.events:
            if isinstance(ev, NodeCrash):
                open_at[ev.node] = ev.time_s
            elif isinstance(ev, NodeRecover):
                out.setdefault(ev.node, []).append((open_at.pop(ev.node), ev.time_s))
        for node, start in sorted(open_at.items()):
            out.setdefault(node, []).append((start, float("inf")))
        return out

    # -- composition -------------------------------------------------------

    def __add__(self, other: "FaultSchedule") -> "FaultSchedule":
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return FaultSchedule(self.events + other.events)

    @staticmethod
    def merge(schedules: Iterable["FaultSchedule"]) -> "FaultSchedule":
        events: List[FaultEvent] = []
        for sched in schedules:
            events.extend(sched.events)
        return FaultSchedule(events)

    def __repr__(self) -> str:
        kinds: Dict[str, int] = {}
        for ev in self.events:
            kinds[type(ev).__name__] = kinds.get(type(ev).__name__, 0) + 1
        inner = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        return f"FaultSchedule({len(self.events)} events: {inner})"
