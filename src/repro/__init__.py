"""repro — reproduction of *Choosing Replica Placement Heuristics for
Wide-Area Systems* (Karlsson & Karamanolis, ICDCS 2004).

The package derives per-class lower bounds on replication cost for a given
system topology, workload and latency performance goal, and validates them
against trace-driven simulations of actual placement heuristics.

Quickstart::

    from repro import (
        MCPerfProblem, QoSGoal, compute_lower_bound, get_class,
        as_level_topology, web_workload, DemandMatrix,
    )

    topo = as_level_topology(num_nodes=10, seed=1)
    trace = web_workload(num_nodes=10, num_objects=50, requests_scale=0.01)
    problem = MCPerfProblem(
        topology=topo,
        demand=DemandMatrix.from_trace(trace, num_intervals=8),
        goal=QoSGoal(tlat_ms=150.0, fraction=0.99),
    )
    general = compute_lower_bound(problem)
    caching = compute_lower_bound(problem, get_class("caching").properties)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro.core import (
    AverageLatencyGoal,
    CostModel,
    DeploymentPlan,
    FIGURE1_CLASSES,
    Formulation,
    GoalScope,
    HeuristicClass,
    HeuristicProperties,
    Knowledge,
    LowerBoundResult,
    MCPerfProblem,
    QoSGoal,
    ReplicaConstraint,
    RoundingResult,
    Routing,
    STANDARD_CLASSES,
    SelectionReport,
    StorageConstraint,
    build_formulation,
    compute_lower_bound,
    get_class,
    plan_deployment,
    render_table3,
    round_solution,
    select_heuristic,
    table3,
)
from repro.runner import (
    BoundTask,
    ExperimentRunner,
    HeuristicSpec,
    ResultCache,
    ResumeState,
    RetryPolicy,
    SimulateTask,
    TaskFailure,
    make_runner,
    run_tasks,
)
from repro.topology import Topology, as_level_topology
from repro.workload import (
    DemandMatrix,
    Request,
    Trace,
    group_workload,
    web_workload,
)

__version__ = "1.0.0"

__all__ = [
    "AverageLatencyGoal",
    "BoundTask",
    "CostModel",
    "DeploymentPlan",
    "DemandMatrix",
    "ExperimentRunner",
    "FIGURE1_CLASSES",
    "Formulation",
    "GoalScope",
    "HeuristicClass",
    "HeuristicProperties",
    "HeuristicSpec",
    "Knowledge",
    "LowerBoundResult",
    "MCPerfProblem",
    "QoSGoal",
    "ReplicaConstraint",
    "Request",
    "ResultCache",
    "ResumeState",
    "RetryPolicy",
    "RoundingResult",
    "Routing",
    "STANDARD_CLASSES",
    "SelectionReport",
    "SimulateTask",
    "StorageConstraint",
    "TaskFailure",
    "Topology",
    "Trace",
    "as_level_topology",
    "build_formulation",
    "compute_lower_bound",
    "get_class",
    "group_workload",
    "make_runner",
    "plan_deployment",
    "render_table3",
    "round_solution",
    "run_tasks",
    "select_heuristic",
    "table3",
    "web_workload",
    "__version__",
]
