"""The placement-heuristic interface driven by the simulator.

A heuristic reacts to two kinds of events:

* ``on_access`` — fired for every request, *after* the request was served
  (caching heuristics place/evict here; the paper's per-access evaluation).
* ``on_interval`` — fired at each period boundary for periodic heuristics
  (centralized placement algorithms), with the demand observed in past
  periods and, for clairvoyant/proactive variants, the next period's demand.

Each heuristic declares its ``routing`` scope — ``"local"`` (serve from own
storage, miss to origin) or ``"global"`` (serve from any replica within the
threshold) — which the simulator uses to decide whether a request was served
within the latency threshold.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.events import FaultEvent
    from repro.simulator.engine import SimulationContext
    from repro.workload.trace import Request


class PlacementHeuristic(abc.ABC):
    """Base class for placement heuristics."""

    #: Routing scope: "local" or "global".
    routing: str = "global"
    #: Period between on_interval invocations; None = per-access only.
    period_s: Optional[float] = None
    #: Whether on_interval receives the coming period's demand (prefetching).
    clairvoyant: bool = False

    @property
    def name(self) -> str:
        return type(self).__name__

    def on_start(self, ctx: "SimulationContext") -> None:
        """Called once before the trace starts."""

    def on_adopt(self, ctx: "SimulationContext") -> None:
        """Called when this heuristic takes over mid-run (adaptive selection).

        The replica state may already hold objects placed by a predecessor;
        heuristics that track their own metadata (e.g. caches) should adopt
        or evict them here.  The default just (re-)initializes.
        """
        self.on_start(ctx)

    def on_interval(
        self,
        index: int,
        ctx: "SimulationContext",
        past_demand: np.ndarray,
        next_demand: Optional[np.ndarray],
    ) -> None:
        """Called at each period boundary (periodic heuristics only).

        Parameters
        ----------
        index:
            The period that is about to begin (0-based).
        past_demand:
            ``(N, K)`` read counts of the period that just ended (zeros for
            index 0).
        next_demand:
            ``(N, K)`` read counts of the coming period — only provided when
            the heuristic declares itself ``clairvoyant``.
        """

    def on_access(self, request: "Request", served_ms: float, ctx: "SimulationContext") -> None:
        """Called after every request is served.

        ``served_ms`` is the latency the request experienced under this
        heuristic's routing scope.
        """

    def on_failure(
        self,
        event: "FaultEvent",
        ctx: "SimulationContext",
        lost: Sequence[Tuple[int, int]] = (),
    ) -> None:
        """Called after a fault event was applied to the replica state.

        ``lost`` lists the ``(node, obj)`` replicas the event destroyed
        (already removed from the state — storage was charged up to the
        fault instant).  The default is a no-op; heuristics that keep
        private placement metadata should purge the lost entries here, and
        graceful-degradation wrappers (:class:`repro.faults.healing.HealingPolicy`)
        re-replicate them.
        """

    def on_recovery(self, event: "FaultEvent", ctx: "SimulationContext") -> None:
        """Called after a recovery event (node back up, link restored).

        The recovered node comes back *empty*; the default is a no-op.
        """

    def on_replicate(self, node: int, obj: int, ctx: "SimulationContext") -> None:
        """Called when an external actor creates a replica at ``node``.

        Healing policies re-replicate lost objects outside the heuristic's
        own decisions; caches should admit the new replica into their
        metadata here (evicting within capacity) so it is neither leaked
        nor double-fetched.  Centralized periodic heuristics can ignore it
        — they reconcile placements wholesale at the next boundary.  The
        default is a no-op.
        """

    def describe(self) -> str:
        """Human-readable parameterization (for reports)."""
        return self.name
