"""Greedy global placement (storage-constrained, Kangasharju-style [4]).

A centralized heuristic that runs periodically: given the demand observed in
the last period and a fixed per-node storage capacity, it greedily fills the
caches with the placements that cover the most demand within the latency
threshold (global routing — a replica anywhere within the threshold serves a
node).  This is the paper's recommended heuristic for the WEB workload.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from repro.heuristics.base import PlacementHeuristic


class GreedyGlobalPlacement(PlacementHeuristic):
    """Periodic storage-constrained greedy placement.

    Parameters
    ----------
    capacity:
        Objects each node may store.
    period_s:
        Re-placement period (paper configurations: hourly).
    tlat_ms:
        Latency threshold used for coverage decisions; taken from the
        simulation context at start when omitted.
    clairvoyant:
        Plan with the coming period's demand instead of the last one
        (prefetching/proactive variant).
    history_window:
        How many past periods of demand to plan with; ``None`` (default)
        accumulates all history — the Table-3 storage-constrained class has
        multi-interval history.  ``1`` reacts to the last period only.
    """

    routing = "global"

    def __init__(
        self,
        capacity: int,
        period_s: float = 3600.0,
        tlat_ms: Optional[float] = None,
        clairvoyant: bool = False,
        history_window: Optional[int] = None,
    ):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if period_s <= 0:
            raise ValueError("period must be positive")
        if history_window is not None and history_window < 1:
            raise ValueError("history_window must be >= 1 (or None for all history)")
        self.capacity = capacity
        self.period_s = period_s
        self.tlat_ms = tlat_ms
        self.clairvoyant = clairvoyant
        self.history_window = history_window
        self._history: List[np.ndarray] = []
        self._last_demand: Optional[np.ndarray] = None

    def describe(self) -> str:
        kind = "proactive" if self.clairvoyant else "reactive"
        hist = "all" if self.history_window is None else str(self.history_window)
        return f"GreedyGlobal(capacity={self.capacity}, {kind}, hist={hist})"

    def on_start(self, ctx) -> None:
        if self.tlat_ms is None:
            self.tlat_ms = ctx.tlat_ms
        self._reach = (ctx.topology.latency <= self.tlat_ms).astype(bool)
        self._origin = ctx.topology.origin
        self._history = []
        self._last_demand = None

    def on_adopt(self, ctx) -> None:
        """Take over mid-run keeping the accumulated demand history.

        Pre-existing replicas (placed by a predecessor or a healing policy)
        are reconciled at the next period boundary's re-placement.
        """
        history = self._history
        last = self._last_demand
        self.on_start(ctx)
        self._history = history
        self._last_demand = last

    def _windowed_demand(self, past_demand: np.ndarray) -> np.ndarray:
        """Demand summed over the configured history window."""
        self._history.append(past_demand)
        if self.history_window is not None:
            self._history = self._history[-self.history_window :]
        return np.sum(self._history, axis=0)

    # -- the greedy core ---------------------------------------------------------

    def plan(self, demand: np.ndarray, num_nodes: int) -> List[Set[int]]:
        """Choose per-node contents for one period.

        Greedily adds the placement with the largest uncovered demand gain
        until caches are full or no placement helps, then pads remaining
        capacity with the locally hottest objects (a full cache costs the
        same and can only help).
        """
        num_objects = demand.shape[1]
        placements: List[Set[int]] = [set() for _ in range(num_nodes)]
        if self.capacity == 0:
            return placements
        uncovered = demand.copy().astype(float)
        # Demand already satisfied by the origin is not worth replicating for.
        for nd in range(num_nodes):
            if self._reach[nd][self._origin]:
                uncovered[nd, :] = 0.0
        # gains[ns, k]: demand newly covered by placing k at ns.
        gains = self._reach[:num_nodes, :num_nodes].T.astype(float) @ uncovered
        open_nodes = [ns for ns in range(num_nodes) if ns != self._origin]
        while True:
            best_gain = 0.0
            best: Optional[Tuple[int, int]] = None
            for ns in open_nodes:
                if len(placements[ns]) >= self.capacity:
                    continue
                k = int(np.argmax(gains[ns]))
                if gains[ns][k] > best_gain:
                    best_gain = float(gains[ns][k])
                    best = (ns, k)
            if best is None or best_gain <= 0.0:
                break
            ns, k = best
            placements[ns].add(k)
            # Demand of k at nodes now covered by ns stops contributing.
            newly = self._reach[:num_nodes, ns] & (uncovered[:, k] > 0)
            if newly.any():
                delta = np.where(newly, uncovered[:, k], 0.0)
                uncovered[:, k] -= delta
                gains[:, k] -= self._reach[:num_nodes, :num_nodes].T.astype(float) @ delta
            gains[ns][k] = 0.0

        # Pad with locally hottest objects — capacity is paid for anyway.
        order = np.argsort(-demand, axis=1)
        for ns in open_nodes:
            for k in order[ns]:
                if len(placements[ns]) >= self.capacity:
                    break
                if demand[ns][k] <= 0:
                    break
                placements[ns].add(int(k))
        return placements

    def on_interval(self, index, ctx, past_demand, next_demand) -> None:
        if self.clairvoyant and next_demand is not None:
            demand = next_demand
        else:
            demand = self._windowed_demand(past_demand)
        if float(demand.sum()) <= 0.0:
            # A window with no observed demand carries no signal; keep the
            # current (possibly adopted) placement instead of dropping it.
            return
        self._last_demand = demand
        self._apply_plan(ctx, demand)

    def on_recovery(self, event, ctx) -> None:
        """Refill a recovered node immediately instead of waiting a period."""
        from repro.faults.events import NodeRecover

        if isinstance(event, NodeRecover) and self._last_demand is not None:
            self._apply_plan(ctx, self._last_demand)

    def _apply_plan(self, ctx, demand: np.ndarray) -> None:
        placements = self.plan(demand, ctx.num_nodes)
        for ns in range(ctx.num_nodes):
            if ns == self._origin:
                continue
            current = ctx.state.contents(ns)
            target = placements[ns]
            for obj in current - target:
                ctx.drop_replica(ns, obj)
            for obj in target - current:
                ctx.create_replica(ns, obj)
