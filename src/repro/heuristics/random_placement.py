"""Random placement baseline.

Places a fixed number of replicas of each object on uniformly random nodes
at the start of each period.  Exists as the sanity baseline every informed
heuristic should beat.
"""

from __future__ import annotations

from typing import Optional, Set

import numpy as np

from repro.heuristics.base import PlacementHeuristic


class RandomPlacement(PlacementHeuristic):
    """Period-wise uniform-random replica placement.

    Parameters
    ----------
    replicas_per_object:
        Replicas of each active object per period.
    period_s:
        Re-placement period; replicas persist within a period.
    reshuffle:
        Re-draw locations each period (True) or keep the initial draw.
    seed:
        RNG seed (deterministic baselines make benchmarks reproducible).
    """

    routing = "global"

    def __init__(
        self,
        replicas_per_object: int,
        period_s: float = 3600.0,
        reshuffle: bool = False,
        seed: int = 0,
    ):
        if replicas_per_object < 0:
            raise ValueError("replicas_per_object must be non-negative")
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.replicas = replicas_per_object
        self.period_s = period_s
        self.reshuffle = reshuffle
        self.seed = seed
        self._rng: Optional[np.random.Generator] = None
        self._placed_once = False

    def describe(self) -> str:
        return f"Random(R={self.replicas}, reshuffle={self.reshuffle})"

    def on_start(self, ctx) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._placed_once = False

    def on_interval(self, index, ctx, past_demand, next_demand) -> None:
        if self.replicas == 0:
            return
        if self._placed_once and not self.reshuffle:
            return
        num_nodes = ctx.num_nodes
        candidates = [ns for ns in range(num_nodes) if ns != ctx.topology.origin]
        draw = min(self.replicas, len(candidates))
        targets = [set() for _ in range(num_nodes)]
        for k in range(ctx.num_objects):
            for ns in self._rng.choice(candidates, size=draw, replace=False):
                targets[int(ns)].add(k)
        for ns in candidates:
            current: Set[int] = ctx.state.contents(ns)
            for obj in current - targets[ns]:
                ctx.drop_replica(ns, obj)
            for obj in targets[ns] - current:
                ctx.create_replica(ns, obj)
        self._placed_once = True
