"""Cooperative caching.

Like local caching, but nodes know what nearby nodes store and can serve
reads from any replica within the latency threshold (global routing).  The
insertion policy avoids duplicating an object that is already available
nearby — the defining optimization of cooperative schemes [7, 19].
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from repro.heuristics.base import PlacementHeuristic


class CooperativeLRUCaching(PlacementHeuristic):
    """LRU caches with cooperative lookup and duplicate avoidance.

    On a miss the object is inserted locally only if no replica is already
    reachable within ``dedupe_tlat_ms`` (defaults to the simulation's
    threshold at ``on_start``); remote hits refresh nothing.
    """

    routing = "global"

    def __init__(self, capacity: int, dedupe: bool = True):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self.dedupe = dedupe
        self._lru: List[OrderedDict] = []
        self._tlat_ms = 0.0

    def describe(self) -> str:
        return f"CoopLRU(capacity={self.capacity}, dedupe={self.dedupe})"

    def on_start(self, ctx) -> None:
        self._lru = [OrderedDict() for _ in range(ctx.num_nodes)]
        self._tlat_ms = ctx.tlat_ms

    def on_adopt(self, ctx) -> None:
        """Adopt predecessor replicas, evicting beyond capacity."""
        self.on_start(ctx)
        for node in range(ctx.num_nodes):
            if node == ctx.topology.origin:
                continue
            for obj in sorted(ctx.state.contents(node)):
                if self.capacity and len(self._lru[node]) < self.capacity:
                    self._lru[node][obj] = True
                else:
                    ctx.drop_replica(node, obj)

    def on_failure(self, event, ctx, lost=()) -> None:
        """Forget lost replicas so cooperative lookups stop assuming them."""
        for node, obj in lost:
            self._lru[node].pop(obj, None)

    def on_replicate(self, node, obj, ctx) -> None:
        """Admit an externally-created (healed) replica as most-recent."""
        if self.capacity == 0 or node == ctx.topology.origin:
            return
        cache = self._lru[node]
        if obj in cache:
            cache.move_to_end(obj)
            return
        if len(cache) >= self.capacity:
            victim, _ = cache.popitem(last=False)
            ctx.drop_replica(node, victim)
        cache[obj] = True

    def on_access(self, request, served_ms, ctx) -> None:
        if self.capacity == 0:
            return
        node, obj = request.node, request.obj
        cache = self._lru[node]
        if obj in cache:
            cache.move_to_end(obj)
            return
        if self.dedupe and ctx.state.covered(node, obj, self._tlat_ms, scope="global"):
            # A nearby replica already serves this node within the threshold;
            # don't burn local capacity on a duplicate.
            return
        if len(cache) >= self.capacity:
            victim, _ = cache.popitem(last=False)
            ctx.drop_replica(node, victim)
        cache[obj] = True
        ctx.create_replica(node, obj)
