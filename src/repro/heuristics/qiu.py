"""Replica-constrained greedy placement (Qiu, Padmanabhan & Voelker [11]).

A centralized heuristic that maintains a fixed number of replicas per object
(the same number for every object — the paper's uniform replica constraint)
and periodically re-places them greedily: each object's replicas go to the
nodes that cover the most of its demand within the latency threshold.  This
is the paper's recommended heuristic for the GROUP workload.
"""

from __future__ import annotations

from typing import List, Optional, Set

import numpy as np

from repro.heuristics.base import PlacementHeuristic


class QiuGreedyPlacement(PlacementHeuristic):
    """Periodic replica-constrained greedy placement.

    Parameters
    ----------
    replicas_per_object:
        The fixed replication factor R (0 = origin only).
    period_s:
        Re-placement period.
    tlat_ms:
        Coverage threshold; from the simulation context when omitted.
    clairvoyant:
        Plan with the coming period's demand (proactive variant).
    place_inactive:
        Also place replicas of objects with no demand in the planning
        window (the strict reading of the replica constraint).  Off by
        default: replicas without demand only add cost.
    history_window:
        How many past periods of demand to plan with; ``None`` (default)
        accumulates all history — the Table-3 replica-constrained class has
        multi-interval history.
    """

    routing = "global"

    def __init__(
        self,
        replicas_per_object: int,
        period_s: float = 3600.0,
        tlat_ms: Optional[float] = None,
        clairvoyant: bool = False,
        place_inactive: bool = False,
        history_window: Optional[int] = None,
    ):
        if replicas_per_object < 0:
            raise ValueError("replicas_per_object must be non-negative")
        if period_s <= 0:
            raise ValueError("period must be positive")
        if history_window is not None and history_window < 1:
            raise ValueError("history_window must be >= 1 (or None for all history)")
        self.replicas = replicas_per_object
        self.period_s = period_s
        self.tlat_ms = tlat_ms
        self.clairvoyant = clairvoyant
        self.place_inactive = place_inactive
        self.history_window = history_window
        self._history: List[np.ndarray] = []

    def describe(self) -> str:
        kind = "proactive" if self.clairvoyant else "reactive"
        return f"QiuGreedy(R={self.replicas}, {kind})"

    def on_start(self, ctx) -> None:
        if self.tlat_ms is None:
            self.tlat_ms = ctx.tlat_ms
        self._reach = (ctx.topology.latency <= self.tlat_ms).astype(bool)
        self._origin = ctx.topology.origin
        self._history = []

    def on_adopt(self, ctx) -> None:
        """Take over mid-run keeping the accumulated demand history.

        Pre-existing replicas are reconciled at the next re-placement.
        """
        history = self._history
        self.on_start(ctx)
        self._history = history

    def _windowed_demand(self, past_demand: np.ndarray) -> np.ndarray:
        """Demand summed over the configured history window."""
        self._history.append(past_demand)
        if self.history_window is not None:
            self._history = self._history[-self.history_window :]
        return np.sum(self._history, axis=0)

    def plan_object(self, demand_k: np.ndarray, num_nodes: int) -> Set[int]:
        """Greedy replica locations for one object given its per-node demand."""
        chosen: Set[int] = set()
        if self.replicas == 0:
            return chosen
        uncovered = demand_k.astype(float).copy()
        uncovered[self._reach[:num_nodes, self._origin]] = 0.0
        candidates = [ns for ns in range(num_nodes) if ns != self._origin]
        for _ in range(min(self.replicas, len(candidates))):
            gains = [
                (float(uncovered[self._reach[:num_nodes, ns]].sum()), -ns)
                for ns in candidates
                if ns not in chosen
            ]
            if not gains:
                break
            best_gain, neg_ns = max(gains)
            ns = -neg_ns
            if best_gain <= 0.0 and not self.place_inactive and chosen:
                break
            if best_gain <= 0.0 and not self.place_inactive and not chosen:
                # No coverage benefit at all; skip this object entirely.
                break
            chosen.add(ns)
            uncovered[self._reach[:num_nodes, ns]] = 0.0
        return chosen

    def on_interval(self, index, ctx, past_demand, next_demand) -> None:
        if self.clairvoyant and next_demand is not None:
            demand = next_demand
        else:
            demand = self._windowed_demand(past_demand)
        if float(demand.sum()) <= 0.0 and not self.place_inactive:
            # A window with no observed demand carries no signal; keep the
            # current (possibly adopted) placement instead of dropping it.
            return
        num_nodes = ctx.num_nodes
        targets: List[Set[int]] = [set() for _ in range(num_nodes)]
        for k in range(ctx.num_objects):
            col = demand[:, k]
            if col.sum() <= 0 and not self.place_inactive:
                continue
            for ns in self.plan_object(col, num_nodes):
                targets[ns].add(k)
        for ns in range(num_nodes):
            if ns == self._origin:
                continue
            current = ctx.state.contents(ns)
            wanted = targets[ns]
            for obj in current - wanted:
                ctx.drop_replica(ns, obj)
            for obj in wanted - current:
                ctx.create_replica(ns, obj)
