"""Prefetching caching variants (proactive single-interval heuristics).

Table 3's last two rows: caching (local) and cooperative caching (global)
with prefetching.  These are *clairvoyant* in the simulator — at each
period boundary every cache is loaded with the objects its users will read
during the coming period.  Real prefetchers approximate this with
prediction; the clairvoyant version is the strongest member of the class,
which is exactly what a class comparison wants to simulate.
"""

from __future__ import annotations

from typing import Optional, Set

import numpy as np

from repro.heuristics.base import PlacementHeuristic


class PrefetchCaching(PlacementHeuristic):
    """Local caching with per-period prefetching.

    Each node loads its top-``capacity`` objects by coming-period local
    demand; routing stays local (misses go to the origin).
    """

    routing = "local"
    clairvoyant = True

    def __init__(self, capacity: int, period_s: float = 3600.0):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.capacity = capacity
        self.period_s = period_s

    def describe(self) -> str:
        return f"PrefetchCaching(capacity={self.capacity})"

    def on_interval(self, index, ctx, past_demand, next_demand) -> None:
        demand = next_demand if next_demand is not None else past_demand
        if self.capacity == 0:
            return
        order = np.argsort(-demand, axis=1)
        for ns in range(ctx.num_nodes):
            if ns == ctx.topology.origin:
                continue
            wanted: Set[int] = set()
            for k in order[ns][: self.capacity]:
                if demand[ns][k] <= 0:
                    break
                wanted.add(int(k))
            current = ctx.state.contents(ns)
            for obj in current - wanted:
                ctx.drop_replica(ns, obj)
            for obj in wanted - current:
                ctx.create_replica(ns, obj)


class CooperativePrefetchCaching(PlacementHeuristic):
    """Cooperative caching with per-period prefetching.

    A greedy global fill (like the storage-constrained heuristic) but with
    single-period clairvoyant demand — Table 3's "cooperative caching with
    prefetching" row.
    """

    routing = "global"
    clairvoyant = True

    def __init__(self, capacity: int, period_s: float = 3600.0, tlat_ms: Optional[float] = None):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.capacity = capacity
        self.period_s = period_s
        self.tlat_ms = tlat_ms
        self._inner = None

    def describe(self) -> str:
        return f"CoopPrefetch(capacity={self.capacity})"

    def on_start(self, ctx) -> None:
        from repro.heuristics.greedy_global import GreedyGlobalPlacement

        self._inner = GreedyGlobalPlacement(
            capacity=self.capacity,
            period_s=self.period_s,
            tlat_ms=self.tlat_ms,
            clairvoyant=True,
        )
        self._inner.on_start(ctx)

    def on_interval(self, index, ctx, past_demand, next_demand) -> None:
        self._inner.on_interval(index, ctx, past_demand, next_demand)
